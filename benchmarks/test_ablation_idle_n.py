"""Benchmark: regenerate Idle-loop N ablation."""

from conftest import run_and_check


def test_ablation_idle_n(benchmark):
    run_and_check(benchmark, "ablation-idle-n")
