"""Gate: the observability layer is pay-for-use (<5% when not in use).

The disabled path — no session open — costs one ``obs is None``
attribute check per hook site.  This test bounds it from above by
timing the strictly *more* expensive null-hook path: a session with
both trace and metrics off still attaches the full instrumentation,
so every hook site pays attribute load + method dispatch into the
no-op sinks (``NULL_TRACER``/``NULL_REGISTRY``).  If even that stays
within 5% of an uninstrumented run, the real disabled path does too.

Timing discipline: interleaved rounds, best-of-N minimums (the minimum
is the least noisy location statistic for wall time), plus a small
absolute epsilon so a sub-100ms workload cannot fail on scheduler
jitter alone.

Run via ``make obs-overhead`` (or ``pytest benchmarks/test_obs_overhead.py``);
not part of the default unit-test collection.
"""

from __future__ import annotations

import time

from repro.experiments.registry import run_experiment
from repro.obs import observed

#: Medium-size workload: kernel-heavy (three OS boots, message pumps,
#: interrupts) but fast enough for interleaved best-of-N timing.
EXPERIMENT = "fig2"
ROUNDS = 5
MAX_RELATIVE_OVERHEAD = 0.05
EPSILON_S = 0.010  # absolute slack for timer/scheduler noise


def _time_once(instrumented: bool) -> float:
    started = time.perf_counter()
    if instrumented:
        # trace=False, metrics=False, envelopes off: hooks attach and
        # dispatch, but into the null sinks — an upper bound on the
        # disabled path.  Stage envelopes (on by default under a
        # session) have their own gate in test_envelope_overhead.py.
        with observed(trace=False, metrics=False, envelopes={"enabled": False}):
            run_experiment(EXPERIMENT, seed=0)
    else:
        run_experiment(EXPERIMENT, seed=0)
    return time.perf_counter() - started


def test_disabled_obs_overhead_under_5_percent():
    _time_once(False)  # warm imports, caches, allocator
    baseline: list = []
    nullhook: list = []
    for _ in range(ROUNDS):
        baseline.append(_time_once(False))
        nullhook.append(_time_once(True))
    best_base = min(baseline)
    best_null = min(nullhook)
    budget = best_base * (1.0 + MAX_RELATIVE_OVERHEAD) + EPSILON_S
    assert best_null <= budget, (
        f"null-hook run {best_null:.4f}s exceeds budget {budget:.4f}s "
        f"(baseline {best_base:.4f}s, rounds={ROUNDS})"
    )
