"""Benchmark: regenerate Word task summary - Figure 11."""

from conftest import run_and_check


def test_fig11(benchmark):
    run_and_check(benchmark, "fig11")
