"""Batched side-calendar execution benchmarks (the engine-core tentpole).

Two regimes bound the optimisation:

* **Homogeneous population** — many identical periodic timers on the
  structure-of-arrays side calendar.  Runs of consecutive same-kind
  entries execute through one batch-handler call instead of one engine
  round per event; the measured ``batch_speedup`` is tracked by the
  perf gate with an absolute floor.
* **Mixed kinds** — adjacent entries alternate handler ids, so every
  run has length one and batching never engages.  This is the worst
  case: the batch probe must cost (approximately) nothing, which the
  gate tracks through this benchmark's median like any other.

Both regimes assert the batch on/off event histories agree on count and
final clock — the cheap in-benchmark slice of the identity contract
(the full differential check lives in ``tests/test_property_batch.py``).
"""

import time

from repro.sim.engine import Simulator

#: Homogeneous population shape: every timer re-arms itself each period
#: until the horizon, so the side calendar stays full and sorted.
_POPULATION = 512
_PERIOD_NS = 1_000_000
_GENERATIONS = 60
_HORIZON_NS = _PERIOD_NS * _GENERATIONS


def _homogeneous_run(batch_enabled):
    """Run the timer population; returns (events fired, final now)."""
    sim = Simulator()
    sim.batch_enabled = batch_enabled
    count = [0]
    hid_box = []

    def fire(t, s):
        count[0] += 1
        if t + _PERIOD_NS <= _HORIZON_NS:
            sim.schedule_soa(t + _PERIOD_NS - sim.now, hid_box[0])

    def fire_batch(times, seqs):
        hid = hid_box[0]
        schedule_soa = sim.schedule_soa
        now = times[-1]  # == sim.now for the duration of the call
        n = 0
        for t in times:
            if t + _PERIOD_NS <= _HORIZON_NS:
                schedule_soa(t + _PERIOD_NS - now, hid)
            n += 1
        count[0] += n

    hid_box.append(
        sim.register_handler(fire, batch=fire_batch, batch_window_ns=_PERIOD_NS)
    )
    for i in range(_POPULATION):
        # A small phase stagger keeps the population realistic (not one
        # single timestamp) while staying within each batch window.
        sim.schedule_soa(_PERIOD_NS + (i % 128), hid_box[0])
    sim.run(until_ns=_HORIZON_NS + _PERIOD_NS)
    return count[0], sim.now, sim.events_batched, sim.batch_runs


def test_batch_dispatch_homogeneous(benchmark):
    """Homogeneous timer population: batched vs per-event dispatch."""
    # Timer i (phase i % 128) fires at g * period + phase for every
    # generation g with g * period + phase <= horizon.
    expected = sum(
        (_HORIZON_NS - (i % 128)) // _PERIOD_NS for i in range(_POPULATION)
    )
    fired, now, batched, runs = benchmark(_homogeneous_run, True)
    assert fired == expected
    assert batched > expected * 0.9, "population barely batched"
    assert runs > 0

    # Per-event reference (best of two, sheds warm-up noise).
    off_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        fired_off, now_off, batched_off, _ = _homogeneous_run(False)
        off_s = min(off_s, time.perf_counter() - started)
    assert fired_off == fired and now_off == now, "batching changed the run"
    assert batched_off == 0

    on_s = benchmark.stats.stats.median
    speedup = off_s / on_s
    benchmark.extra_info["events"] = expected
    benchmark.extra_info["sim_ns"] = _HORIZON_NS
    benchmark.extra_info["batch_off_s"] = off_s
    benchmark.extra_info["batch_speedup"] = speedup


def _mixed_run(batch_enabled):
    """Alternating handler ids: every would-be batch run has length 1."""
    sim = Simulator()
    sim.batch_enabled = batch_enabled
    count = [0]
    hids = []

    def make(parity):
        def fire(t, s):
            count[0] += 1
            if t + _PERIOD_NS <= _HORIZON_NS:
                sim.schedule_soa(t + _PERIOD_NS - sim.now, hids[parity])

        def fire_batch(times, seqs):
            for t, s in zip(times, seqs):
                fire(t, s)

        return sim.register_handler(
            fire, batch=fire_batch, batch_window_ns=_PERIOD_NS
        )

    hids.append(make(0))
    hids.append(make(1))
    for i in range(256):
        sim.schedule_soa(_PERIOD_NS + i, hids[i % 2])
    sim.run(until_ns=_HORIZON_NS + _PERIOD_NS)
    return count[0], sim.batch_runs


def test_batch_dispatch_mixed_worst_case(benchmark):
    """Mixed kinds defeat batching; the probe must cost ~nothing.

    The gate tracks this benchmark's median: if the batch-gathering
    probe ever grows a per-event cost, this regresses.
    """
    expected = sum((_HORIZON_NS - i) // _PERIOD_NS for i in range(256))
    fired, runs = benchmark(_mixed_run, True)
    assert fired == expected
    assert runs == 0, "alternating kinds must never form a batch run"
    fired_off, _ = _mixed_run(False)
    assert fired_off == fired
    benchmark.extra_info["events"] = expected
    benchmark.extra_info["sim_ns"] = _HORIZON_NS
