"""Benchmark: regenerate Idle-loop validation echo microbenchmark - Figure 1."""

from conftest import run_and_check


def test_fig01(benchmark):
    run_and_check(benchmark, "fig1")
