"""Benchmark: regenerate Long-event time series - Figure 12."""

from conftest import run_and_check


def test_fig12(benchmark):
    run_and_check(benchmark, "fig12")
