"""Benchmark: regenerate GDI batching ablation."""

from conftest import run_and_check


def test_ablation_batching(benchmark):
    run_and_check(benchmark, "ablation-batching")
