"""Benchmarks of the remote-transport hot path.

Two numbers the perf-gate watches:

* raw packets/second through the lossy link's send path (drop decision,
  serialization queueing, jitter/reorder draws, calendar insert) — the
  per-packet cost every remote session pays thousands of times;
* full remote sessions/second end to end (client OS boot, ARQ upstream,
  frame pipeline downstream, wait extraction) under a lossy link, the
  retransmission-schedule worst case included.
"""

from repro.remote import LinkConfig, LossyLink, TransportConfig, run_remote_session
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot

#: Packets pushed through the link send path per round.
LINK_PACKETS = 20_000
#: Sessions per round for the end-to-end number.
SESSIONS = 8


def test_link_send_throughput(benchmark):
    """Packets/second through LossyLink.send on a lossy, jittery link."""

    def run():
        system = boot("nt40", seed=0)
        link = LossyLink(
            system,
            LinkConfig.symmetric("bench", rtt_ms=40.0, jitter_ms=4.0, loss=0.1),
        )
        delivered = [0]

        def bump():
            delivered[0] += 1

        for i in range(LINK_PACKETS):
            link.send("up" if i % 2 else "down", 200, bump)
        system.run_for(ns_from_ms(60_000))
        return delivered[0]

    delivered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < delivered < LINK_PACKETS
    benchmark.extra_info["events"] = LINK_PACKETS


def test_remote_sessions_rate(benchmark):
    """Full remote sessions/second, lossy link, retransmissions live."""
    link = LinkConfig.symmetric("bench", rtt_ms=60.0, loss=0.2)

    def run():
        results = [
            run_remote_session(
                "nt40", seed, link, TransportConfig(), chars=10
            )
            for seed in range(SESSIONS)
        ]
        assert all(r.wait_ms for r in results)
        return sum(r.channel["retransmits"] for r in results)

    retransmits = benchmark.pedantic(run, rounds=1, iterations=1)
    assert retransmits > 0  # the ARQ worst case is actually exercised
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["events"] = SESSIONS * 10
