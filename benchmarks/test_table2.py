"""Benchmark: regenerate Word interarrival distributions - Table 2."""

from conftest import run_and_check


def test_table2(benchmark):
    run_and_check(benchmark, "table2")
