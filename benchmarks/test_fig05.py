"""Benchmark: regenerate Raw Word latency time series - Figure 5."""

from conftest import run_and_check


def test_fig05(benchmark):
    run_and_check(benchmark, "fig5")
