"""Gate: stage envelopes extend the <5% budget to the envelope-off path.

``test_obs_overhead.py`` bounds the cost of the observability layer
with everything off.  Stage envelopes add a second switch: a session
may be open (traces, metrics) with envelope stamping disabled
(``envelopes={"enabled": False}``), and that path must also stay
within 5% of an uninstrumented run — turning the breakdown off has to
actually buy the cost back.

The benchmark times the envelope-off session (so ``make bench-json``
tracks its median like any other benchmark) and records two ratios in
``extra_info``:

* ``envelope_off_overhead`` — envelope-off session / uninstrumented,
  the gated ratio (perfgate enforces an absolute ceiling on it in
  addition to the usual baseline tolerance).  The same absolute
  epsilon the assertion grants is subtracted first, so a sub-100ms
  workload cannot trip the ratio ceiling on scheduler jitter alone;
* ``envelope_on_overhead`` — full stamping at sample rate 1.0 /
  uninstrumented, informational (the enabled path is allowed to cost
  more; it exists so the price of "always on" stays visible).

Run via ``make bench-json`` / ``make envelope-smoke``; not part of the
default unit-test collection.
"""

from __future__ import annotations

import time

from repro.experiments.registry import run_experiment
from repro.obs import observed

EXPERIMENT = "fig2"
ROUNDS = 5
MAX_RELATIVE_OVERHEAD = 0.05
EPSILON_S = 0.010  # absolute slack for timer/scheduler noise


def _time_once(envelopes) -> float:
    started = time.perf_counter()
    if envelopes is None:
        run_experiment(EXPERIMENT, seed=0)
    else:
        with observed(trace=False, metrics=False, envelopes=envelopes):
            run_experiment(EXPERIMENT, seed=0)
    return time.perf_counter() - started


def test_envelope_off_overhead(benchmark):
    _time_once(None)  # warm imports, caches, allocator
    baseline: list = []
    disabled: list = []
    enabled: list = []
    for _ in range(ROUNDS):
        baseline.append(_time_once(None))
        disabled.append(_time_once({"enabled": False}))
        enabled.append(_time_once({"sample_rate": 1.0}))
    best_base = min(baseline)
    best_off = min(disabled)
    best_on = min(enabled)

    benchmark.pedantic(
        lambda: _time_once({"enabled": False}), rounds=1, iterations=1
    )
    benchmark.extra_info["envelope_off_overhead"] = (
        max(0.0, best_off - EPSILON_S) / best_base
    )
    benchmark.extra_info["envelope_on_overhead"] = best_on / best_base

    budget = best_base * (1.0 + MAX_RELATIVE_OVERHEAD) + EPSILON_S
    assert best_off <= budget, (
        f"envelope-off run {best_off:.4f}s exceeds budget {budget:.4f}s "
        f"(baseline {best_base:.4f}s, rounds={ROUNDS})"
    )
