"""Benchmark: regenerate the network-packet latency extension."""

from conftest import run_and_check


def test_ext_network(benchmark):
    run_and_check(benchmark, "ext-network")
