"""Benchmark harness helpers.

Each benchmark regenerates one paper artifact (table/figure/ablation):
it times the experiment run, prints the reproduction rows (visible with
``pytest -s``), records headline numbers in ``extra_info``, and fails
if any of the experiment's shape checks fail — so the benchmark suite
doubles as the reproduction gate.

Experiments sharing a captured run (the PowerPoint task feeds Table 1,
Figure 8 and Figure 12; the Word task feeds Figures 5/11, Table 2 and
the Section 5.4 comparison) reuse a per-process cache, mirroring how
the paper analysed one trace multiple ways; the first benchmark to
touch a workload pays its simulation cost.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


def run_and_check(benchmark, experiment_id: str, seed: int = 0, **kwargs):
    """Time one experiment, print its report, enforce its checks."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, seed=seed, **kwargs),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    for key, value in result.data.items():
        if isinstance(value, (int, float, str, bool)):
            benchmark.extra_info[key] = value
    failed = result.failed_checks()
    assert not failed, "; ".join(str(check) for check in failed)
    return result
