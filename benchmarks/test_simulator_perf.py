"""Micro-benchmarks of the simulation substrate itself.

Not paper artifacts — these measure the harness's own performance so
regressions in the event engine, the syscall path, or the input
pipeline are visible.  Real (wall-clock) time per unit of simulated
work is the metric.
"""

from repro.apps import NotepadApp
from repro.core import IdleLoopInstrument
from repro.sim.engine import Simulator
from repro.sim.timebase import ns_from_ms
from repro.winsys import Compute, boot
from repro.workload.mstest import MsTestDriver
from repro.workload.script import InputScript, Key


def test_engine_event_throughput(benchmark):
    """Raw calendar: schedule+execute 100k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(10, chain)

        sim.schedule(10, chain)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000
    benchmark.extra_info["events"] = 100_000
    benchmark.extra_info["sim_ns"] = 100_000 * 10


def test_engine_calendar_churn(benchmark):
    """Schedule/cancel-heavy calendar: the lazy-deletion worst case.

    Every executed event schedules a far-future decoy and cancels the
    previous one — the pattern preemptible work segments produce — so
    cancelled entries pile up and the calendar must compact to keep the
    heap (and every pop) from dragging dead weight.
    """

    def run():
        sim = Simulator()
        count = [0]
        decoy = [None]

        def chain():
            count[0] += 1
            if decoy[0] is not None:
                decoy[0].cancel()
            decoy[0] = sim.schedule(10**9, lambda: None, "decoy")
            if count[0] < 50_000:
                sim.schedule(10, chain)

        sim.schedule(10, chain)
        sim.run(until_ns=50_000 * 10 + 1)
        assert sim.compactions > 0, "churn never triggered compaction"
        return count[0]

    assert benchmark(run) == 50_000
    benchmark.extra_info["events"] = 50_000


def test_syscall_dispatch_throughput(benchmark):
    """Kernel: 10k Compute syscalls through the full dispatch path."""

    def run():
        system = boot("nt40")
        done = []

        def program():
            for _ in range(10_000):
                yield Compute(system.personality.app_work(100))
            done.append(True)

        system.spawn("worker", program())
        system.run_until_quiescent(max_ns=system.now + 60 * 10**9)
        return bool(done)

    assert benchmark(run)


def test_keystroke_pipeline_rate(benchmark):
    """Interrupt -> DPC -> message -> app handling, 200 keystrokes."""

    def run():
        system = boot("nt40")
        app = NotepadApp(system)
        app.start(foreground=True)
        system.run_for(ns_from_ms(5))
        driver = MsTestDriver(
            system,
            InputScript([Key("a", pause_ms=20.0)] * 200),
            queuesync=False,
            default_pause_ms=20.0,
        )
        driver.run_to_completion(max_seconds=120)
        return app.keystrokes

    assert benchmark(run) >= 200


def test_idle_loop_sampling_cost(benchmark):
    """One simulated second of idle sampling (1000 trace records)."""

    def run():
        system = boot("nt40")
        instrument = IdleLoopInstrument(system)
        instrument.install()
        system.run_for(ns_from_ms(1000))
        return instrument.samples_collected

    assert benchmark(run) >= 950
