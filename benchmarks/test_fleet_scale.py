"""Fleet-scale benchmarks: session throughput and memory behaviour.

Two claims of the fleet layer are performance claims, so they live in
the benchmark suite where the perf-gate watches them:

* sessions/second through the full measurement pipeline (boot, type,
  instrument, extract, fold into sketches) — the number that decides
  whether 10^5-session sweeps are an overnight job or a coffee break;
* aggregate memory is O(sketch), not O(sessions): quadrupling the
  session count must leave the merged aggregate's size unchanged and
  the fold's peak allocations nearly flat (streaming fold drops every
  session after merging it).
"""

import json
import subprocess
import sys

from repro.fleet.population import PopulationConfig
from repro.fleet.shards import run_fleet

#: Session count for the throughput benchmark — big enough to amortize
#: per-run setup, small enough for CI's single core.
RATE_SESSIONS = 40

_MEMORY_PROBE = """
import json, resource, sys, tracemalloc
from repro.fleet.population import PopulationConfig
from repro.fleet.shards import run_fleet

size = int(sys.argv[1])
config = PopulationConfig(seed=0, size=size, chars_range=(3, 5))
tracemalloc.start()
fleet = run_fleet(config, shards=1, batch_size=10)
_, peak = tracemalloc.get_traced_memory()
tracemalloc.stop()
print(json.dumps({
    "sessions": fleet.aggregate.sessions,
    "events": fleet.aggregate.events,
    "aggregate_bytes": len(json.dumps(fleet.aggregate.to_dict())),
    "tracemalloc_peak": peak,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _probe_memory(sessions: int) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", _MEMORY_PROBE, str(sessions)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def test_fleet_sessions_rate(benchmark):
    """Full fleet pipeline: sessions/second through one shard."""
    config = PopulationConfig(seed=0, size=RATE_SESSIONS, chars_range=(3, 5))

    fleet = benchmark.pedantic(
        lambda: run_fleet(config, shards=1, batch_size=10),
        rounds=1,
        iterations=1,
    )
    assert fleet.aggregate.sessions == RATE_SESSIONS
    assert not fleet.failures
    benchmark.extra_info["events"] = fleet.aggregate.events
    benchmark.extra_info["sessions"] = RATE_SESSIONS
    benchmark.extra_info["merged_digest"] = fleet.digest


def test_fleet_memory_sublinear(benchmark):
    """4x the sessions: same aggregate size, near-flat peak allocations."""

    def probe():
        return _probe_memory(20), _probe_memory(80)

    small, large = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert large["sessions"] == 4 * small["sessions"]
    # The serialized aggregate is the state a shard ships home; it is
    # bounded by (groups x occupied buckets), not by session count.
    assert large["aggregate_bytes"] < 2.0 * small["aggregate_bytes"], (
        small["aggregate_bytes"], large["aggregate_bytes"],
    )
    # Peak Python allocations during the fold: streaming aggregation
    # drops each session after merging, so 4x sessions must cost far
    # less than 4x peak (flat but for the largest single session).
    assert large["tracemalloc_peak"] < 2.0 * small["tracemalloc_peak"], (
        small["tracemalloc_peak"], large["tracemalloc_peak"],
    )
    # And the OS-level high-water mark stays sublinear too.
    assert large["ru_maxrss_kb"] < 2.0 * small["ru_maxrss_kb"], (
        small["ru_maxrss_kb"], large["ru_maxrss_kb"],
    )
    benchmark.extra_info["aggregate_bytes_small"] = small["aggregate_bytes"]
    benchmark.extra_info["aggregate_bytes_large"] = large["aggregate_bytes"]
    benchmark.extra_info["tracemalloc_peak_large"] = large["tracemalloc_peak"]
