"""Benchmark: regenerate Simple interactive events - Figure 6."""

from conftest import run_and_check


def test_fig06(benchmark):
    run_and_check(benchmark, "fig6")
