"""Benchmark: regenerate Page-down hardware counters - Figure 9."""

from conftest import run_and_check


def test_fig09(benchmark):
    run_and_check(benchmark, "fig9")
