"""Benchmark: regenerate PowerPoint long events - Table 1."""

from conftest import run_and_check


def test_table1(benchmark):
    run_and_check(benchmark, "table1")
