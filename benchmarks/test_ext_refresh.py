"""Benchmark: regenerate the display-refresh extension analysis."""

from conftest import run_and_check


def test_ext_refresh(benchmark):
    run_and_check(benchmark, "ext-refresh")
