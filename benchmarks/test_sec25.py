"""Benchmark: regenerate the Section 2.5 interrupt-cost measurement."""

from conftest import run_and_check


def test_sec25(benchmark):
    run_and_check(benchmark, "sec25")
