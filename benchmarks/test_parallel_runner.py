"""Benchmark: cold vs warm-cache experiment sweeps.

The acceptance bar for the result cache: serving a whole sweep from a
warm cache must cost < 20% of the cold run that populated it, while
returning byte-identical archival payloads.
"""

import time

from repro.core.runcache import RunCache
from repro.experiments.parallel import run_many

SWEEP_IDS = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "sec25",
    "ablation-merge",
]


def test_warm_cache_sweep(benchmark, tmp_path_factory):
    cache = RunCache(tmp_path_factory.mktemp("runcache"), version="bench")

    started = time.perf_counter()
    cold = run_many(SWEEP_IDS, [0], jobs=1, cache=cache)
    cold_s = time.perf_counter() - started
    assert all(job.error is None and not job.cache_hit for job in cold)

    warm = benchmark(lambda: run_many(SWEEP_IDS, [0], jobs=1, cache=cache))
    assert all(job.cache_hit for job in warm)

    started = time.perf_counter()
    timed = run_many(SWEEP_IDS, [0], jobs=1, cache=cache)
    warm_s = time.perf_counter() - started

    # Byte-identity of what --save would write, cold vs warm.
    for before, after in zip(cold, timed):
        assert after.payload == before.payload
        assert after.rendered == before.rendered

    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["speedup"] = round(cold_s / max(warm_s, 1e-9), 1)
    assert warm_s < 0.2 * cold_s, (
        f"warm sweep {warm_s:.3f}s not < 20% of cold {cold_s:.3f}s"
    )
