"""Benchmark: regenerate the input-latency decomposition extension."""

from conftest import run_and_check


def test_ext_decompose(benchmark):
    run_and_check(benchmark, "ext-decompose")
