"""Benchmark: regenerate Notepad task summary - Figure 7."""

from conftest import run_and_check


def test_fig07(benchmark):
    run_and_check(benchmark, "fig7")
