"""Benchmark: regenerate OLE-edit hardware counters - Figure 10."""

from conftest import run_and_check


def test_fig10(benchmark):
    run_and_check(benchmark, "fig10")
