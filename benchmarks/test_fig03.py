"""Benchmark: regenerate Idle-system profiles - Figure 3."""

from conftest import run_and_check


def test_fig03(benchmark):
    run_and_check(benchmark, "fig3")
