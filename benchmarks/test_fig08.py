"""Benchmark: regenerate PowerPoint task summary - Figure 8."""

from conftest import run_and_check


def test_fig08(benchmark):
    run_and_check(benchmark, "fig8")
