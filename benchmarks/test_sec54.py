"""Benchmark: regenerate Test vs hand-typed Word - Section 5.4."""

from conftest import run_and_check


def test_sec54(benchmark):
    run_and_check(benchmark, "sec54")
