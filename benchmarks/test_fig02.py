"""Benchmark: regenerate Wait/think FSM classification - Figure 2."""

from conftest import run_and_check


def test_fig02(benchmark):
    run_and_check(benchmark, "fig2")
