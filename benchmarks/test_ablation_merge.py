"""Benchmark: regenerate Event-segmentation ablation."""

from conftest import run_and_check


def test_ablation_merge(benchmark):
    run_and_check(benchmark, "ablation-merge")
