"""Fast-forward ablation benchmarks (idle- vs busy-dominated workloads).

These quantify the determinism-preserving idle fast-forward path
(``docs/performance.md``): on an idle-dominated trace the kernel batches
uncontended idle-loop segments analytically, so wall time stops scaling
with loop granularity; on a busy-dominated trace the fast path almost
never fires and must cost nothing.

Each benchmark also *checks* the optimisation's contract where cheap to
do so: the ablation run asserts the collected records are identical with
the optimisation on and off.  ``extra_info`` carries the simulated span,
event counts and the measured speedup; ``python -m repro.perfgate
collect`` turns those into the tracked metrics the perf gate compares.
"""

import time

from repro.apps import NotepadApp
from repro.core import IdleLoopInstrument
from repro.sim.engine import set_fast_forward_default
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot
from repro.workload.mstest import MsTestDriver
from repro.workload.script import InputScript, Key

#: High-resolution tracing point for the ablation: a 0.1 ms loop is the
#: fine end of the granularity/buffer trade-off the paper discusses
#: (finer loop, more records), and the regime where skipping idle
#: segments pays most — slow-path cost scales with record count while
#: the fast path only pays a fixed cost per clock-tick period.
_ABLATION_LOOP_MS = 0.1
_ABLATION_SIM_MS = 5_000.0


def _idle_run(fast_forward, loop_ms=_ABLATION_LOOP_MS, sim_ms=_ABLATION_SIM_MS):
    """Boot nt40, trace an idle system, return (records, sim stats)."""
    set_fast_forward_default(fast_forward)
    try:
        system = boot("nt40")
        instrument = IdleLoopInstrument(system, loop_ms=loop_ms)
        instrument.install()
        system.run_for(ns_from_ms(sim_ms))
        return (
            instrument.buffer.records(),
            system.sim.events_executed,
            system.kernel.fast_forward_batches,
        )
    finally:
        set_fast_forward_default(True)


def test_idle_fastforward_ablation(benchmark):
    """Idle-dominated trace: fast forward on (benchmarked) vs off (timed).

    Asserts the two runs collect byte-identical records and that the
    speedup clears the 5x floor the perf gate tracks.
    """
    result = benchmark(_idle_run, True)
    records_on, events_on, batches = result
    assert batches > 0, "fast forward never fired on an idle system"

    # The slow path is too slow to hand to the benchmark fixture's round
    # machinery; time it directly (best of two to shed warm-up noise).
    off_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        records_off, events_off, _ = _idle_run(False)
        off_s = min(off_s, time.perf_counter() - started)

    assert records_on == records_off, "fast forward changed the trace"
    assert events_on == events_off, "fast forward changed the event count"

    on_s = benchmark.stats.stats.median
    speedup = off_s / on_s
    sim_ns = ns_from_ms(_ABLATION_SIM_MS)
    benchmark.extra_info["sim_ns"] = sim_ns
    benchmark.extra_info["events"] = events_on
    benchmark.extra_info["ff_off_s"] = off_s
    benchmark.extra_info["idle_ff_speedup"] = speedup
    assert speedup >= 5.0, (
        f"idle fast-forward speedup {speedup:.2f}x below the 5x floor "
        f"(on {on_s * 1e3:.1f} ms, off {off_s * 1e3:.1f} ms)"
    )


def test_busy_fastforward_overhead(benchmark):
    """Busy-dominated workload: the fast path must not tax real work.

    Keystroke handling keeps the CPU contended, so nearly every idle
    segment is interrupted and executes on the slow path; the only cost
    the optimisation may add here is the per-segment budget probe.
    """

    def run():
        system = boot("nt40")
        app = NotepadApp(system)
        app.start(foreground=True)
        instrument = IdleLoopInstrument(system, loop_ms=1.0)
        instrument.install()
        system.run_for(ns_from_ms(5))
        driver = MsTestDriver(
            system,
            InputScript([Key("a", pause_ms=5.0)] * 100),
            queuesync=False,
            default_pause_ms=5.0,
        )
        driver.run_to_completion(max_seconds=60)
        return app.keystrokes, system.sim.events_executed, system.now

    keystrokes, events, sim_ns = benchmark(run)
    benchmark.extra_info["sim_ns"] = sim_ns
    benchmark.extra_info["events"] = events
    assert keystrokes >= 100
