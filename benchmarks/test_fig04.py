"""Benchmark: regenerate Window-maximize animation profile - Figure 4."""

from conftest import run_and_check


def test_fig04(benchmark):
    run_and_check(benchmark, "fig4")
