"""Benchmark: regenerate the Section 5 repeatability analysis."""

from conftest import run_and_check


def test_sec5_repeat(benchmark):
    run_and_check(benchmark, "sec5-repeat")
