# Developer / CI entry points. All targets run from the repo root with
# the in-tree sources (no install needed).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

SMOKE_OUT   := .smoke-out
SMOKE_CACHE := .smoke-cache

.PHONY: test benchmarks bench-json perf-gate perf-baseline profile-hotpath \
	experiments experiments-smoke faults-smoke remote-smoke \
	obs-smoke obs-overhead envelope-smoke fleet-smoke chaos-smoke \
	chaos-stress docs-check verify-integrity golden-check \
	golden-update verify clean

test:
	$(PYTHON) -m pytest -x -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Simulator perf metrics: run the engine + fast-forward benchmarks and
# distil them into BENCH_simulator.json-shaped metrics (see
# src/repro/perfgate.py).  .bench-raw.json is scratch output.
bench-json:
	$(PYTHON) -m pytest benchmarks/test_simulator_perf.py \
		benchmarks/test_batch_dispatch.py \
		benchmarks/test_fastforward.py \
		benchmarks/test_fleet_scale.py \
		benchmarks/test_remote_transport.py \
		benchmarks/test_envelope_overhead.py \
		--benchmark-only --benchmark-json=.bench-raw.json -q
	$(PYTHON) -m repro.perfgate collect .bench-raw.json -o .bench-current.json

# CI gate: fail if any tracked metric regressed >25% against the
# committed baseline (or the fast-forward speedup fell below 5x).
perf-gate: bench-json
	$(PYTHON) -m repro.perfgate check .bench-current.json \
		--baseline BENCH_simulator.json

# Re-bless the committed perf baseline after a reviewed change.
perf-baseline: bench-json
	cp .bench-current.json BENCH_simulator.json
	@echo "perf baseline updated: BENCH_simulator.json"

# cProfile the engine hot paths (calendar churn + keystroke pipeline);
# writes the top-20 cumulative report to .profile-hotpath.txt.
profile-hotpath:
	$(PYTHON) -m repro.profilehotpath -o .profile-hotpath.txt

# The full paper reproduction (parallel, cached under ~/.cache/repro).
experiments:
	$(PYTHON) -m repro.experiments --save out/

# CI gate: two cheap experiments through the parallel path with an
# isolated cache, then validate the run manifest.
experiments-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -m repro.experiments fig1 fig4 --jobs 2 \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	assert m['failures'] == 0, m; \
	assert len(m['experiments']) == 2, m; \
	print('smoke ok: %d runs, jobs=%d, code %s' % (len(m['experiments']), m['jobs'], m['code_version']))"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# CI gate for the fault-injection subsystem: the tiny 'smoke' plan on
# one OS must inject faults and be byte-reproducible, and an archived
# ext-faults run must record its injected-fault counts in the manifest.
faults-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -c "\
	import json; \
	from repro.experiments import ext_faults; \
	runs = [ext_faults.run(seed=0, chars=10, scenario='smoke', os_names=('nt40',)) for _ in range(2)]; \
	blobs = [json.dumps(r.data, sort_keys=True) for r in runs]; \
	assert blobs[0] == blobs[1], 'smoke plan not byte-reproducible'; \
	total = runs[0].data['injected_faults']['total']; \
	assert total > 0, runs[0].data['injected_faults']; \
	print('faults smoke ok: %d injections, reproducible' % total)"
	$(PYTHON) -m repro.experiments ext-faults --jobs 1 \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	assert m['failures'] == 0, m; \
	(entry,) = m['experiments']; \
	assert entry['faults']['total'] > 0, entry; \
	print('faults manifest ok: %d injections across %s' % \
	      (entry['faults']['total'], sorted(entry['faults']['by_os'])))"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# CI gate for the remote-interaction subsystem: the lossy-link
# transport schedule must replay byte-identically, a network fault
# scenario must compose with the configured link, a traced remote
# session must emit a structurally valid (Perfetto-loadable) trace
# with the per-direction net tracks present, and an archived
# ext-remote run must pass every frontier shape check.
remote-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -c "\
	from repro.obs import observed, chrome_trace, validate_chrome_trace; \
	from repro.remote import LinkConfig, TransportConfig, run_remote_session; \
	link = LinkConfig.symmetric('smoke', rtt_ms=60.0, jitter_ms=4.0, loss=0.25); \
	runs = [run_remote_session('nt40', 0, link, TransportConfig(), chars=12) for _ in range(2)]; \
	assert runs[0].schedule_digest == runs[1].schedule_digest, 'schedule not byte-identical'; \
	assert runs[0].channel['retransmits'] > 0, runs[0].channel; \
	degraded = run_remote_session('nt40', 0, link, TransportConfig(), chars=12, scenario='net-congest'); \
	assert degraded.schedule_digest != runs[0].schedule_digest, 'scenario did not compose'; \
	session_ctx = observed(trace=True, metrics=True); \
	session = session_ctx.__enter__(); \
	run_remote_session('nt40', 0, link, TransportConfig(), chars=12); \
	trace = chrome_trace(session.tracer, label='remote'); \
	session_ctx.__exit__(None, None, None); \
	problems = validate_chrome_trace(trace); \
	assert not problems, problems[:5]; \
	assert any('net-' in str(e.get('args', {}).get('name', '')) \
	           for e in trace['traceEvents'] if e.get('name') == 'thread_name'), \
	       'net tracks missing from trace'; \
	print('remote smoke ok: digest %s…, %d retransmits, %d trace events' % \
	      (runs[0].schedule_digest[:12], runs[0].channel['retransmits'], \
	       len(trace['traceEvents'])))"
	$(PYTHON) -m repro.experiments ext-remote --jobs 1 \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	assert m['failures'] == 0, m; \
	print('remote manifest ok: %d experiment(s)' % len(m['experiments']))"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# CI gate for the observability layer: one cheap experiment with trace
# and metrics outputs on; the trace must be structurally valid
# (Perfetto-loadable), the metrics snapshot must round-trip, and the
# stats subcommand must render the manifest.
obs-smoke:
	rm -rf $(SMOKE_OUT)
	$(PYTHON) -m repro.experiments run fig1 --no-cache --checks-only \
		--save $(SMOKE_OUT) \
		--trace-out $(SMOKE_OUT)/trace.json \
		--metrics-out $(SMOKE_OUT)/metrics.json
	$(PYTHON) -c "\
	import json; \
	from repro.obs import validate_chrome_trace; \
	from repro.core.serialize import load_json, metrics_from_dict; \
	trace = load_json('$(SMOKE_OUT)/trace.json'); \
	problems = validate_chrome_trace(trace); \
	assert not problems, problems[:5]; \
	metrics = metrics_from_dict(load_json('$(SMOKE_OUT)/metrics.json')); \
	assert metrics['counters'], 'no counters collected'; \
	print('obs smoke ok: %d trace events, %d counters' % \
	      (len(trace['traceEvents']), len(metrics['counters'])))"
	$(PYTHON) -m repro.experiments stats $(SMOKE_OUT)/manifest.json > /dev/null
	rm -rf $(SMOKE_OUT)

# CI gate: the disabled observability path must stay within 5% of an
# uninstrumented run (see benchmarks/test_obs_overhead.py).
obs-overhead:
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py -q

# CI gate for the stage-envelope layer: every completed envelope must
# conserve time exactly (stage durations sum to the measured wait, in
# integer nanoseconds), the per-stage Perfetto tracks must pass the
# structural trace validator, and a sweep archived with the stage flags
# on must render the breakdown and budget-alert sections in stats.
envelope-smoke:
	rm -rf $(SMOKE_OUT)
	$(PYTHON) -c "\
	from repro.obs import observed, chrome_trace, validate_chrome_trace; \
	from repro.experiments.registry import run_experiment; \
	ctx = observed(trace=True, metrics=False); \
	session = ctx.__enter__(); \
	run_experiment('fig1', seed=0); \
	recorders = session.envelope_recorders; \
	trace = chrome_trace(session.tracer, label='envelope'); \
	ctx.__exit__(None, None, None); \
	envelopes = [e for r in recorders for e in r.completed]; \
	assert envelopes, 'no envelopes recorded'; \
	bad = [e.to_dict() for e in envelopes \
	       if sum(e.stage_ns.values()) != e.done_ns - e.inject_ns]; \
	assert not bad, ('conservation violated', bad[:3]); \
	problems = validate_chrome_trace(trace); \
	assert not problems, problems[:5]; \
	stage_tracks = [e for e in trace['traceEvents'] \
	                if e.get('name') == 'thread_name' \
	                and str(e.get('args', {}).get('name', '')).startswith('stage:')]; \
	assert stage_tracks, 'stage tracks missing from trace'; \
	print('envelope conservation ok: %d envelope(s), %d stage track(s)' % \
	      (len(envelopes), len(stage_tracks)))"
	$(PYTHON) -m repro.experiments run fig1 --no-cache --checks-only \
		--save $(SMOKE_OUT) --stage-sample-rate 1.0 --stage-budget handler=0.1
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	obs = m['obs']; \
	assert obs.get('stages'), 'manifest missing stage attribution'; \
	assert obs.get('stage_alerts'), 'tight handler budget produced no alerts'; \
	print('envelope manifest ok: %d group(s), %d alert(s)' % \
	      (len(obs['stages']['groups']), len(obs['stage_alerts'])))"
	$(PYTHON) -m repro.experiments stats $(SMOKE_OUT)/manifest.json \
		| grep -q "stage breakdown (envelopes)"
	@echo "envelope smoke ok"
	rm -rf $(SMOKE_OUT)

# CI gate for the fleet layer: a reduced ext-fleet sweep end to end
# through the runner — the manifest must carry the merged-sketch
# provenance, the stats subcommand must render the fleet block, and the
# fleet-report verb must produce the capacity plan.
fleet-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -m repro.experiments ext-fleet --jobs 1 \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	assert m['failures'] == 0, m; \
	(entry,) = m['experiments']; \
	fleet = entry['fleet']; \
	assert fleet['sessions'] > 0 and fleet['merged_digest'], fleet; \
	assert fleet['merge'] == 'commutative-bucket-add', fleet; \
	print('fleet manifest ok: %d sessions, digest %s' % \
	      (fleet['sessions'], fleet['merged_digest']))"
	$(PYTHON) -m repro.experiments stats $(SMOKE_OUT)/manifest.json \
		| grep -q "merged wait-time sketches"
	$(PYTHON) -m repro.experiments fleet-report $(SMOKE_OUT) \
		| grep -q "capacity plan"
	@echo "fleet smoke ok"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# CI gate for the chaos-hardening layer: a healable chaos schedule must
# heal to the byte-identical fleet digest of the chaos-free run; an
# unhealable (poison) schedule must account every lost session exactly
# (expected == completed + quarantined + skipped) with the digest
# stamped partial; and --strict-complete must turn the partial run into
# the reserved exit code 4.
chaos-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -c "\
	from repro.obs.logging import set_level; set_level('error'); \
	from repro.fleet.population import PopulationConfig; \
	from repro.fleet.shards import run_fleet; \
	config = PopulationConfig(seed=7, size=24, chars_range=(4, 6)); \
	clean = run_fleet(config, shards=2, batch_size=6); \
	healed = run_fleet(config, shards=2, batch_size=6, retries=2, \
	                   backoff_s=0.0, chaos='flaky-crash', chaos_seed=3); \
	assert healed.digest == clean.digest, (healed.digest, clean.digest); \
	assert healed.complete and not healed.failures, healed.provenance(); \
	lossy = run_fleet(config, shards=2, batch_size=6, \
	                  chaos='poison-sessions', chaos_seed=3); \
	accounted = lossy.sessions_completed + lossy.sessions_quarantined \
	            + lossy.sessions_skipped; \
	assert accounted == lossy.sessions_expected, lossy.provenance(); \
	assert lossy.sessions_quarantined > 0, lossy.provenance(); \
	assert lossy.digest_scope == 'partial', lossy.provenance(); \
	print('chaos smoke ok: healed digest %s == clean; %d/%d accounted, %d quarantined' \
	      % (healed.digest, accounted, lossy.sessions_expected, \
	         lossy.sessions_quarantined))"
	$(PYTHON) -m repro.experiments ext-fleet --jobs 1 \
		--chaos poison-sessions --strict-complete \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only \
		> /dev/null 2>&1; \
	status=$$?; test $$status -eq 4 \
		|| { echo "expected exit 4 (incomplete fleet), got $$status"; exit 1; }
	@echo "chaos exit-code ok: --strict-complete returned 4 on a partial fleet"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# Heavier, not in verify: every chaos scenario x several seeds (seed
# base randomized but printed, so failures replay from the log line).
chaos-stress:
	$(PYTHON) -m repro.chaos.stress --rounds 3

# CI gate for the documentation: every intra-repo markdown link must
# resolve, every --flag a doc mentions must exist in some CLI parser,
# and docs/index.md must cover every docs/ page.
docs-check:
	$(PYTHON) -m repro.docscheck

# CI gate for measurement integrity: the invariant catalog must pass on
# every OS personality under every named fault scenario, each seeded
# trace corruption must trip exactly its matching invariant, and the
# committed golden records must match the current code.
verify-integrity:
	$(PYTHON) -m repro.verify.integrity

# Golden-trace regression only (subset of verify-integrity, faster).
golden-check:
	$(PYTHON) -m repro.verify.golden

# Re-bless the golden records after a reviewed, intentional change.
golden-update:
	$(PYTHON) -m repro.verify.golden --update

# The default local verification flow: unit tests, the
# measurement-integrity gate, the observability gates, the fleet and
# docs gates, then the perf-regression gate.
verify: test verify-integrity obs-smoke obs-overhead envelope-smoke \
	fleet-smoke chaos-smoke remote-smoke docs-check perf-gate

clean:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE) out/ .pytest_cache
	rm -f .bench-raw.json .bench-current.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
