# Developer / CI entry points. All targets run from the repo root with
# the in-tree sources (no install needed).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

SMOKE_OUT   := .smoke-out
SMOKE_CACHE := .smoke-cache

.PHONY: test benchmarks experiments experiments-smoke faults-smoke \
	verify-integrity golden-check golden-update verify clean

test:
	$(PYTHON) -m pytest -x -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# The full paper reproduction (parallel, cached under ~/.cache/repro).
experiments:
	$(PYTHON) -m repro.experiments --save out/

# CI gate: two cheap experiments through the parallel path with an
# isolated cache, then validate the run manifest.
experiments-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -m repro.experiments fig1 fig4 --jobs 2 \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	assert m['failures'] == 0, m; \
	assert len(m['experiments']) == 2, m; \
	print('smoke ok: %d runs, jobs=%d, code %s' % (len(m['experiments']), m['jobs'], m['code_version']))"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# CI gate for the fault-injection subsystem: the tiny 'smoke' plan on
# one OS must inject faults and be byte-reproducible, and an archived
# ext-faults run must record its injected-fault counts in the manifest.
faults-smoke:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)
	$(PYTHON) -c "\
	import json; \
	from repro.experiments import ext_faults; \
	runs = [ext_faults.run(seed=0, chars=10, scenario='smoke', os_names=('nt40',)) for _ in range(2)]; \
	blobs = [json.dumps(r.data, sort_keys=True) for r in runs]; \
	assert blobs[0] == blobs[1], 'smoke plan not byte-reproducible'; \
	total = runs[0].data['injected_faults']['total']; \
	assert total > 0, runs[0].data['injected_faults']; \
	print('faults smoke ok: %d injections, reproducible' % total)"
	$(PYTHON) -m repro.experiments ext-faults --jobs 1 \
		--save $(SMOKE_OUT) --cache-dir $(SMOKE_CACHE) --checks-only
	$(PYTHON) -c "\
	from repro.core.serialize import load_json, manifest_from_dict; \
	m = manifest_from_dict(load_json('$(SMOKE_OUT)/manifest.json')); \
	assert m['failures'] == 0, m; \
	(entry,) = m['experiments']; \
	assert entry['faults']['total'] > 0, entry; \
	print('faults manifest ok: %d injections across %s' % \
	      (entry['faults']['total'], sorted(entry['faults']['by_os'])))"
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE)

# CI gate for measurement integrity: the invariant catalog must pass on
# every OS personality under every named fault scenario, each seeded
# trace corruption must trip exactly its matching invariant, and the
# committed golden records must match the current code.
verify-integrity:
	$(PYTHON) -m repro.verify.integrity

# Golden-trace regression only (subset of verify-integrity, faster).
golden-check:
	$(PYTHON) -m repro.verify.golden

# Re-bless the golden records after a reviewed, intentional change.
golden-update:
	$(PYTHON) -m repro.verify.golden --update

# The default local verification flow: unit tests, then the
# measurement-integrity gate.
verify: test verify-integrity

clean:
	rm -rf $(SMOKE_OUT) $(SMOKE_CACHE) out/ .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
