#!/usr/bin/env python
"""Measure network-packet events and archive the profile.

The paper's event class includes "network packet arrival" (Section
1.1); this example measures it end to end: a Poisson packet burst
arrives at a terminal application, the idle loop measures per-packet
handling latency, and the resulting profile is archived as JSON so it
can be re-analysed offline:

    python examples/network_events.py
    repro-analyze /tmp/packet-profile.json --thresholds 10,25 --timeline

Run:  python examples/network_events.py
"""

from repro.apps import TerminalApp
from repro.core import (
    EventExtractor,
    IdleLoopInstrument,
    MessageApiMonitor,
    latency_histogram,
    log_histogram,
)
from repro.core.serialize import profile_to_dict, save_json
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot
from repro.workload import PacketSource

ARCHIVE = "/tmp/packet-profile.json"


def main() -> None:
    system = boot("nt40")
    app = TerminalApp(system)
    app.start(foreground=True)
    instrument = IdleLoopInstrument(system)
    instrument.install()
    monitor = MessageApiMonitor(system, thread_name=app.name)
    monitor.attach()
    system.run_for(ns_from_ms(200))

    source = PacketSource(system, mean_interarrival_ms=120.0, size_bytes=320)
    source.send_burst(80)
    source.run_to_completion()

    extraction = EventExtractor(
        monitor=monitor, merge_gap_ns=ns_from_ms(2)
    ).extract(instrument.trace())
    packets = extraction.profile.filter(
        lambda e: any("WM_SOCKET" in kind for kind in e.message_kinds)
    )
    packets.name = "nt40-packet-events"

    print(f"{app.lines_received} packets received, {len(packets)} events measured")
    print(f"median handling {float(sorted(packets.latencies_ms)[len(packets)//2]):.2f} ms, "
          f"max {packets.max_ms():.2f} ms (scroll refreshes)")
    print()
    print(log_histogram(latency_histogram(packets, bin_ms=2.0)))
    path = save_json(profile_to_dict(packets), ARCHIVE)
    print()
    print(f"profile archived to {path} — re-analyse with:")
    print(f"  repro-analyze {path} --timeline --refresh")


if __name__ == "__main__":
    main()
