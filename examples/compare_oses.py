#!/usr/bin/env python
"""Compare the responsiveness of three simulated operating systems.

Reproduces the structure of the paper's Notepad comparison (Figure 7):
the same application binary, the same input script, three systems —
and the distinction the paper drew between *cumulative latency* (what
the user feels) and *elapsed time* (what a throughput benchmark would
report).  Windows 95 wins the first and loses the second, entirely
because of how the benchmark driver's WM_QUEUESYNC messages are
processed.

Run:  python examples/compare_oses.py
"""

import random

from repro.apps import NotepadApp
from repro.core import run_comparison
from repro.core.visualize import bar_chart
from repro.workload.tasks import notepad_task


def main() -> None:
    rng = random.Random(7)
    spec = notepad_task(rng, chars=300, page_downs=4, arrows=10)
    comparison = run_comparison(
        "notepad",
        ("nt351", "nt40", "win95"),
        NotepadApp,
        spec.script,
        run_kwargs=dict(remove_queuesync=True, default_pause_ms=120.0,
                        max_seconds=600),
    )
    print(comparison.summary_table().render())
    print()
    print("cumulative event latency (user-perceived):")
    print(bar_chart(sorted(comparison.cumulative_latency_ms().items()), unit="ms"))
    print()
    print("elapsed time (what a throughput benchmark reports):")
    print(bar_chart(sorted(comparison.elapsed_s().items()), unit="s"))
    print()
    for os_name in comparison.os_names:
        profile = comparison.profile(os_name)
        fraction = profile.fraction_of_latency_below(10.0)
        print(
            f"{os_name}: {fraction * 100:.0f}% of cumulative latency comes "
            f"from sub-10 ms keystrokes"
        )


if __name__ == "__main__":
    main()
