#!/usr/bin/env python
"""Classify user time into *wait* and *think* with the Figure 2 FSM.

Drives a PowerPoint session (application launch, document open, a few
page-downs) and feeds three measurement sources into the FSM:

* CPU busy spans from the idle-loop trace,
* message-queue occupancy from the queue probe,
* outstanding synchronous I/O from the I/O probe.

The output shows the paper's key classification point: during document
loads the CPU is mostly *idle* while the user is squarely *waiting* on
the disk — invisible to any CPU-only metric.

Run:  python examples/wait_think_analysis.py
"""

from repro.apps import SlidesApp
from repro.core import (
    EventExtractor,
    IdleLoopInstrument,
    MessageApiMonitor,
    QueueProbe,
    StateInput,
    SyncIoProbe,
    classify_timeline,
    spans_to_transitions,
)
from repro.core.report import TextTable
from repro.sim.timebase import ns_from_ms, sec_from_ns
from repro.winsys import boot


def main() -> None:
    system = boot("nt40")
    app = SlidesApp(system)
    app.start(foreground=True)
    instrument = IdleLoopInstrument(system)
    instrument.install()
    MessageApiMonitor(system, thread_name=app.name).attach()
    io_probe = SyncIoProbe(system)
    io_probe.attach()
    queue_probe = QueueProbe(system, app.thread)
    queue_probe.attach()
    system.run_for(ns_from_ms(200))

    start_ns = system.now
    system.post_command("launch")
    system.run_until_quiescent(max_ns=system.now + 60 * 10**9)
    system.run_for(ns_from_ms(1500))  # user thinks
    system.post_command("open")
    system.run_until_quiescent(max_ns=system.now + 60 * 10**9)
    system.run_for(ns_from_ms(1000))  # user thinks
    for _ in range(3):
        system.machine.keyboard.keystroke("PageDown")
        system.run_for(ns_from_ms(1200))
    end_ns = system.now

    trace = instrument.trace().slice(start_ns, end_ns)
    cpu_spans = [
        (p.start_ns, p.end_ns) for p in EventExtractor().busy_periods(trace)
    ]
    transitions = (
        spans_to_transitions(cpu_spans, StateInput.CPU)
        + spans_to_transitions(io_probe.busy_spans(end_ns), StateInput.SYNC_IO)
        + spans_to_transitions(queue_probe.nonempty_spans(end_ns), StateInput.QUEUE)
    )
    spans, summary = classify_timeline(transitions, start_ns, end_ns)

    table = TextTable(["quantity", "value"], title="wait/think classification")
    table.add_row("window (s)", sec_from_ns(end_ns - start_ns))
    table.add_row("wait (s)", sec_from_ns(summary.wait_ns))
    table.add_row("think (s)", sec_from_ns(summary.think_ns))
    table.add_row("wait fraction (%)", summary.wait_fraction * 100)
    table.add_row("unnoticeable waits (s)", sec_from_ns(summary.unnoticeable_wait_ns))
    table.add_row("wait episodes", summary.wait_spans)
    print(table.render())
    print()
    print("longest wait episodes:")
    longest = sorted(
        (span for span in spans if span.state.value == "wait"),
        key=lambda span: -span.duration_ns,
    )[:5]
    for span in longest:
        print(
            f"  {sec_from_ns(span.start_ns - start_ns):7.2f}s -> "
            f"{sec_from_ns(span.duration_ns):6.2f}s of waiting"
        )


if __name__ == "__main__":
    main()
