#!/usr/bin/env python
"""Quickstart: measure per-keystroke latency of a simulated editor.

This is the paper's methodology in ~30 lines of API:

1. boot a simulated OS (here Windows NT 4.0) on the standard testbed;
2. start an application (the Notepad model) in the foreground;
3. run one MeasurementSession: it installs the replacement idle loop
   (Section 2.3), hooks GetMessage/PeekMessage (Section 2.4), replays a
   typing script through the MS-Test-style driver, and extracts
   per-event latencies from the idle-loop trace.

Run:  python examples/quickstart.py
"""

from repro.apps import NotepadApp
from repro.core import MeasurementSession, latency_histogram, log_histogram
from repro.core.analysis import variance_summary
from repro.core.report import TextTable
from repro.workload.script import InputScript, type_text_actions

TEXT = "the quick brown fox jumps over the lazy dog.\nlatency, not throughput!"


def main() -> None:
    script = InputScript(type_text_actions(TEXT, pause_ms=120.0))
    session = MeasurementSession("nt40", NotepadApp)
    result = session.run(script, remove_queuesync=True, max_seconds=120)

    stats = variance_summary(result.profile)
    table = TextTable(["quantity", "value"], title="Notepad on NT 4.0")
    table.add_row("keystroke events", stats["count"])
    table.add_row("mean latency (ms)", stats["mean_ms"])
    table.add_row("std (ms)", stats["std_ms"])
    table.add_row("max (ms)", stats["max_ms"])
    table.add_row("cumulative latency (ms)", stats["total_ms"])
    table.add_row("elapsed time (s)", result.elapsed_s)
    table.add_row(
        "Test overhead removed (ms)",
        result.extraction.queuesync_removed_ns / 1e6,
    )
    print(table.render())
    print()
    print("latency histogram (log counts):")
    print(log_histogram(latency_histogram(result.profile, bin_ms=2.0)))
    print()
    long_events = result.profile.above(15.0)
    print(
        f"{len(long_events)} long events (screen refreshes): "
        + ", ".join(f"{event.latency_ms:.1f} ms" for event in long_events)
    )


if __name__ == "__main__":
    main()
