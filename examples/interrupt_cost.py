#!/usr/bin/env python
"""Measure interrupt-handling overhead with lost time (Section 2.5).

A fine-grained (50 microsecond) idle loop pairs every trace record with
a reading of the hardware interrupt counter; intervals containing
exactly one interrupt expose that interrupt's stolen cycles.  The
minimum over many samples is the bare interrupt-service cost — the
paper's "smallest clock interrupt handling overhead under Windows NT
4.0 was about 400 cycles" — while the tail shows ticks that also ran
deferred kernel work.

Run:  python examples/interrupt_cost.py
"""

from repro.core import InterruptCostProbe
from repro.core.report import TextTable
from repro.winsys import boot


def main() -> None:
    table = TextTable(
        ["system", "interrupts", "min cycles", "median", "p95", "max"],
        title="per-interrupt stolen time on an idle system (1.5 s window)",
    )
    for os_name in ("nt351", "nt40", "win95"):
        system = boot(os_name)
        probe = InterruptCostProbe(system, loop_us=50.0)
        report = probe.measure(duration_ms=1500.0)
        table.add_row(
            os_name,
            report.interrupts_observed,
            report.min_cycles,
            report.median_cycles,
            report.percentile_cycles(95),
            report.max_cycles,
        )
    print(table.render())
    print()
    print(
        "The minimum is the bare clock ISR (the paper's ~400 cycles on\n"
        "NT 4.0); larger samples caught ticks that also ran deferred\n"
        "procedure calls or periodic housekeeping."
    )


if __name__ == "__main__":
    main()
