#!/usr/bin/env python
"""Measure your own application model with the public API.

The library is not limited to the paper's applications: any message-
pump program built on :class:`repro.apps.InteractiveApp` can be
measured.  This example models a small spreadsheet: cell edits are
cheap, recalculation is triggered every few edits and is expensive,
and a chart redraw follows each recalculation.  The latency profile
cleanly separates the event classes, and the perception-band summary
(Section 3.1 thresholds) says which class would irritate users.

Run:  python examples/custom_app.py
"""

from repro.apps.base import InteractiveApp
from repro.core import (
    MeasurementSession,
    ProposedResponsivenessMetric,
    latency_histogram,
    log_histogram,
    threshold_bands,
)
from repro.workload.script import InputScript, Key


class SpreadsheetApp(InteractiveApp):
    """Cell edits with periodic full recalculation."""

    name = "spreadsheet"
    EDIT_BASE = 90_000          # ~1 ms: update one cell
    RECALC_BASE = 28_000_000    # ~280 ms: recompute the sheet
    CHART_DRAW_BASE = 3_000_000
    RECALC_EVERY = 5

    def __init__(self, system):
        super().__init__(system)
        self.edits = 0

    def on_char(self, char):
        self.edits += 1
        yield self.app_compute(self.EDIT_BASE, label="cell-edit")
        yield self.draw(200_000, pixels=80 * 20, label="cell-echo")
        if self.edits % self.RECALC_EVERY == 0:
            yield self.app_compute(self.RECALC_BASE, label="recalc")
            yield self.draw(self.CHART_DRAW_BASE, pixels=400 * 300, label="chart")
            yield self.flush_gdi()


def main() -> None:
    script = InputScript([Key(c, pause_ms=150.0) for c in "1234567890" * 3])
    session = MeasurementSession("nt40", SpreadsheetApp)
    result = session.run(script, remove_queuesync=True, max_seconds=120)

    print("latency histogram (log counts):")
    print(log_histogram(latency_histogram(result.profile, bin_ms=20.0)))
    print()
    bands = threshold_bands(result.profile)
    print(
        f"perception bands: {bands.imperceptible} imperceptible (<=0.1 s), "
        f"{bands.perceptible} perceptible, {bands.irritating} irritating (>2 s)"
    )
    metric = ProposedResponsivenessMetric()
    offenders = metric.offending_events(result.profile)
    print(
        f"proposed responsiveness penalty: {metric.score(result.profile):.0f} "
        f"(from {len(offenders)} events over the 100 ms threshold)"
    )
    print()
    print("the slow class is the recalculation:")
    for event in offenders[:5]:
        print(f"  {event.latency_ms:7.1f} ms at t={event.start_ns / 1e9:.2f}s")


if __name__ == "__main__":
    main()
