#!/usr/bin/env python
"""The Section 5.4 experiment: scripted input changes what you measure.

Runs the same Word composition twice on simulated NT 3.51 — once driven
by the MS-Test-style driver (fixed pauses, WM_QUEUESYNC after every
keystroke) and once by the stochastic human-typist model — and prints
the paper's discrepancy: Test-driven keystrokes measure ~80-100 ms
while hand-typed ones measure ~32 ms with the balance showing up as
deferred background activity, and carriage returns blow past 200 ms
only under hand typing.

The moral the paper draws (and this example demonstrates): the driver
is part of the system under test.

Run:  python examples/typist_vs_script.py
"""

import random

import numpy as np

from repro.apps import WordApp
from repro.core import MeasurementSession
from repro.core.report import TextTable
from repro.workload.tasks import word_task


def cr_latencies(profile):
    return [e.latency_ms for e in profile if e.first_input == "Enter"]


def main() -> None:
    rng = random.Random(42)
    spec = word_task(rng, chars=400)

    print("running MS-Test-driven session ...")
    test_run = MeasurementSession("nt351", WordApp).run(
        spec.script, driver_kind="mstest", max_seconds=3600
    )
    print("running hand-typed session ...")
    hand_run = MeasurementSession("nt351", WordApp).run(
        spec.script, driver_kind="typist", max_seconds=3600
    )

    table = TextTable(
        ["quantity", "MS Test", "hand-typed"],
        title="Word on NT 3.51: the Section 5.4 comparison",
    )
    table.add_row(
        "median keystroke (ms)",
        float(np.median(test_run.profile.latencies_ms)),
        float(np.median(hand_run.profile.latencies_ms)),
    )
    table.add_row(
        "max event (ms)",
        test_run.profile.max_ms(),
        hand_run.profile.max_ms(),
    )
    test_crs, hand_crs = cr_latencies(test_run.profile), cr_latencies(hand_run.profile)
    table.add_row(
        "mean carriage return (ms)",
        float(np.mean(test_crs)) if test_crs else 0.0,
        float(np.mean(hand_crs)) if hand_crs else 0.0,
    )
    table.add_row(
        "background activity (ms)",
        test_run.extraction.background.total_latency_ns / 1e6,
        hand_run.extraction.background.total_latency_ns / 1e6,
    )
    table.add_row("elapsed (s)", test_run.elapsed_s, hand_run.elapsed_s)
    print(table.render())
    print()
    print(
        "WM_QUEUESYNC after every keystroke makes Word drain its background\n"
        "work synchronously: the scripted run measures fg+bg as one event,\n"
        "the hand-typed run measures fg only and defers bg — two different\n"
        "systems, one application."
    )


if __name__ == "__main__":
    main()
