"""Grab-bag tests for remaining edges across modules."""

import numpy as np
import pytest

from repro.apps import NotepadApp, ShellApp, SlidesApp
from repro.core.analysis import distribution_distance
from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.samples import SampleTrace
from repro.core.visualize import curve_plot, event_time_series
from repro.sim.timebase import ns_from_ms
from repro.winsys import WM, Message, boot

MS = 1_000_000


def profile_of(*latencies_ms):
    return LatencyProfile(
        [
            LatencyEvent(start_ns=i * 100 * MS, latency_ns=int(l * MS))
            for i, l in enumerate(latencies_ms)
        ]
    )


class TestDistributionDistance:
    def test_identical_is_zero(self):
        a = profile_of(1, 2, 3)
        assert distribution_distance(a, a) == 0.0

    def test_disjoint_is_one(self):
        assert distribution_distance(profile_of(1, 2), profile_of(100, 200)) == 1.0

    def test_symmetry(self):
        a, b = profile_of(1, 2, 3, 10), profile_of(2, 3, 4)
        assert distribution_distance(a, b) == distribution_distance(b, a)

    def test_empty_cases(self):
        assert distribution_distance(profile_of(), profile_of()) == 0.0
        assert distribution_distance(profile_of(1), profile_of()) == 1.0

    def test_bounded(self):
        a, b = profile_of(1, 5, 9), profile_of(2, 5, 50)
        assert 0.0 <= distribution_distance(a, b) <= 1.0


class TestVisualizeEdges:
    def test_event_series_linear_scale(self):
        text = event_time_series(
            profile_of(5, 50), log_scale=False, threshold_ms=None, width=30, height=6
        )
        assert "|" in text

    def test_event_series_explicit_window(self):
        profile = profile_of(5, 50, 500)
        text = event_time_series(
            profile, start_ns=0, end_ns=150 * MS, width=30, height=6
        )
        assert "span" in text

    def test_curve_plot_single_point(self):
        assert "*" in curve_plot([1.0], [2.0])


class TestSampleTraceWindows:
    def test_explicit_start_end(self):
        trace = SampleTrace([0, MS, 11 * MS], loop_ns=MS)
        starts, util = trace.utilization_windows(
            5 * MS, start_ns=0, end_ns=20 * MS
        )
        assert len(starts) == 4
        assert util[-1] == 0.0  # nothing after the trace

    def test_degenerate_window(self):
        trace = SampleTrace([0, MS], loop_ns=MS)
        starts, util = trace.utilization_windows(5 * MS, start_ns=10, end_ns=10)
        assert len(starts) == 0


class TestAppDefaultPaths:
    def test_notepad_pageup_and_arrows(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        for key in ("PageUp", "Up", "Down"):
            nt40.machine.keyboard.keystroke(key)
            nt40.run_for(ns_from_ms(80))
        assert app.keystrokes == 3
        assert app.refreshes == 1  # PageUp refreshed

    def test_notepad_unknown_special_key(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("F9")
        nt40.run_for(ns_from_ms(50))  # default DefWindowProc path, no crash
        assert app.keystrokes == 1

    def test_slides_unknown_command(self, nt40):
        app = SlidesApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.post_command("frobnicate")
        nt40.run_for(ns_from_ms(50))  # default command path

    def test_slides_pageup_renders_previous(self, nt40):
        app = SlidesApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        app.page = 3
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("PageUp")
        nt40.run_until_quiescent(max_ns=nt40.now + 10**10)
        assert nt40.machine.cpu.busy_ns - busy_before > ns_from_ms(50)

    def test_shell_non_animation_timer(self, nt40):
        from repro.winsys import SetTimer

        app = ShellApp(nt40)
        thread = app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        # Post a stray WM_TIMER with an unknown id; the default handler
        # must absorb it.
        nt40.kernel.post_message(thread, Message(WM.TIMER, payload=99))
        nt40.run_for(ns_from_ms(50))


class TestMessageRoutingEdges:
    def test_timer_for_finished_thread_dropped(self, nt40):
        from repro.winsys import Compute, SetTimer

        def program():
            yield SetTimer(timer_id=1, period_ns=ns_from_ms(20))
            yield Compute(nt40.personality.app_work(1000))
            # exits with the timer still armed

        nt40.spawn("brief", program())
        nt40.run_for(ns_from_ms(200))  # ticks fire; no crash, no delivery
        # The orphaned timer is reaped, restoring quiescence.
        assert not nt40.kernel._timers
        assert nt40.quiescent()

    def test_packet_with_done_socket_owner_dropped(self, nt40):
        from repro.winsys import Compute

        def program():
            yield Compute(nt40.personality.app_work(1000))

        thread = nt40.spawn("brief", program())
        nt40.bind_socket(thread)
        nt40.run_for(ns_from_ms(20))
        assert thread.done
        nt40.machine.nic.deliver("late")
        nt40.run_for(ns_from_ms(20))  # dropped silently
