"""Unit tests for GDI batching."""

import pytest

from repro.sim.work import Work
from repro.winsys.gdi import GdiBatch
from repro.winsys.nt351 import PERSONALITY as NT351
from repro.winsys.nt40 import PERSONALITY as NT40
from repro.winsys.win95 import PERSONALITY as WIN95
from repro.winsys.syscalls import GdiOp


def op(cycles=10_000):
    return GdiOp(base=Work(cycles, label="op"))


class TestGdiBatch:
    def test_empty_flush_returns_none(self):
        batch = GdiBatch(NT40)
        assert batch.flush() is None

    def test_add_accumulates(self):
        batch = GdiBatch(NT40)
        assert batch.add(op()) is None
        assert len(batch) == 1

    def test_flush_at_limit(self):
        batch = GdiBatch(NT40, batch_limit=3)
        assert batch.add(op()) is None
        assert batch.add(op()) is None
        work = batch.add(op())
        assert work is not None
        assert batch.empty

    def test_flush_cost_includes_overhead_and_ops(self):
        batch = GdiBatch(NT40, batch_limit=10)
        batch.add(op(10_000))
        batch.add(op(10_000))
        work = batch.flush()
        expected_min = NT40.gdi_flush_cycles + 2 * 10_000 * NT40.gdi_cycle_factor
        assert work.cycles >= expected_min * 0.99

    def test_batching_amortizes_overhead(self):
        """Per-op cost falls as batches grow (Section 1.1)."""
        single = GdiBatch(NT40, batch_limit=100)
        single.add(op())
        one = single.flush().cycles

        batch = GdiBatch(NT40, batch_limit=100)
        for _ in range(10):
            batch.add(op())
        ten = batch.flush().cycles
        assert ten / 10 < one

    def test_statistics(self):
        batch = GdiBatch(NT40, batch_limit=2)
        batch.add(op())
        batch.add(op())  # auto flush of 2
        batch.add(op())
        batch.flush()  # manual flush of 1
        assert batch.flushes == 2
        assert batch.ops_flushed == 3
        assert batch.mean_batch_size == 1.5

    def test_mean_batch_size_zero_when_unused(self):
        assert GdiBatch(NT40).mean_batch_size == 0.0


class TestPerOSCosts:
    def test_nt351_flush_overhead_largest(self):
        """The user-level Win32 server makes NT 3.51 flushes dearest."""
        costs = {}
        for personality in (NT351, NT40, WIN95):
            batch = GdiBatch(personality, batch_limit=10)
            batch.add(op(100_000))
            costs[personality.name] = batch.flush().cycles
        assert costs["win95"] < costs["nt40"] < costs["nt351"]

    def test_win95_flush_overhead_smallest(self):
        """No protection crossing in the Win95 GDI fast path."""
        assert WIN95.gdi_flush_cycles < NT40.gdi_flush_cycles < NT351.gdi_flush_cycles
