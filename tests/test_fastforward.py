"""The idle fast-forward path must be bit-identical to normal execution.

Every test here runs the same workload with the optimisation on and
off and asserts the *outputs* — trace records, clocks, counters,
serialized payloads, golden digests — match exactly.  The fast path is
an optimisation of the simulator, not of the simulated system; if any
of these fail, it changed the physics.
"""

import pytest

from repro.core import IdleLoopInstrument
from repro.core.isrcost import InterruptCostProbe
from repro.sim.engine import (
    SimulationError,
    Simulator,
    fast_forward_default,
    set_fast_forward_default,
)
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot

PERSONALITIES = ("nt351", "nt40", "win95")


@pytest.fixture(autouse=True)
def _restore_fast_forward_default():
    saved = fast_forward_default()
    yield
    set_fast_forward_default(saved)


def _idle_state(os_name, fast_forward, loop_ms=1.0, sim_ms=500.0):
    """Boot, trace an idle system, return every observable we compare."""
    set_fast_forward_default(fast_forward)
    system = boot(os_name)
    instrument = IdleLoopInstrument(system, loop_ms=loop_ms)
    instrument.install()
    system.run_for(ns_from_ms(sim_ms))
    return {
        "records": instrument.buffer.records(),
        "now": system.now,
        "events_executed": system.sim.events_executed,
        "seq": system.sim._seq,
        "busy_ns": system.machine.cpu.busy_ns,
        "batches": system.kernel.fast_forward_batches,
        "segments": system.kernel.fast_forward_segments,
        "ff_events": system.sim.events_fast_forwarded,
    }


class TestIdleEquivalence:
    @pytest.mark.parametrize("os_name", PERSONALITIES)
    def test_idle_trace_identical_with_and_without(self, os_name):
        on = _idle_state(os_name, fast_forward=True)
        off = _idle_state(os_name, fast_forward=False)
        assert on["batches"] > 0, "fast forward never fired on an idle system"
        assert on["segments"] > 0
        assert on["ff_events"] > 0
        assert off["batches"] == 0
        assert off["ff_events"] == 0
        assert on["records"] == off["records"]
        assert on["now"] == off["now"]
        assert on["busy_ns"] == off["busy_ns"]
        # The accounting contract: skipped segments count as executed
        # events and consume sequence numbers, so every event scheduled
        # after a batch carries the same (time, seq) key either way.
        assert on["events_executed"] == off["events_executed"]
        assert on["seq"] == off["seq"]

    def test_fine_loop_equivalence(self):
        # The high-resolution regime the ablation benchmark exercises.
        on = _idle_state("nt40", True, loop_ms=0.25, sim_ms=200.0)
        off = _idle_state("nt40", False, loop_ms=0.25, sim_ms=200.0)
        assert on["batches"] > 0
        assert on["records"] == off["records"]
        assert on["seq"] == off["seq"]

    def test_interrupt_cost_probe_parity(self):
        """Per-record counter readings pair identically (record_hook)."""
        reports = {}
        readings = {}
        for fast_forward in (True, False):
            set_fast_forward_default(fast_forward)
            system = boot("nt40")
            probe = InterruptCostProbe(system, loop_us=50.0)
            report = probe.measure(duration_ms=200.0)
            reports[fast_forward] = report
            readings[fast_forward] = list(probe._interrupt_readings)
        assert readings[True] == readings[False]
        assert (
            reports[True].single_interrupt_cycles
            == reports[False].single_interrupt_cycles
        )
        assert reports[True].interrupts_observed == reports[False].interrupts_observed


class TestPayloadEquivalence:
    def test_fig1_payload_byte_identical(self):
        from repro.core.serialize import experiment_to_dict
        from repro.experiments.registry import run_experiment
        from repro.verify.golden import canonical_json

        blobs = {}
        for fast_forward in (True, False):
            set_fast_forward_default(fast_forward)
            payload = experiment_to_dict(run_experiment("fig1", seed=0))
            blobs[fast_forward] = canonical_json(payload)
        assert blobs[True] == blobs[False]

    @pytest.mark.parametrize("os_name", PERSONALITIES)
    def test_strict_invariant_probe_outcomes_identical(self, os_name):
        """The --strict-invariants probe matrix must reach the same
        verdicts (and pass) with the fast path on and off."""
        from repro.verify.invariants import InvariantChecker, summarize_reports
        from repro.verify.probe import gather_probe_evidence

        checker = InvariantChecker()
        summaries = {}
        for fast_forward in (True, False):
            set_fast_forward_default(fast_forward)
            reports = checker.check(gather_probe_evidence(os_name, seed=0))
            summaries[fast_forward] = summarize_reports(reports)
        assert summaries[True] == summaries[False]
        assert summaries[True]["failed"] == []

    def test_golden_digests_hold_with_fast_forward_off(self):
        """The committed digests were blessed with the optimisation on;
        the slow path must reproduce them byte for byte."""
        from repro.verify.golden import check_golden

        set_fast_forward_default(False)
        for entry in check_golden():
            assert entry["status"] == "matched", entry


class TestEngineFastForward:
    def test_budget_bounded_by_next_event(self):
        sim = Simulator()
        sim.schedule(1000, lambda: None)
        # Segments of 300 ns: 3 fit strictly before the event at 1000.
        assert sim.fast_forward_budget(300) == 3
        # A segment that would land exactly on the event must run normally.
        assert sim.fast_forward_budget(500) == 1
        assert sim.fast_forward_budget(1000) == 0

    def test_budget_zero_when_event_is_immediate(self):
        sim = Simulator()
        sim.schedule(0, lambda: None)
        assert sim.fast_forward_budget(100) == 0

    def test_budget_zero_without_any_bound(self):
        # Empty calendar, no horizon: nothing to fast-forward *to*.
        assert Simulator().fast_forward_budget(100) == 0

    def test_budget_respects_run_horizon(self):
        sim = Simulator()
        seen = []

        def probe():
            seen.append(sim.fast_forward_budget(300))

        sim.schedule(100, probe)
        sim.run(until_ns=1000)
        # From now=100, 3 segments of 300 ns fit at or before 1000.
        assert seen == [3]

    def test_budget_zero_under_max_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.fast_forward_budget(10)))
        sim.schedule(10_000, lambda: None)
        sim.run(max_events=2)
        assert seen == [0]

    def test_fast_forward_advances_all_counters(self):
        sim = Simulator()
        sim.schedule(10_000, lambda: None)
        seq_before = sim._seq
        sim.fast_forward(3 * 300, events=3)
        assert sim.now == 900
        assert sim._seq == seq_before + 3
        assert sim.events_executed == 3
        assert sim.events_fast_forwarded == 3

    def test_fast_forward_refuses_to_cross_pending_event(self):
        sim = Simulator()
        sim.schedule(500, lambda: None)
        with pytest.raises(SimulationError):
            sim.fast_forward(500, events=1)

    def test_fast_forward_refuses_to_cross_horizon(self):
        sim = Simulator()
        errors = []

        def jump():
            try:
                sim.fast_forward(10_000, events=1)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(10, jump)
        sim.run(until_ns=100)
        assert len(errors) == 1

    def test_fast_forward_rejects_negative(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.fast_forward(-1, events=0)
        with pytest.raises(SimulationError):
            sim.fast_forward(0, events=-1)


class TestObservability:
    def test_fast_forward_and_calendar_metrics_surface(self):
        from repro.obs import observed

        with observed(metrics=True) as session:
            system = boot("nt40")
            instrument = IdleLoopInstrument(system)
            instrument.install()
            system.run_for(ns_from_ms(300))
            snapshot = session.metrics_snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        batches = counters["repro_sim_fast_forward_batches_total"]["samples"]
        assert batches[0]["value"] > 0
        segments = counters["repro_sim_fast_forward_segments_total"]["samples"]
        assert segments[0]["value"] >= batches[0]["value"]
        assert "repro_sim_fast_forward_ns_total" in counters
        depth = gauges["repro_sim_calendar_depth_high_water"]["samples"]
        assert depth[0]["value"] > 0
        assert "repro_sim_calendar_cancelled_fraction" in gauges
        assert "repro_sim_calendar_compactions" in gauges


class TestRunnerFlag:
    def test_no_fast_forward_flag_runs_clean(self, tmp_path):
        from repro.experiments.runner import main

        rc = main(
            [
                "fig1",
                "--jobs",
                "1",
                "--no-cache",
                "--checks-only",
                "--no-fast-forward",
            ]
        )
        assert rc == 0
        assert fast_forward_default() is False  # flag reached the global
