"""Unit tests for the WindowsSystem facade."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import Compute, GetMessage, Sleep, SyncRead, WM, boot
from repro.winsys.threads import IDLE_PRIORITY


class TestBoot:
    def test_boot_by_name(self):
        for name in ("nt351", "nt40", "win95"):
            system = boot(name)
            assert system.personality.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            boot("os2warp")

    def test_boot_starts_clock(self, nt40):
        nt40.run_for(ns_from_ms(100))
        assert nt40.machine.clock.ticks == 10

    def test_double_boot_is_noop(self, nt40):
        assert nt40.boot() is nt40


class TestSpawning:
    def test_spawn_idle_uses_idle_priority(self, nt40):
        def program():
            while True:
                yield Compute(nt40.personality.app_work(1000))

        thread = nt40.spawn_idle("idle", program())
        assert thread.priority == IDLE_PRIORITY

    def test_spawn_foreground(self, nt40):
        def program():
            yield GetMessage()

        thread = nt40.spawn("app", program(), foreground=True)
        assert nt40.kernel.foreground is thread

    def test_post_queuesync_reaches_foreground(self, nt40):
        got = []

        def program():
            message = yield GetMessage()
            got.append(message.kind)

        nt40.spawn("app", program(), foreground=True)
        nt40.run_for(ns_from_ms(2))
        nt40.post_queuesync()
        nt40.run_for(ns_from_ms(10))
        assert got == [WM.QUEUESYNC]


class TestQuiescence:
    def test_fresh_system_quiescent(self, nt40):
        nt40.run_for(ns_from_ms(5))
        assert nt40.quiescent()

    def test_busy_thread_not_quiescent(self, nt40):
        def program():
            yield Compute(nt40.personality.app_work(10_000_000))

        nt40.spawn("busy", program())
        nt40.run_for(ns_from_ms(1))
        assert not nt40.quiescent()

    def test_idle_priority_thread_is_quiescent(self, nt40):
        def program():
            while True:
                yield Compute(nt40.personality.app_work(1000))

        nt40.spawn_idle("idle", program())
        nt40.run_for(ns_from_ms(5))
        assert nt40.quiescent()

    def test_pending_io_not_quiescent(self, nt40):
        file = nt40.filesystem.create("f", 64 * 4096)

        def program():
            yield SyncRead(file, 0, 64 * 4096)

        nt40.spawn("reader", program())
        nt40.run_for(ns_from_ms(3))
        assert not nt40.quiescent()

    def test_run_until_quiescent_survives_injected_input(self, nt40):
        """The calendar gap between ISR and DPC must not fool it."""
        handled = []

        def program():
            while True:
                message = yield GetMessage()
                yield Compute(nt40.personality.app_work(500_000))
                handled.append(message.kind)

        nt40.spawn("app", program(), foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.run_until_quiescent(max_ns=nt40.now + ns_from_ms(5000))
        assert WM.CHAR in handled

    def test_run_until_quiescent_respects_deadline(self, nt40):
        def spinner():
            while True:
                yield Compute(nt40.personality.app_work(1_000_000))

        nt40.spawn("spinner", spinner())
        deadline = nt40.now + ns_from_ms(50)
        nt40.run_until_quiescent(max_ns=deadline)
        assert nt40.now >= deadline

    def test_sleeping_thread_is_quiescent(self, nt40):
        def program():
            yield Sleep(ns_from_ms(500))

        nt40.spawn("sleeper", program())
        nt40.run_for(ns_from_ms(30))
        assert nt40.quiescent()
