"""Unit tests for the Section 3.2 analysis representations."""

import numpy as np
import pytest

from repro.core.analysis import (
    cumulative_latency_curve,
    cumulative_vs_events,
    latency_histogram,
    variance_summary,
)
from repro.core.latency import LatencyEvent, LatencyProfile

MS = 1_000_000


def profile_of(*latencies_ms):
    return LatencyProfile(
        [
            LatencyEvent(start_ns=i * 200 * MS, latency_ns=int(l * MS))
            for i, l in enumerate(latencies_ms)
        ]
    )


class TestHistogram:
    def test_counts_per_bin(self):
        hist = latency_histogram(profile_of(1, 1.5, 3, 5), bin_ms=2.0)
        assert hist.total == 4
        assert hist.counts[0] == 2  # [0, 2)
        assert hist.counts[1] == 1  # [2, 4)

    def test_bin_validation(self):
        with pytest.raises(ValueError):
            latency_histogram(profile_of(1), bin_ms=0)

    def test_nonzero_bins(self):
        hist = latency_histogram(profile_of(1, 9), bin_ms=2.0)
        nonzero = hist.nonzero_bins()
        assert len(nonzero) == 2
        assert nonzero[0][2] == 1

    def test_empty_profile(self):
        hist = latency_histogram(profile_of(), bin_ms=2.0)
        assert hist.total == 0

    def test_max_ms_override(self):
        hist = latency_histogram(profile_of(1, 50), bin_ms=10.0, max_ms=20.0)
        # Events beyond max fall outside; histogram covers [0, 20].
        assert hist.bin_edges_ms[-1] <= 30.0


class TestCumulativeCurves:
    def test_sorted_by_duration_not_time(self):
        """Section 3.2: 'events are sorted by their duration'."""
        latencies, cumulative = cumulative_latency_curve(profile_of(30, 10, 20))
        assert list(latencies) == [10, 20, 30]
        assert list(cumulative) == [10, 30, 60]

    def test_cumulative_vs_events_index(self):
        index, cumulative = cumulative_vs_events(profile_of(5, 5, 5))
        assert list(index) == [1, 2, 3]
        assert cumulative[-1] == 15

    def test_monotone(self):
        _x, cumulative = cumulative_vs_events(profile_of(3, 1, 4, 1, 5))
        assert np.all(np.diff(cumulative) >= 0)

    def test_empty(self):
        latencies, cumulative = cumulative_latency_curve(profile_of())
        assert len(latencies) == 0 and len(cumulative) == 0


class TestVarianceSummary:
    def test_fields(self):
        summary = variance_summary(profile_of(50, 150, 2500))
        assert summary["count"] == 3
        assert summary["above_100ms"] == 2
        assert summary["above_2s"] == 1
        assert summary["max_ms"] == 2500
        assert summary["total_ms"] == 2700

    def test_empty(self):
        summary = variance_summary(profile_of())
        assert summary["count"] == 0
        assert summary["mean_ms"] == 0.0
