"""Unit tests for artifact serialization."""

import pytest

from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.samples import SampleTrace
from repro.core.serialize import (
    experiment_to_dict,
    load_json,
    profile_from_dict,
    profile_to_dict,
    save_json,
    trace_from_dict,
    trace_to_dict,
)

MS = 1_000_000


class TestTraceRoundTrip:
    def test_exact_roundtrip(self):
        trace = SampleTrace([0, MS, 2 * MS, 9 * MS], loop_ns=MS)
        restored = trace_from_dict(trace_to_dict(trace))
        assert list(restored.times) == list(trace.times)
        assert restored.loop_ns == trace.loop_ns
        assert restored.total_busy_ns() == trace.total_busy_ns()

    def test_kind_checked(self):
        with pytest.raises(ValueError):
            trace_from_dict({"kind": "something-else"})


class TestProfileRoundTrip:
    def test_exact_roundtrip(self):
        profile = LatencyProfile(
            [
                LatencyEvent(
                    start_ns=5 * MS,
                    latency_ns=3 * MS,
                    busy_ns=2 * MS,
                    message_kinds=("WM_CHAR", "WM_KEYUP"),
                    first_input="a",
                    label="keystroke",
                )
            ],
            name="run-1",
        )
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.name == "run-1"
        event = restored[0]
        assert event.start_ns == 5 * MS
        assert event.latency_ns == 3 * MS
        assert event.busy_ns == 2 * MS
        assert event.message_kinds == ("WM_CHAR", "WM_KEYUP")
        assert event.first_input == "a"
        assert event.label == "keystroke"

    def test_kind_checked(self):
        with pytest.raises(ValueError):
            profile_from_dict({"kind": "sample-trace"})

    def test_statistics_survive(self):
        profile = LatencyProfile(
            [LatencyEvent(start_ns=i * MS, latency_ns=(i + 1) * MS) for i in range(10)]
        )
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.total_latency_ns == profile.total_latency_ns
        assert restored.mean_ms() == profile.mean_ms()


class TestFileIo:
    def test_save_and_load(self, tmp_path):
        trace = SampleTrace([0, MS], loop_ns=MS)
        path = save_json(trace_to_dict(trace), tmp_path / "trace.json")
        assert path.exists()
        restored = trace_from_dict(load_json(path))
        assert restored.loop_ns == MS

    def test_json_is_diffable(self, tmp_path):
        """Stable key order so archived artifacts diff cleanly."""
        trace = SampleTrace([0, MS], loop_ns=MS)
        a = save_json(trace_to_dict(trace), tmp_path / "a.json").read_text()
        b = save_json(trace_to_dict(trace), tmp_path / "b.json").read_text()
        assert a == b


class TestExperimentArchive:
    def test_archives_checks_and_data(self):
        from repro.experiments import run_experiment

        result = run_experiment("fig1", seed=0)
        payload = experiment_to_dict(result)
        assert payload["id"] == "fig1"
        assert payload["checks"]
        assert all(check["passed"] for check in payload["checks"])
        # Must be valid JSON end to end.
        import json

        json.dumps(payload)

    def test_numpy_values_convert(self):
        import numpy as np

        class Dummy:
            id = "x"
            title = "t"
            tables = ()
            figures = ()
            data = {"value": np.float64(1.5), "arr": [np.int64(2)]}
            checks = ()

        payload = experiment_to_dict(Dummy())
        assert payload["data"]["value"] == 1.5
        assert payload["data"]["arr"] == [2]
