"""Chaos plans, the seeded engine, scenarios and the circuit breaker.

The contract under test is determinism: a ``(plan, seed)`` pair *is*
the failure schedule — same decisions on any machine, any attempt
ordering, any batching — plus the attempt-channel separation that makes
windowed faults provably unable to fire on healing re-runs.
"""

import pytest

from repro.chaos import (
    CHAOS_KINDS,
    HEALABLE_SCENARIOS,
    HEDGE_ATTEMPT_BASE,
    RECOVERY_ATTEMPT_BASE,
    ChaosEngine,
    ChaosPlan,
    ChaosPoison,
    ChaosSpec,
    CircuitBreaker,
    chaos_harness,
    chaos_payload,
    chaos_scenario_names,
    chaos_scenarios,
    get_chaos_scenario,
)


# ----------------------------------------------------------------------
# Specs and plans: validation + serialization
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown chaos kind"):
        ChaosSpec.make("bad", "meteor-strike")


def test_spec_rejects_bad_probability():
    with pytest.raises(ValueError, match="probability"):
        ChaosSpec.make("bad", "crash", probability=1.5)
    with pytest.raises(ValueError, match="probability"):
        ChaosSpec.make("bad", "crash", probability=-0.1)


def test_spec_rejects_bad_max_attempt():
    with pytest.raises(ValueError, match="max_attempt"):
        ChaosSpec.make("bad", "crash", max_attempt=0)


def test_plan_rejects_duplicate_spec_names():
    with pytest.raises(ValueError, match="duplicate"):
        ChaosPlan(
            "dup",
            (ChaosSpec.make("a", "crash"), ChaosSpec.make("a", "hang")),
        )


def test_plan_round_trips_through_dict():
    plan = ChaosPlan(
        "roundtrip",
        (
            ChaosSpec.make("c", "crash", probability=0.5, max_attempt=2),
            ChaosSpec.make(
                "w", "corrupt-write", params={"scope": "cache"}
            ),
        ),
    )
    clone = ChaosPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert clone.fingerprint() == plan.fingerprint()
    assert clone.kinds == ["crash", "corrupt-write"]


def test_plan_from_dict_rejects_wrong_kind():
    with pytest.raises(ValueError, match="not a chaos-plan"):
        ChaosPlan.from_dict({"kind": "fault-plan", "name": "x", "specs": []})


def test_fingerprint_is_sensitive_to_content():
    base = ChaosPlan("p", (ChaosSpec.make("a", "crash", probability=0.5),))
    tweaked = ChaosPlan("p", (ChaosSpec.make("a", "crash", probability=0.6),))
    assert base.fingerprint() != tweaked.fingerprint()


# ----------------------------------------------------------------------
# Engine: deterministic schedules, windows, channels
# ----------------------------------------------------------------------
def _engine(probability=0.5, max_attempt=None, seed=0):
    plan = ChaosPlan(
        "t",
        (
            ChaosSpec.make(
                "flip", "crash", probability=probability, max_attempt=max_attempt
            ),
        ),
    )
    return ChaosEngine(plan, seed=seed)


def test_engine_schedule_replays_exactly():
    first = _engine(seed=7)
    second = _engine(seed=7)
    jobs = [f"job:{i}" for i in range(64)]
    schedule = [(j, a) for j in jobs for a in range(3)]
    assert [bool(first.active(j, a)) for j, a in schedule] == [
        bool(second.active(j, a)) for j, a in schedule
    ]


def test_engine_schedule_depends_on_seed():
    a, b = _engine(seed=1), _engine(seed=2)
    jobs = [f"job:{i}" for i in range(128)]
    assert [bool(a.active(j, 0)) for j in jobs] != [
        bool(b.active(j, 0)) for j in jobs
    ]


def test_engine_probability_extremes():
    always = _engine(probability=1.0)
    never = _engine(probability=0.0)
    for i in range(32):
        assert always.active(f"j{i}", 0)
        assert not never.active(f"j{i}", 0)


def test_max_attempt_windows_off_healing_channels():
    engine = _engine(probability=1.0, max_attempt=1)
    assert engine.active("job", 0)  # first plain attempt: fires
    assert not engine.active("job", 1)  # retry round: healed
    # Hedge and recovery channels sit far above any window, by
    # construction — this is what makes windowed faults healable.
    assert not engine.active("job", HEDGE_ATTEMPT_BASE)
    assert not engine.active("job", RECOVERY_ATTEMPT_BASE)
    assert not engine.active("job", RECOVERY_ATTEMPT_BASE + 5)


def test_poison_is_stable_per_index_and_never_job_active():
    plan = ChaosPlan(
        "p", (ChaosSpec.make("poison", "poison", probability=0.3),)
    )
    engine = ChaosEngine(plan, seed=11)
    poisoned = {i for i in range(200) if engine.poisoned(i)}
    assert poisoned  # 0.3 over 200 draws: statistically certain
    assert poisoned != set(range(200))
    # Stable: recomputing gives the identical set (bisection relies on
    # this — re-running a poisoned session can never make it pass).
    again = {i for i in range(200) if ChaosEngine(plan, seed=11).poisoned(i)}
    assert again == poisoned
    # Poison keys on sessions, not jobs: it never fires at harness entry.
    for attempt in (0, 1, HEDGE_ATTEMPT_BASE, RECOVERY_ATTEMPT_BASE):
        assert not engine.active("fleet:0-50", attempt)


def test_harness_yields_none_without_payload():
    with chaos_harness(None, "job") as active:
        assert active is None


def test_harness_poison_check_raises():
    plan = ChaosPlan("p", (ChaosSpec.make("all", "poison", probability=1.0),))
    with chaos_harness(chaos_payload(plan, seed=0), "fleet:0-4") as active:
        assert active is not None
        with pytest.raises(ChaosPoison):
            active.check_poison(2)


def test_chaos_payload_shape():
    plan = ChaosPlan("p", (ChaosSpec.make("c", "crash"),))
    payload = chaos_payload(plan, seed=9)
    assert payload == {"plan": plan.to_dict(), "seed": 9}
    stamped = chaos_payload(plan, seed=9, attempt_base=RECOVERY_ATTEMPT_BASE)
    assert stamped["attempt_base"] == RECOVERY_ATTEMPT_BASE


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
def test_scenarios_all_build_and_names_sorted():
    scenarios = chaos_scenarios()
    assert sorted(scenarios) == chaos_scenario_names()
    for name, plan in scenarios.items():
        assert isinstance(plan, ChaosPlan)
        assert plan.name == name
        for spec in plan:
            assert spec.kind in CHAOS_KINDS


def test_healable_scenarios_are_known_and_exclude_poison():
    names = set(chaos_scenario_names())
    assert set(HEALABLE_SCENARIOS) <= names
    for name in HEALABLE_SCENARIOS:
        assert "poison" not in get_chaos_scenario(name).kinds
    for name in names - set(HEALABLE_SCENARIOS):
        assert "poison" in get_chaos_scenario(name).kinds


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        get_chaos_scenario("tsunami")


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_opens_at_threshold():
    breaker = CircuitBreaker(threshold=2)
    key = "win95/smoke"
    assert breaker.allow(key)
    breaker.record(key)
    assert breaker.allow(key)
    breaker.record(key)
    assert not breaker.allow(key)
    assert breaker.tripped == {key: 2}
    # Other groups are unaffected.
    assert breaker.allow("nt40/healthy")


def test_breaker_threshold_zero_never_opens():
    breaker = CircuitBreaker(threshold=0)
    for _ in range(10):
        breaker.record("g")
    assert breaker.allow("g")
    assert breaker.tripped == {}


def test_breaker_rejects_negative_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=-1)


def test_breaker_to_dict_accounts_skips():
    breaker = CircuitBreaker(threshold=1)
    breaker.record("g")
    breaker.skip("g")
    breaker.skip("g")
    state = breaker.to_dict()
    assert state["failures"] == {"g": 1}
    assert state["skips"] == {"g": 2}
    assert state["tripped"] == ["g"]
