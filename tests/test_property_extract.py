"""Property-based tests for event extraction invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extract import EventExtractor
from repro.core.samples import SampleTrace

MS = 1_000_000


@st.composite
def busy_timelines(draw):
    """Random idle timelines with injected busy bursts."""
    bursts = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=200),  # gap ms before burst
                st.integers(min_value=1, max_value=50),  # busy ms
            ),
            max_size=15,
        )
    )
    times = [0]
    t = 0
    busy_total = 0
    for gap, busy in bursts:
        # idle records through the gap
        for _ in range(gap):
            t += 1
            times.append(t * MS)
        # burst: one elongated interval
        t += busy + 1
        times.append(t * MS)
        busy_total += busy
    # trailing idle
    for _ in range(5):
        t += 1
        times.append(t * MS)
    return SampleTrace(times, loop_ns=MS), busy_total, len(bursts)


@given(busy_timelines())
@settings(max_examples=100)
def test_extracted_busy_conserved(timeline):
    trace, busy_total, _count = timeline
    periods = EventExtractor().busy_periods(trace)
    assert sum(p.busy_ns for p in periods) == busy_total * MS


@given(busy_timelines())
@settings(max_examples=100)
def test_events_never_overlap(timeline):
    trace, _busy_total, _count = timeline
    profile = EventExtractor().extract(trace).profile
    events = sorted(profile.events, key=lambda e: e.start_ns)
    for a, b in zip(events, events[1:]):
        assert a.end_ns <= b.start_ns


@given(busy_timelines(), st.integers(min_value=0, max_value=20))
@settings(max_examples=100)
def test_merging_only_reduces_event_count(timeline, merge_gap_ms):
    trace, _busy_total, _count = timeline
    unmerged = EventExtractor(merge_gap_ns=0).extract(trace).profile
    merged = EventExtractor(merge_gap_ns=merge_gap_ms * MS).extract(trace).profile
    assert len(merged) <= len(unmerged)
    # Total busy is conserved by merging.
    assert sum(e.busy_ns for e in merged) == sum(e.busy_ns for e in unmerged)


@given(busy_timelines(), st.integers(min_value=1, max_value=40))
@settings(max_examples=100)
def test_min_event_filter_monotone(timeline, min_ms):
    trace, _busy_total, _count = timeline
    all_events = EventExtractor().extract(trace).profile
    filtered = EventExtractor(min_event_ns=min_ms * MS).extract(trace).profile
    assert len(filtered) <= len(all_events)
    assert all(e.latency_ns >= min_ms * MS for e in filtered)
