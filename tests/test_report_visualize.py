"""Unit tests for table rendering and terminal visualization."""

import pytest

from repro.core.analysis import latency_histogram
from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.report import TextTable, format_quantity
from repro.core.visualize import (
    bar_chart,
    cumulative_latency_plot,
    curve_plot,
    event_time_series,
    grouped_bar_chart,
    log_histogram,
    utilization_profile,
)

MS = 1_000_000


def profile_of(*latencies_ms):
    return LatencyProfile(
        [
            LatencyEvent(start_ns=i * 100 * MS, latency_ns=int(l * MS))
            for i, l in enumerate(latencies_ms)
        ]
    )


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(["name", "value"])
        table.add_row("a", 1)
        table.add_row("longer-name", 123456)
        text = table.render()
        lines = text.splitlines()
        assert len({len(line) for line in lines[0:2]}) == 1  # header & rule align

    def test_wrong_cell_count_rejected(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"]).add_row(1)

    def test_title(self):
        table = TextTable(["x"], title="My Table")
        table.add_row(1)
        assert table.render().startswith("My Table")

    def test_add_rows(self):
        table = TextTable(["a", "b"]).add_rows([(1, 2), (3, 4)])
        assert len(table.rows) == 2

    def test_format_quantity(self):
        assert format_quantity(1234567) == "1,234,567"
        assert format_quantity(3.14159) == "3.14"
        assert format_quantity(True) == "yes"
        assert format_quantity("text") == "text"


class TestCharts:
    def test_bar_chart_scales(self):
        text = bar_chart([("a", 10.0), ("b", 20.0)], width=20)
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_bar_chart_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_bar_chart_overflow_marker(self):
        text = bar_chart([("a", 100.0)], width=10, max_value=10.0)
        assert ">" in text

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart({"metric": {"nt40": 1.0, "nt351": 2.0}})
        assert "metric:" in text
        assert "nt40" in text

    def test_event_time_series_renders(self):
        text = event_time_series(profile_of(10, 200, 50), width=40, height=8)
        assert "|" in text
        assert "threshold" in text

    def test_event_time_series_empty(self):
        assert event_time_series(profile_of()) == "(no events)"

    def test_log_histogram(self):
        hist = latency_histogram(profile_of(*([1] * 100 + [50])), bin_ms=2.0)
        text = log_histogram(hist)
        assert "100" in text and "ms" in text

    def test_curve_plot(self):
        text = curve_plot([0, 1, 2], [0, 10, 40], x_label="x", y_label="y")
        assert "*" in text
        assert "x:" in text

    def test_curve_plot_empty(self):
        assert curve_plot([], []) == "(no data)"

    def test_cumulative_latency_plot(self):
        assert "*" in cumulative_latency_plot(profile_of(1, 2, 3))

    def test_utilization_profile(self):
        text = utilization_profile([0, MS, 2 * MS], [0.0, 0.5, 1.0], width=30, height=5)
        assert "#" in text
        assert "peak" in text

    def test_utilization_profile_empty(self):
        assert utilization_profile([], []) == "(no samples)"
