"""Runner-level observability: CLI flags, stats subcommand, logging."""

import json

import pytest

from repro.core.serialize import load_json, manifest_from_dict, metrics_from_dict
from repro.experiments.runner import _normalize_id, main
from repro.experiments.stats import render_stats, stats_main
from repro.obs import get_logger, set_level, validate_chrome_trace


@pytest.fixture(autouse=True)
def _reset_log_level():
    yield
    set_level("info")


class TestLogger:
    def test_format_and_fields(self, capsys):
        get_logger("repro.test").warning("queue backed up", depth=3)
        err = capsys.readouterr().err
        assert "[warning] repro.test: queue backed up depth=3" in err

    def test_level_threshold(self, capsys):
        logger = get_logger("repro.test")
        set_level("error")
        logger.info("quiet")
        logger.error("loud")
        err = capsys.readouterr().err
        assert "quiet" not in err
        assert "loud" in err

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            set_level("verbose")


class TestCliValidation:
    """Usage errors keep their exit codes and message substance."""

    def test_invalid_seed(self, capsys):
        assert main(["fig1", "--seed", "zero"]) == 2
        err = capsys.readouterr().err
        assert "invalid --seed value" in err
        assert "[error]" in err

    def test_bad_retries(self, capsys):
        assert main(["fig1", "--retries", "-1"]) == 2
        assert "--retries must be >= 0" in capsys.readouterr().err

    def test_unknown_ids(self, capsys):
        assert main(["nonesuch"]) == 2
        assert "unknown experiment ids: nonesuch" in capsys.readouterr().err

    def test_log_level_flag_silences_info(self, tmp_path, capsys):
        manifest_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fig1",
                    "--no-cache",
                    "--log-level",
                    "warning",
                    "--trace-out",
                    str(tmp_path / "t.json"),
                ]
            )
            == 0
        )
        assert "wrote" not in capsys.readouterr().err

    def test_zero_padded_ids_normalize(self):
        assert _normalize_id("fig07") == "fig7"
        assert _normalize_id("fig1") == "fig1"
        assert _normalize_id("nonesuch07") == "nonesuch07"

    def test_run_verb_is_optional(self, capsys):
        assert main(["run", "--list"]) == 0
        assert "fig1" in capsys.readouterr().out


class TestObsOutputs:
    def test_trace_and_metrics_files(self, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        save_dir = tmp_path / "out"
        code = main(
            [
                "fig1",
                "--no-cache",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
                "--save",
                str(save_dir),
            ]
        )
        assert code == 0

        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert len(trace["traceEvents"]) > 100

        metrics = metrics_from_dict(load_json(metrics_path))
        counters = metrics["counters"]
        assert "repro_sim_context_switches_total" in counters
        assert "repro_harness_jobs_total" in counters
        (sample,) = counters["repro_harness_jobs_total"]["samples"]
        assert sample == {"labels": {"status": "completed"}, "value": 1.0}

        manifest = manifest_from_dict(load_json(save_dir / "manifest.json"))
        assert manifest["obs"]["trace_out"] == str(trace_path)
        assert manifest["obs"]["metrics"]["counters"]
        (entry,) = manifest["experiments"]
        assert entry["cache_status"] == "miss"
        assert entry["queue_s"] == 0.0
        assert entry["checkpoint_writes"] == 0

    def test_prom_suffix_gets_text_format(self, tmp_path):
        prom_path = tmp_path / "m.prom"
        assert (
            main(["fig1", "--no-cache", "--metrics-out", str(prom_path)]) == 0
        )
        text = prom_path.read_text()
        assert "# TYPE repro_harness_jobs_total counter" in text
        assert 'repro_harness_jobs_total{status="completed"} 1' in text

    def test_manifest_obs_section_without_flags(self, tmp_path):
        """Harness telemetry lands in the manifest even with no obs
        flags — the sweep's own accounting is always cheap."""
        save_dir = tmp_path / "out"
        assert main(["fig1", "--no-cache", "--save", str(save_dir)]) == 0
        manifest = manifest_from_dict(load_json(save_dir / "manifest.json"))
        counters = manifest["obs"]["metrics"]["counters"]
        assert "repro_harness_cache_reads_total" in counters
        # No session was open, so no sim metrics should appear.
        assert "repro_sim_context_switches_total" not in counters


class TestStats:
    def _manifest(self, tmp_path):
        save_dir = tmp_path / "out"
        assert main(["fig1", "--no-cache", "--save", str(save_dir)]) == 0
        return save_dir

    def test_stats_subcommand_renders(self, tmp_path, capsys):
        save_dir = self._manifest(tmp_path)
        capsys.readouterr()
        assert main(["stats", str(save_dir / "manifest.json")]) == 0
        out = capsys.readouterr().out
        assert "sweep of 1 job(s)" in out
        assert "fig1" in out
        assert "repro_harness_jobs_total{status=completed} 1" in out

    def test_stats_accepts_directory(self, tmp_path, capsys):
        save_dir = self._manifest(tmp_path)
        capsys.readouterr()
        assert stats_main([str(save_dir)]) == 0
        assert "totals:" in capsys.readouterr().out

    def test_stats_missing_manifest(self, tmp_path, capsys):
        assert stats_main([str(tmp_path / "nope.json")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_render_tolerates_pre_obs_manifests(self):
        manifest = {
            "jobs": 2,
            "code_version": "abc",
            "experiments": [
                {
                    "id": "fig1",
                    "seed": 0,
                    "wall_s": 1.5,
                    "cache_hit": True,
                    "failed_checks": [],
                    "error": None,
                }
            ],
        }
        text = render_stats(manifest)
        assert "fig1" in text
        assert "hit" in text
        # Columns the old manifest lacks render as placeholders.
        assert "-" in text
