"""Property-based tests for the wait/think FSM."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import StateInput, Transition, UserState, WaitThinkFSM, classify_timeline

transitions_strategy = st.lists(
    st.builds(
        Transition,
        time_ns=st.integers(min_value=0, max_value=10**9),
        which=st.sampled_from(list(StateInput)),
        active=st.booleans(),
    ),
    max_size=60,
)


@given(transitions_strategy)
@settings(max_examples=150)
def test_spans_partition_the_window(transitions):
    start, end = 0, 10**9
    spans, summary = classify_timeline(transitions, start, end)
    assert summary.wait_ns + summary.think_ns == end - start
    # Spans tile the window without gaps or overlaps.
    cursor = start
    for span in spans:
        assert span.start_ns == cursor
        assert span.end_ns > span.start_ns
        cursor = span.end_ns
    assert cursor == end


@given(transitions_strategy)
@settings(max_examples=150)
def test_adjacent_spans_alternate_state(transitions):
    spans, _summary = classify_timeline(transitions, 0, 10**9)
    for a, b in zip(spans, spans[1:]):
        assert a.state != b.state


@given(transitions_strategy)
@settings(max_examples=150)
def test_final_state_matches_replayed_inputs(transitions):
    end = 10**9
    fsm = WaitThinkFSM()
    # Transitions at exactly the window end take effect after it.
    for transition in sorted(
        (t for t in transitions if t.time_ns < end), key=lambda t: t.time_ns
    ):
        fsm.apply(transition)
    spans, _summary = classify_timeline(transitions, 0, end)
    if spans:
        assert spans[-1].state == fsm.state


@given(transitions_strategy)
@settings(max_examples=100)
def test_unnoticeable_wait_never_exceeds_wait(transitions):
    _spans, summary = classify_timeline(transitions, 0, 10**9)
    assert 0 <= summary.unnoticeable_wait_ns <= summary.wait_ns
