"""Tests for input-latency decomposition."""

import pytest

from repro.apps import NotepadApp
from repro.core import MeasurementSession
from repro.core.decompose import decompose_events
from repro.workload.script import InputScript, Key


@pytest.fixture(scope="module")
def run():
    script = InputScript([Key(c, pause_ms=150.0) for c in "decompose"])
    session = MeasurementSession("nt40", NotepadApp)
    return session.run(script, queuesync=False, max_seconds=60)


class TestDecomposition:
    def test_every_keystroke_decomposed(self, run):
        summary = decompose_events(
            run.profile, run.driver.injection_times, run.monitor
        )
        assert len(summary.events) == len("decompose")

    def test_stage_values_physical(self, run):
        summary = decompose_events(
            run.profile, run.driver.injection_times, run.monitor
        )
        # Pipeline = 2 ISRs + dispatch DPC: a few hundred microseconds.
        assert 0.05 <= summary.mean_pipeline_ms <= 1.0
        # Handling dominates a Notepad keystroke.
        assert summary.mean_handling_ms > summary.mean_pipeline_ms
        assert summary.mean_handling_ms > 2.0

    def test_invisible_fraction_matches_figure1(self, run):
        """The getchar method misses the pipeline+queue share."""
        summary = decompose_events(
            run.profile, run.driver.injection_times, run.monitor
        )
        assert 0.02 <= summary.invisible_fraction <= 0.4

    def test_stage_sum_close_to_event_latency(self, run):
        summary = decompose_events(
            run.profile, run.driver.injection_times, run.monitor
        )
        for item in summary.events:
            # Stage sum is measured from injection; event latency from
            # the busy-period anchor — they agree within the idle-loop
            # resolution plus the anchor error.
            assert abs(item.total_ns - item.event.latency_ns) <= 2_500_000

    def test_table_renders(self, run):
        summary = decompose_events(
            run.profile, run.driver.injection_times, run.monitor
        )
        text = summary.table().render()
        assert "pipeline" in text and "queue" in text and "handling" in text

    def test_unmatched_events_skipped(self, run):
        summary = decompose_events(run.profile, [], run.monitor)
        assert summary.events == []
        assert summary.invisible_fraction == 0.0
