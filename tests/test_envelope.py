"""Stage envelopes: conservation, determinism, sampling, attribution.

The envelope layer's contract (see ``docs/stage-envelopes.md``):

* **Conservation** — per-event stage durations are charged by moving a
  single cursor, so they sum *exactly* (integer nanoseconds) to the
  measured wait, for every event, always.
* **Determinism-neutrality** — envelopes read the clock and draw
  sampling decisions from a dedicated forked RNG stream, so payloads,
  golden digests and the non-stage portion of traces are byte-identical
  with envelopes on, off, or sampled at any rate.
* **Mergeability** — bottleneck attribution is built on the fleet's
  commutative quantile sketches, so merged digests are independent of
  merge order and shard shape.
"""

import json
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.notepad import NotepadApp
from repro.core.serialize import experiment_to_dict
from repro.experiments.registry import run_experiment
from repro.obs import (
    STAGES,
    EnvelopeConfig,
    StageAttribution,
    chrome_trace,
    dominant_stage_of,
    observed,
    validate_chrome_trace,
)
from repro.sim.engine import set_fast_forward_default
from repro.sim.timebase import ns_from_ms
from repro.verify.golden import GOLDEN_SET, payload_digest
from repro.winsys import boot


def _typed_recorders(
    os_name="nt40", text="hello", seed=0, envelopes=None, trace=False
):
    """Boot, type ``text`` into Notepad, return (session, recorders)."""
    with observed(
        trace=trace, metrics=False, envelopes=envelopes
    ) as session:
        system = boot(os_name, seed=seed)
        app = NotepadApp(system)
        app.start(foreground=True)
        system.run_for(ns_from_ms(150))
        for char in text:
            system.machine.keyboard.keystroke(char)
            system.run_for(ns_from_ms(140))
        system.run_for(ns_from_ms(300))
    return session, session.envelope_recorders


def _completed(recorders):
    return [e for recorder in recorders for e in recorder.completed]


# ---------------------------------------------------------------------------
# Conservation
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    text=st.text(alphabet="abcdefgh", min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=3),
    os_name=st.sampled_from(["nt351", "nt40", "win95"]),
)
def test_stage_durations_sum_exactly_to_wait(text, seed, os_name):
    _, recorders = _typed_recorders(os_name=os_name, text=text, seed=seed)
    envelopes = _completed(recorders)
    assert envelopes, "typing must produce completed envelopes"
    for envelope in envelopes:
        assert sum(envelope.stage_ns.values()) == (
            envelope.done_ns - envelope.inject_ns
        ), f"conservation violated for {envelope.to_dict()}"
        assert all(duration >= 0 for duration in envelope.stage_ns.values())
        assert set(envelope.stage_ns) <= set(STAGES)


def test_remote_envelopes_conserve_and_carry_network_stage():
    from repro.remote import LinkConfig, RemoteSession, TransportConfig

    with observed(trace=False, metrics=False) as session:
        system = boot("nt40", seed=0)
        link = LinkConfig.symmetric("test", rtt_ms=40.0, jitter_ms=5.0, loss=0.05)
        remote = RemoteSession(
            system, link, transport=TransportConfig(prediction=False)
        )
        remote.run(chars=6, cadence_ms=130.0)
    envelopes = [
        e for e in _completed(session.envelope_recorders) if e.kind == "remote"
    ]
    assert envelopes
    for envelope in envelopes:
        assert sum(envelope.stage_ns.values()) == (
            envelope.done_ns - envelope.inject_ns
        )
    assert any("network" in e.stage_ns for e in envelopes)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def _envelope_bytes(**kwargs):
    _, recorders = _typed_recorders(**kwargs)
    return json.dumps(
        [e.to_dict() for e in _completed(recorders)], sort_keys=True
    ).encode()


def test_envelopes_byte_identical_with_fast_forward_on_and_off():
    try:
        set_fast_forward_default(True)
        fast = _envelope_bytes()
        set_fast_forward_default(False)
        slow = _envelope_bytes()
    finally:
        set_fast_forward_default(True)
    assert fast == slow


@pytest.mark.parametrize("rate", [0.0, 0.3, 1.0])
def test_sampling_rate_leaves_golden_digest_unchanged(rate):
    experiment_id, seed = GOLDEN_SET[0]
    plain = payload_digest(
        experiment_to_dict(run_experiment(experiment_id, seed=seed))
    )
    with observed(
        trace=True, metrics=True, envelopes={"sample_rate": rate}
    ):
        sampled = payload_digest(
            experiment_to_dict(run_experiment(experiment_id, seed=seed))
        )
    assert sampled == plain


def test_sampling_only_changes_stage_trace_events():
    """The non-stage portion of a trace is identical at any rate.

    Traces deliberately embed real wall-clock (``wall_ns``) and a
    process-global thread counter for diagnostics, so the comparison
    normalizes those away and keys events by track *name*: everything
    the simulation determines must match event for event.
    """

    def _non_stage_events(rate):
        session, _ = _typed_recorders(
            text="abc", trace=True, envelopes={"sample_rate": rate}
        )
        events = chrome_trace(session.tracer)["traceEvents"]
        tracks = {
            (event["pid"], event["tid"]): re.sub(
                r" \[t\d+\]$", "", str(event["args"]["name"])
            )
            for event in events
            if event.get("name") == "thread_name"
        }
        normalized = []
        for event in events:
            if event.get("ph") == "M":
                continue
            track = tracks.get((event["pid"], event["tid"]), "")
            if event.get("cat") == "stage" or track.startswith("stage:"):
                continue
            args = {
                key: value
                for key, value in (event.get("args") or {}).items()
                if key not in ("wall_ns", "tid")
            }
            normalized.append(
                {
                    "pid": event["pid"],
                    "track": track,
                    "ts": event["ts"],
                    "name": event["name"],
                    "ph": event.get("ph"),
                    "cat": event.get("cat"),
                    "args": args,
                }
            )
        return normalized

    assert _non_stage_events(1.0) == _non_stage_events(0.0)


def test_sampling_rate_zero_records_no_envelopes():
    _, recorders = _typed_recorders(envelopes={"sample_rate": 0.0})
    assert not _completed(recorders)
    assert all(r.started == 0 for r in recorders)
    assert sum(r.sampled_out for r in recorders) > 0


# ---------------------------------------------------------------------------
# Trace integration
# ---------------------------------------------------------------------------
def test_stage_tracks_validate_as_chrome_trace():
    session, recorders = _typed_recorders(trace=True)
    assert _completed(recorders)
    document = chrome_trace(session.tracer)
    assert validate_chrome_trace(document) == []
    stage_tracks = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event.get("name") == "thread_name"
        and str(event.get("args", {}).get("name", "")).startswith("stage:")
    }
    assert {"stage:input", "stage:queue", "stage:handler"} <= stage_tracks


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------
def test_attribution_merge_is_commutative():
    _, recorders_a = _typed_recorders(os_name="nt40", text="abcd")
    _, recorders_b = _typed_recorders(os_name="win95", text="xyz")
    ab = StageAttribution()
    ab.merge(recorders_a[0].attribution)
    ab.merge(recorders_b[0].attribution)
    ba = StageAttribution()
    ba.merge(recorders_b[0].attribution)
    ba.merge(recorders_a[0].attribution)
    assert ab.digest() == ba.digest()
    roundtrip = StageAttribution.from_dict(ab.to_dict())
    assert roundtrip.digest() == ab.digest()
    assert ab.dominant_stage() in STAGES
    assert dominant_stage_of(ab.to_dict()) == ab.dominant_stage()


def test_fleet_envelope_digest_is_shard_shape_independent():
    from repro.fleet.population import PopulationConfig, SessionPopulation
    from repro.fleet.session import run_session
    from repro.fleet.sketch import FleetAggregator

    population = SessionPopulation(PopulationConfig(size=4, seed=0))
    results = [run_session(population.spec(i)) for i in range(4)]
    assert any(r.envelopes for r in results)

    direct = FleetAggregator()
    for result in results:
        direct.add_session(result)
    shard_a, shard_b = FleetAggregator(), FleetAggregator()
    for i, result in enumerate(results):
        (shard_a if i % 2 else shard_b).add_session(result)
    merged = shard_b.merge(shard_a)
    assert merged.digest() == direct.digest()
    rebuilt = FleetAggregator.from_dict(direct.to_dict())
    assert rebuilt.digest() == direct.digest()
    key = direct.group_keys()[0]
    assert direct.dominant_stage(*key) in STAGES


# ---------------------------------------------------------------------------
# Budgets and config
# ---------------------------------------------------------------------------
def test_budget_alerts_fire_and_carry_context():
    session, recorders = _typed_recorders(
        envelopes={"budgets_ms": {"handler": 0.001}}
    )
    alerts = session.stage_alerts()
    assert alerts
    alert = alerts[0]
    assert alert["stage"] == "handler"
    assert alert["budget_ms"] == 0.001
    assert alert["actual_ms"] > alert["budget_ms"]
    assert alert["os"] == "nt40"
    snapshot = session.stage_snapshot()
    assert snapshot["alerts"] == alerts
    assert snapshot["completed"] > 0


def test_envelope_config_coercion():
    assert EnvelopeConfig.coerce(None).enabled
    config = EnvelopeConfig.coerce(
        {"sample_rate": 0.5, "budgets_ms": {"render": 2}}
    )
    assert config.sample_rate == 0.5
    assert config.budgets_ms == {"render": 2.0}
    assert EnvelopeConfig.coerce(config) is config
    disabled = EnvelopeConfig.coerce({"enabled": False})
    assert not disabled.enabled


def test_disabled_envelopes_attach_no_recorder():
    session, recorders = _typed_recorders(envelopes={"enabled": False})
    assert recorders == []
    assert session.stage_snapshot() is None


# ---------------------------------------------------------------------------
# Stats rendering
# ---------------------------------------------------------------------------
def _minimal_manifest(obs=None):
    return {
        "kind": "run-manifest",
        "experiments": [
            {
                "id": "fig1",
                "seed": 0,
                "wall_s": 1.0,
                "cache_hit": False,
                "failed_checks": [],
                "error": None,
            }
        ],
        "jobs": 1,
        "code_version": "test",
        "obs": obs or {},
    }


def test_stats_degrades_gracefully_on_pre_envelope_manifest():
    from repro.experiments.stats import render_stats

    rendered = render_stats(_minimal_manifest())
    assert "stage breakdown" not in rendered


def test_stats_renders_stage_breakdown_and_alerts():
    from repro.experiments.stats import render_stats

    session, _ = _typed_recorders(envelopes={"budgets_ms": {"handler": 0.001}})
    snapshot = session.stage_snapshot()
    stages = snapshot["attribution"]
    stages["alerts_suppressed"] = snapshot["alerts_suppressed"]
    rendered = render_stats(
        _minimal_manifest(
            obs={"stages": stages, "stage_alerts": snapshot["alerts"]}
        )
    )
    assert "stage breakdown" in rendered
    assert "stage budget alerts" in rendered
    assert "handler" in rendered
