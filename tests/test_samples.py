"""Unit tests for sample traces and utilization series."""

import numpy as np
import pytest

from repro.core.samples import SampleTrace

MS = 1_000_000
LOOP = 1 * MS


class TestBasics:
    def test_intervals(self):
        trace = SampleTrace([0, MS, 2 * MS, 12 * MS], loop_ns=LOOP)
        assert list(trace.intervals_ns) == [MS, MS, 10 * MS]

    def test_busy_per_interval(self):
        trace = SampleTrace([0, MS, 11 * MS], loop_ns=LOOP)
        assert list(trace.busy_ns_per_interval) == [0, 9 * MS]

    def test_nondecreasing_required(self):
        with pytest.raises(ValueError):
            SampleTrace([10, 5], loop_ns=LOOP)

    def test_loop_validation(self):
        with pytest.raises(ValueError):
            SampleTrace([0], loop_ns=0)

    def test_totals(self):
        trace = SampleTrace([0, MS, 11 * MS, 12 * MS], loop_ns=LOOP)
        assert trace.total_busy_ns() == 9 * MS
        assert trace.total_span_ns() == 12 * MS

    def test_empty_trace(self):
        trace = SampleTrace([], loop_ns=LOOP)
        assert trace.total_busy_ns() == 0
        assert trace.total_span_ns() == 0
        times, util = trace.per_sample_utilization()
        assert len(times) == 0 and len(util) == 0


class TestUtilization:
    def test_paper_example(self):
        """Section 2.5: 10 ms to collect a 1 ms sample => 90% utilization."""
        trace = SampleTrace([0, 10 * MS], loop_ns=LOOP)
        _times, util = trace.per_sample_utilization()
        assert util[0] == pytest.approx(0.9)

    def test_idle_utilization_zero(self):
        trace = SampleTrace([0, MS, 2 * MS], loop_ns=LOOP)
        _times, util = trace.per_sample_utilization()
        assert np.all(util == 0.0)

    def test_windows_spread_busy_uniformly(self):
        # One 11 ms interval with 10 ms busy, windows of 5 ms.
        trace = SampleTrace([0, 11 * MS], loop_ns=LOOP)
        starts, util = trace.utilization_windows(5 * MS)
        assert len(starts) == 3
        # Busy density = 10/11 everywhere in the interval.
        assert util[0] == pytest.approx(10 / 11, rel=0.01)
        assert util[1] == pytest.approx(10 / 11, rel=0.01)

    def test_window_validation(self):
        trace = SampleTrace([0, MS], loop_ns=LOOP)
        with pytest.raises(ValueError):
            trace.utilization_windows(0)

    def test_windows_clip_to_one(self):
        trace = SampleTrace([0, 100 * MS], loop_ns=LOOP)
        _starts, util = trace.utilization_windows(10 * MS)
        assert np.all(util <= 1.0)


class TestSliceAndElongated:
    def test_slice(self):
        trace = SampleTrace([0, MS, 2 * MS, 3 * MS], loop_ns=LOOP)
        sliced = trace.slice(MS, 2 * MS)
        assert list(sliced.times) == [MS, 2 * MS]
        with pytest.raises(ValueError):
            trace.slice(5, 1)

    def test_elongated_finds_busy_intervals(self):
        trace = SampleTrace([0, MS, 2 * MS, 8 * MS, 9 * MS], loop_ns=LOOP)
        found = trace.elongated(factor=1.5)
        assert found == [(2 * MS, 8 * MS, 5 * MS)]

    def test_elongated_factor_threshold(self):
        trace = SampleTrace([0, int(1.4 * MS)], loop_ns=LOOP)
        assert trace.elongated(factor=1.5) == []
        assert len(trace.elongated(factor=1.3)) == 1
