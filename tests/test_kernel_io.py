"""Unit tests for syscall-level file I/O."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import AsyncRead, Compute, SyncRead, SyncWrite, boot


class TestSyncRead:
    def test_cold_read_blocks_for_disk_time(self, nt40):
        file = nt40.filesystem.create("doc", 64 * 4096)
        stamps = []

        def program():
            stamps.append(nt40.now)
            yield SyncRead(file, 0, 64 * 4096)
            stamps.append(nt40.now)

        nt40.spawn("reader", program())
        nt40.run_for(ns_from_ms(2000))
        assert len(stamps) == 2
        assert stamps[1] - stamps[0] > ns_from_ms(10)  # real disk time

    def test_warm_read_is_fast(self, nt40):
        file = nt40.filesystem.create("doc", 16 * 4096)
        durations = []

        def program():
            for _ in range(2):
                start = nt40.now
                yield SyncRead(file, 0, 16 * 4096)
                durations.append(nt40.now - start)

        nt40.spawn("reader", program())
        nt40.run_for(ns_from_ms(2000))
        assert durations[1] < durations[0] / 5

    def test_outstanding_sync_visible_during_read(self, nt40):
        file = nt40.filesystem.create("doc", 64 * 4096)

        def program():
            yield SyncRead(file, 0, 64 * 4096)

        nt40.spawn("reader", program())
        nt40.run_for(ns_from_ms(3))
        assert nt40.iomgr.outstanding_sync == 1
        nt40.run_for(ns_from_ms(2000))
        assert nt40.iomgr.outstanding_sync == 0

    def test_cpu_idle_during_disk_wait(self, nt40):
        """The paper's FSM point: the CPU can idle while the user waits."""
        file = nt40.filesystem.create("doc", 256 * 4096)

        def program():
            yield SyncRead(file, 0, 256 * 4096)

        nt40.spawn("reader", program())
        busy_before = nt40.machine.cpu.busy_ns
        start = nt40.now
        nt40.run_for(ns_from_ms(3000))
        elapsed = nt40.now - start
        busy = nt40.machine.cpu.busy_ns - busy_before
        assert busy < elapsed / 2


class TestSyncWrite:
    def test_write_blocks_for_disk(self, nt40):
        file = nt40.filesystem.create("doc", 16 * 4096)
        stamps = []

        def program():
            stamps.append(nt40.now)
            yield SyncWrite(file, 0, 16 * 4096)
            stamps.append(nt40.now)

        nt40.spawn("writer", program())
        nt40.run_for(ns_from_ms(2000))
        assert stamps[1] - stamps[0] > ns_from_ms(5)

    def test_write_then_read_is_cached(self, nt40):
        file = nt40.filesystem.create("doc", 8 * 4096)
        durations = []

        def program():
            yield SyncWrite(file, 0, 8 * 4096)
            start = nt40.now
            yield SyncRead(file, 0, 8 * 4096)
            durations.append(nt40.now - start)

        nt40.spawn("writer", program())
        nt40.run_for(ns_from_ms(2000))
        assert durations[0] < ns_from_ms(2)


class TestAsyncRead:
    def test_async_read_does_not_block(self, nt40):
        file = nt40.filesystem.create("doc", 64 * 4096)
        stamps = []

        def program():
            start = nt40.now
            yield AsyncRead(file, 0, 64 * 4096)
            stamps.append(nt40.now - start)

        nt40.spawn("reader", program())
        nt40.run_for(ns_from_ms(2000))
        assert stamps[0] < ns_from_ms(2)

    def test_async_read_warms_cache(self, nt40):
        file = nt40.filesystem.create("doc", 32 * 4096)
        durations = []

        def program():
            yield AsyncRead(file, 0, 32 * 4096)
            # Wait for the background read to land, then read again.
            yield Compute(nt40.personality.app_work(100))
            start = nt40.now
            yield SyncRead(file, 0, 32 * 4096)
            durations.append(nt40.now - start)

        nt40.spawn("reader", program())
        nt40.run_until_quiescent(max_ns=ns_from_ms(5000))
        # Run again after disk finished.
        stamps2 = []

        def second():
            start = nt40.now
            yield SyncRead(file, 0, 32 * 4096)
            stamps2.append(nt40.now - start)

        nt40.spawn("reader2", second())
        nt40.run_for(ns_from_ms(500))
        assert stamps2[0] < ns_from_ms(2)
