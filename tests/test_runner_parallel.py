"""Parallel runner: sequential/parallel byte identity, caching, manifests.

Uses only the cheapest experiments (fig1/fig4/ablation-merge, well
under 0.2 s each) so the sweep matrix stays fast.
"""

import multiprocessing

import pytest

from repro.core.runcache import RunCache, code_version, default_cache_dir
from repro.core.serialize import load_json, manifest_from_dict
from repro.experiments import parallel
from repro.experiments.runner import main

CHEAP_IDS = ["fig1", "fig4", "ablation-merge"]


def run_cli(tmp_path, name, *extra):
    out = tmp_path / name
    rc = main([*CHEAP_IDS, "--seed", "0,1", "--save", str(out), *extra])
    return rc, out


# ----------------------------------------------------------------------
# Determinism: --jobs N must be byte-identical to --jobs 1
# ----------------------------------------------------------------------
def test_parallel_matches_sequential_bytes(tmp_path):
    rc_seq, seq = run_cli(tmp_path, "seq", "--jobs", "1", "--no-cache")
    rc_par, par = run_cli(tmp_path, "par", "--jobs", "3", "--no-cache")
    assert rc_seq == 0 and rc_par == 0

    names = sorted(p.name for p in seq.glob("*.json"))
    assert names == sorted(p.name for p in par.glob("*.json"))
    # 3 experiments x 2 seeds, plus the manifest.
    assert len(names) == len(CHEAP_IDS) * 2 + 1
    for name in names:
        if name == "manifest.json":  # wall times legitimately differ
            continue
        assert (seq / name).read_bytes() == (par / name).read_bytes(), name


def test_results_ordered_id_major(tmp_path):
    order = []
    parallel.run_many(
        ["fig4", "fig1"],
        [0, 1],
        jobs=4,
        cache=None,
        on_result=lambda job: order.append((job.experiment_id, job.seed)),
    )
    assert order == [("fig4", 0), ("fig4", 1), ("fig1", 0), ("fig1", 1)]


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
def test_cache_hit_on_second_run_and_refresh(tmp_path):
    cache = ["--cache-dir", str(tmp_path / "cache")]
    rc, cold = run_cli(tmp_path, "cold", "--jobs", "1", *cache)
    assert rc == 0
    cold_manifest = manifest_from_dict(load_json(cold / "manifest.json"))
    assert all(not r["cache_hit"] for r in cold_manifest["experiments"])

    rc, warm = run_cli(tmp_path, "warm", "--jobs", "1", *cache)
    assert rc == 0
    warm_manifest = manifest_from_dict(load_json(warm / "manifest.json"))
    assert all(r["cache_hit"] for r in warm_manifest["experiments"])

    # Cache hits serve byte-identical archives.
    for run in warm_manifest["experiments"]:
        name = run["saved"]
        assert (cold / name).read_bytes() == (warm / name).read_bytes()

    rc, again = run_cli(tmp_path, "again", "--jobs", "1", "--refresh", *cache)
    assert rc == 0
    again_manifest = manifest_from_dict(load_json(again / "manifest.json"))
    assert all(not r["cache_hit"] for r in again_manifest["experiments"])


def test_execute_job_cache_roundtrip(tmp_path):
    cache = RunCache(tmp_path / "cache", version="testver")
    miss = parallel.execute_job("ablation-merge", 0, cache=cache)
    assert not miss.cache_hit and miss.error is None
    assert miss.payload["kind"] == "experiment-result"
    assert cache.entry_path("ablation-merge", 0).exists()

    hit = parallel.execute_job("ablation-merge", 0, cache=cache)
    assert hit.cache_hit
    assert hit.payload == miss.payload
    assert hit.rendered == miss.rendered
    assert hit.checks == miss.checks

    refreshed = parallel.execute_job("ablation-merge", 0, cache=cache, refresh=True)
    assert not refreshed.cache_hit and refreshed.payload == miss.payload


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = RunCache(tmp_path / "cache", version="testver")
    parallel.execute_job("ablation-merge", 0, cache=cache)
    cache.entry_path("ablation-merge", 0).write_text("{ not json")
    job = parallel.execute_job("ablation-merge", 0, cache=cache)
    assert not job.cache_hit and job.error is None


def test_corrupt_cache_entry_evicted_and_rewritten(tmp_path):
    cache = RunCache(tmp_path / "cache", version="testver")
    parallel.execute_job("ablation-merge", 0, cache=cache)
    path = cache.entry_path("ablation-merge", 0)

    # A truncated entry (killed writer, disk full) is evicted on read
    # so it cannot shadow the slot forever...
    path.write_text('{"kind": "cache-entry", "experiment')
    assert cache.load("ablation-merge", 0) is None
    assert not path.exists()
    # ...and the next execute_job transparently rewrites it.
    job = parallel.execute_job("ablation-merge", 0, cache=cache)
    assert not job.cache_hit and job.error is None
    assert path.exists()
    assert parallel.execute_job("ablation-merge", 0, cache=cache).cache_hit

    # An entry whose content contradicts its path (here: claiming to be
    # a different experiment) is corruption, not staleness: also evicted.
    path.write_text(path.read_text().replace("ablation-merge", "fig1"))
    assert cache.load("ablation-merge", 0) is None
    assert not path.exists()


def test_missing_cache_entry_is_a_plain_miss_without_eviction(tmp_path):
    # An absent file is the ordinary cold-cache case: load() must not
    # try to evict (nothing to remove) and must leave the dir intact.
    cache = RunCache(tmp_path / "cache", version="testver")
    assert cache.load("ablation-merge", 0) is None


def test_different_code_version_is_a_miss(tmp_path):
    root = tmp_path / "cache"
    parallel.execute_job("ablation-merge", 0, cache=RunCache(root, version="v1"))
    job = parallel.execute_job("ablation-merge", 0, cache=RunCache(root, version="v2"))
    assert not job.cache_hit


def test_code_version_stable_and_short():
    first = code_version()
    assert first == code_version()
    assert len(first) == 16
    int(first, 16)  # hex digest


def test_default_cache_dir_respects_xdg(monkeypatch, tmp_path):
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def test_manifest_contents(tmp_path):
    rc, out = run_cli(tmp_path, "run", "--jobs", "2", "--no-cache")
    assert rc == 0
    manifest = manifest_from_dict(load_json(out / "manifest.json"))
    assert manifest["ids"] == CHEAP_IDS
    assert manifest["seeds"] == [0, 1]
    assert manifest["jobs"] == 2
    assert manifest["failures"] == 0
    assert manifest["python"] and manifest["platform"]
    assert manifest["code_version"] == code_version()
    assert manifest["cache"] == {"enabled": False, "dir": None, "refresh": False}

    runs = manifest["experiments"]
    assert len(runs) == len(CHEAP_IDS) * 2
    for run in runs:
        assert run["wall_s"] >= 0
        assert run["error"] is None and run["failed_checks"] == []
        assert (out / run["saved"]).exists()


def test_manifest_validation_rejects_garbage():
    with pytest.raises(ValueError):
        manifest_from_dict({"kind": "experiment-result"})
    with pytest.raises(ValueError):
        manifest_from_dict({"kind": "run-manifest", "jobs": 1})


# ----------------------------------------------------------------------
# Failure surfacing (the executor-swallowing bugfix)
# ----------------------------------------------------------------------
def _install_boom(monkeypatch):
    from repro.experiments import registry

    def boom(seed=0, **kwargs):
        raise RuntimeError("kaboom from the experiment")

    monkeypatch.setitem(registry.EXPERIMENTS, "fig1", boom)


def test_failing_experiment_surfaces_sequentially(tmp_path, monkeypatch, capsys):
    _install_boom(monkeypatch)
    out = tmp_path / "out"
    rc = main(["fig1", "fig4", "--jobs", "1", "--no-cache", "--save", str(out)])
    assert rc == 1
    err = capsys.readouterr().err
    assert "kaboom from the experiment" in err
    assert "Traceback" in err
    assert "1 experiment(s) failed" in err

    manifest = manifest_from_dict(load_json(out / "manifest.json"))
    assert manifest["failures"] == 1
    by_id = {run["id"]: run for run in manifest["experiments"]}
    assert "kaboom" in by_id["fig1"]["error"]
    assert by_id["fig1"]["saved"] is None
    # The healthy experiment still ran and archived.
    assert by_id["fig4"]["error"] is None
    assert (out / by_id["fig4"]["saved"]).exists()


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched registry only reaches workers under fork",
)
def test_failing_experiment_surfaces_from_pool(tmp_path, monkeypatch, capsys):
    _install_boom(monkeypatch)
    rc = main(["fig1", "fig4", "--jobs", "2", "--no-cache"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "kaboom from the experiment" in err and "Traceback" in err


def test_broken_worker_becomes_job_error(monkeypatch):
    # Simulate the pool losing a worker entirely (the future raises).
    class DoomedFuture:
        def result(self, timeout=None):
            raise RuntimeError("process pool died")

        def cancel(self):
            return True

    class DoomedPool:
        def __init__(self, max_workers=None):
            pass

        def submit(self, fn, *args):
            return DoomedFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", DoomedPool)
    results = parallel.run_many(["fig1", "fig4"], [0], jobs=2, cache=None)
    assert len(results) == 2
    for job in results:
        assert "process pool died" in job.error
        assert job.failures == 1


# ----------------------------------------------------------------------
# CLI argument handling
# ----------------------------------------------------------------------
def test_bad_seed_rejected(capsys):
    assert main(["fig1", "--seed", "zero"]) == 2
    assert "invalid --seed" in capsys.readouterr().err


def test_smoke_jobs2_save_manifest_parses(tmp_path):
    """The `make experiments-smoke` contract: two cheap experiments,
    --jobs 2 --save, manifest parses and reports zero failures."""
    out = tmp_path / "smoke"
    rc = main(
        ["fig1", "fig4", "--jobs", "2", "--save", str(out),
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 0
    manifest = manifest_from_dict(load_json(out / "manifest.json"))
    assert manifest["failures"] == 0
    assert len(manifest["experiments"]) == 2
