"""Unit and property tests for the fault-injection subsystem.

The load-bearing property is the determinism contract: identical
``(seed, FaultPlan)`` pairs must yield byte-identical runs, and an
empty plan must leave the machine bit-identical to an uninstrumented
one.  The unit tests pin each injection mechanism to its observable
machine-side evidence (disk service time, spurious-interrupt counts,
queue drops, TLB charges, requeue demotions).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.terminal import TerminalApp
from repro.experiments.common import inject_keystroke
from repro.experiments.ext_faults import FaultProbeApp
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SCENARIOS,
    get_scenario,
    scenario_names,
)
from repro.sim.timebase import ns_from_ms
from repro.sim.work import HwEvent
from repro.winsys import boot


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan: pure-data validation and round-trips
# ----------------------------------------------------------------------
class TestPlanData:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.make("x", "cosmic-rays")

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.make("x", "disk-stall", start_ms=50.0, end_ms=50.0)

    def test_duplicate_fault_names_rejected(self):
        a = FaultSpec.make("dup", "disk-stall")
        b = FaultSpec.make("dup", "irq-storm")
        with pytest.raises(ValueError):
            FaultPlan("p", (a, b))

    def test_spec_dict_round_trip(self):
        spec = FaultSpec.make(
            "s", "irq-storm", {"vector": "nic", "burst": 5}, start_ms=10.0, end_ms=90.0
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_plan_dict_round_trip_and_fingerprint(self):
        plan = get_scenario("degraded")
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.fingerprint() == plan.fingerprint()
        json.loads(plan.fingerprint())  # fingerprint is valid JSON

    def test_param_order_does_not_matter(self):
        a = FaultSpec.make("s", "disk-stall", {"a": 1, "b": 2})
        b = FaultSpec.make("s", "disk-stall", {"b": 2, "a": 1})
        assert a == b

    def test_plan_kinds_deduplicated_in_order(self):
        plan = get_scenario("irq-storm")
        assert plan.kinds == ["irq-storm"]
        assert len(plan) == 2  # nic + keyboard storms


class TestScenarios:
    def test_all_scenarios_build(self):
        for name in scenario_names():
            plan = get_scenario(name)
            assert len(plan) >= 1

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(KeyError, match="degraded"):
            get_scenario("nope")

    def test_degraded_covers_every_kind(self):
        assert set(get_scenario("degraded").kinds) == set(FAULT_KINDS)

    def test_scenario_names_match_registry(self):
        assert set(scenario_names()) == set(SCENARIOS)


# ----------------------------------------------------------------------
# Injector mechanics, one observable per fault kind
# ----------------------------------------------------------------------
def _typed_run(os_name, seed, plan, chars=6, app_cls=TerminalApp):
    system = boot(os_name, seed=seed)
    app = app_cls(system)
    app.start(foreground=True)
    injector = None
    if plan is not None:
        injector = FaultInjector(system, plan).install()
    for index in range(chars):
        inject_keystroke(system, chr(ord("a") + index))
        system.run_for(ns_from_ms(40))
    system.run_for(ns_from_ms(300))
    return system, injector


def _single(kind, name="f", params=None, end_ms=400.0):
    return FaultPlan(
        "test-" + kind, (FaultSpec.make(name, kind, params or {}, 5.0, end_ms),)
    )


class TestInjector:
    def test_install_twice_rejected(self):
        system = boot("nt40", seed=0)
        injector = FaultInjector(system, _single("irq-storm"))
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_disk_stall_adds_service_time(self):
        plan = _single(
            "disk-stall", params={"mean_period_ms": 20.0, "stall_ms": 30.0}
        )
        system, injector = _typed_run("nt40", 0, plan, app_cls=FaultProbeApp)
        assert injector.counts["f"] >= 1
        assert system.machine.disk.injected_service_ns > 0
        assert injector.summary()["disk_injected_ms"] > 0

    def test_irq_storm_counts_spurious_only(self):
        plan = _single(
            "irq-storm", params={"vector": "nic", "burst": 5, "mean_period_ms": 25.0}
        )
        system, injector = _typed_run("nt40", 0, plan)
        spurious = system.machine.interrupts.spurious.get("nic", 0)
        assert spurious == injector.counts["f"] * 5
        # Genuine deliveries are tallied separately from spurious ones.
        assert system.machine.interrupts.delivered.get("nic", 0) == 0

    def test_queue_pressure_floods_and_capacity_drops(self):
        plan = _single(
            "queue-pressure",
            params={"burst": 200, "mean_period_ms": 15.0, "capacity": 4},
        )
        system, injector = _typed_run("nt40", 0, plan)
        assert injector.counts["f"] >= 1
        dropped = sum(t.queue.dropped_count for t in system.kernel.threads)
        assert dropped > 0
        assert injector.summary()["messages_dropped"] == dropped

    def test_queue_capacity_restored_after_window(self):
        plan = _single(
            "queue-pressure",
            params={"burst": 1, "capacity": 4},
            end_ms=100.0,
        )
        system, _ = _typed_run("nt40", 0, plan)
        assert all(t.queue.capacity is None for t in system.kernel.threads)

    def test_memory_pressure_charges_tlb_flushes(self):
        plan = _single("memory-pressure", params={"mean_period_ms": 10.0})
        system, injector = _typed_run("nt40", 0, plan)
        assert injector.counts["f"] >= 1
        assert system.machine.perf.total(HwEvent.TLB_FLUSH) > 0

    def test_sched_jitter_uninstalled_after_window(self):
        plan = _single("sched-jitter", params={"probability": 1.0}, end_ms=100.0)
        system, _ = _typed_run("nt40", 0, plan)
        assert system.kernel.scheduler._requeue_jitter is None

    def test_empty_plan_is_bit_identical_to_no_injector(self):
        plain, _ = _typed_run("nt40", 0, None)
        empty, injector = _typed_run("nt40", 0, FaultPlan("empty"))
        assert injector.total_injections() == 0
        assert plain.now == empty.now
        assert plain.perf.snapshot() == empty.perf.snapshot()
        assert plain.sim.events_executed == empty.sim.events_executed


# ----------------------------------------------------------------------
# Determinism: identical (seed, plan) -> byte-identical archives
# ----------------------------------------------------------------------
def _archive_bytes(seed, plan):
    """A run's archival record, as the exact bytes a --save would emit."""
    system, injector = _typed_run("nt40", seed, plan, chars=4)
    record = {
        "now_ns": system.now,
        "events_executed": system.sim.events_executed,
        "summary": injector.summary(),
        "interrupts": dict(system.machine.perf._tally)[HwEvent.INTERRUPTS],
    }
    return json.dumps(record, sort_keys=True).encode()


_KIND_PARAMS = {
    "disk-stall": {"mean_period_ms": 25.0, "stall_ms": 20.0},
    "irq-storm": {"vector": "nic", "burst": 4, "mean_period_ms": 25.0},
    "queue-pressure": {"burst": 3, "mean_period_ms": 25.0},
    "sched-jitter": {"probability": 0.5},
    "memory-pressure": {"mean_period_ms": 20.0},
    # No remote link on the probe system: the apply/restore pair must
    # no-op without perturbing the byte-identical archive.
    "link-degrade": {"loss_add": 0.2, "jitter_add_ms": 10.0},
}


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    kinds=st.lists(
        st.sampled_from(sorted(FAULT_KINDS)), min_size=1, max_size=3, unique=True
    ),
)
@settings(max_examples=8, deadline=None)
def test_identical_seed_and_plan_yield_byte_identical_archives(seed, kinds):
    plan = FaultPlan(
        "prop",
        tuple(
            FaultSpec.make(f"f{i}", kind, _KIND_PARAMS[kind], 5.0, 350.0)
            for i, kind in enumerate(kinds)
        ),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert _archive_bytes(seed, plan) == _archive_bytes(seed, plan)


def test_different_seeds_diverge():
    plan = get_scenario("smoke")
    assert _archive_bytes(0, plan) != _archive_bytes(1, plan)


def test_adding_a_fault_does_not_perturb_existing_streams():
    """Streams are keyed by fault name, so extending a plan leaves the
    original faults' draws untouched (the rng.py contract)."""
    base = FaultPlan(
        "grow", (FaultSpec.make("a", "irq-storm", _KIND_PARAMS["irq-storm"], 5.0, 350.0),)
    )
    grown = FaultPlan(
        "grow",
        base.faults
        + (FaultSpec.make("b", "memory-pressure", _KIND_PARAMS["memory-pressure"], 5.0, 350.0),),
    )
    _, small = _typed_run("nt40", 0, base, chars=4)
    _, big = _typed_run("nt40", 0, grown, chars=4)
    assert small.counts["a"] == big.counts["a"]
