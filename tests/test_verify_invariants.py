"""The invariant catalog: healthy runs pass, corruptions trip exactly.

The contract under test is surgical separation (see
``repro.verify.corruptions``): every named corruption fixture must trip
*exactly* its matching invariant, and healthy evidence — probe runs and
full measurement sessions, with and without fault scenarios — must pass
the whole catalog.  Lossy traces must mark full-history invariants
``skipped``, never ``passed``.
"""

from __future__ import annotations

import pytest

from repro.verify import (
    InvariantChecker,
    evidence_from_session,
    gather_probe_evidence,
    invariant_names,
    summarize_reports,
)
from repro.verify.corruptions import CORRUPTIONS, corrupt
from repro.verify.probe import PERSONALITIES

CATALOG = (
    "time-conservation",
    "fsm-transition-legality",
    "monotonic-timestamps",
    "sample-sum-consistency",
    "queue-conservation",
    "counter-sanity",
)

FULL_HISTORY = ("monotonic-timestamps", "sample-sum-consistency")


@pytest.fixture(scope="module")
def healthy():
    return gather_probe_evidence("nt40", seed=3)


def test_catalog_names_and_order():
    assert invariant_names() == list(CATALOG)


def test_every_corruption_has_a_catalog_target():
    assert {c.trips for c in CORRUPTIONS.values()} == set(CATALOG)


@pytest.mark.parametrize("os_name", PERSONALITIES)
def test_healthy_probe_passes_everything(os_name):
    reports = InvariantChecker().check(gather_probe_evidence(os_name, seed=3))
    assert [r.status for r in reports] == ["passed"] * len(CATALOG)


def test_faulted_probe_passes_everything():
    evidence = gather_probe_evidence("win95", seed=3, scenario="degraded")
    reports = InvariantChecker().check(evidence)
    assert all(r.passed for r in reports), summarize_reports(reports)


def test_session_evidence_passes_everything():
    from repro.core.session import MeasurementSession
    from repro.verify.probe import IntegrityProbeApp
    from repro.workload import InputScript, type_text_actions

    session = MeasurementSession("nt351", IntegrityProbeApp, seed=5).run(
        InputScript(type_text_actions("hello world"))
    )
    reports = InvariantChecker().check(evidence_from_session(session, seed=5))
    assert all(r.passed for r in reports), summarize_reports(reports)


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_corruption_trips_exactly_its_invariant(healthy, name):
    spec = CORRUPTIONS[name]
    reports = InvariantChecker().check(corrupt(healthy, name))
    failed = [r.name for r in reports if r.failed]
    assert failed == [spec.trips], (
        f"{name} should trip exactly {spec.trips}, tripped {failed}"
    )
    tripped = next(r for r in reports if r.failed)
    assert tripped.violations, "a failed invariant must carry violations"
    assert all(v.invariant == spec.trips for v in tripped.violations)


def test_corruption_does_not_mutate_the_original(healthy):
    before = list(healthy.record_times_ns)
    corrupt(healthy, "shuffled-timestamps")
    assert healthy.record_times_ns == before


def test_lossy_trace_skips_full_history_invariants():
    evidence = gather_probe_evidence("nt40", seed=1, buffer_capacity=50)
    assert evidence.trace_lossy
    summary = summarize_reports(InvariantChecker().check(evidence))
    assert summary["skipped"] == list(FULL_HISTORY)
    assert not summary["failed"]


def test_lossy_corrupted_trace_never_reports_passed(healthy):
    """Even a defective stream must not be 'passed' once lossy."""
    evidence = corrupt(healthy, "shuffled-timestamps")
    evidence.trace_lossy = True
    reports = {r.name: r for r in InvariantChecker().check(evidence)}
    assert reports["monotonic-timestamps"].status == "skipped"


def test_checker_selects_and_rejects_names(healthy):
    reports = InvariantChecker(["queue-conservation"]).check(healthy)
    assert [r.name for r in reports] == ["queue-conservation"]
    with pytest.raises(ValueError, match="unknown invariants"):
        InvariantChecker(["not-a-real-invariant"])


def test_violation_records_are_structured(healthy):
    evidence = corrupt(healthy, "dropped-dequeue")
    report = next(
        r for r in InvariantChecker().check(evidence) if r.failed
    )
    record = report.to_dict()
    assert record["status"] == "failed"
    assert record["paper"]
    violation = record["violations"][0]
    assert violation["invariant"] == "queue-conservation"
    assert "posted" in violation["context"]


def test_reports_carry_paper_anchors(healthy):
    for report in InvariantChecker().check(healthy):
        assert report.paper, f"{report.name} lacks a paper anchor"


def test_payload_invariants_pass_on_real_payload():
    from repro.core.serialize import experiment_to_dict
    from repro.experiments.registry import run_experiment
    from repro.verify import check_payload

    payload = experiment_to_dict(run_experiment("fig4", seed=0))
    assert all(r.passed for r in check_payload(payload))


def test_payload_invariants_catch_defects():
    from repro.verify import check_payload

    statuses = {
        r.name: r.status for r in check_payload({"kind": "something-else"})
    }
    assert statuses["payload-well-formed"] == "failed"

    payload = {
        "kind": "experiment-result",
        "id": "x",
        "checks": [{"name": "ok", "passed": True, "detail": ""}],
        "data": {"latency_ms": -4.0, "skew_ms": -1.0},
    }
    reports = {r.name: r for r in check_payload(payload)}
    assert reports["payload-well-formed"].status == "passed"
    assert reports["payload-nonnegative-durations"].status == "failed"
    # exempt fragments (skew/delta/diff) may go negative
    messages = [
        v.message for v in reports["payload-nonnegative-durations"].violations
    ]
    assert all("skew" not in m for m in messages)
