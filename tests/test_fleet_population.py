"""Tests for seeded session-population generation.

The property everything else leans on: session ``i``'s spec is a pure
function of ``(population seed, i)`` — access order, batching and
partitioning can never perturb a draw.
"""

import pytest

from repro.fleet.population import (
    APP_PROFILES,
    PopulationConfig,
    SessionPopulation,
)


def test_spec_deterministic_across_instances():
    config = PopulationConfig(seed=7, size=50)
    a = SessionPopulation(config)
    b = SessionPopulation(config)
    for index in range(50):
        assert a.spec(index) == b.spec(index)


def test_spec_independent_of_access_order():
    config = PopulationConfig(seed=3, size=20)
    forward = [SessionPopulation(config).spec(i) for i in range(20)]
    population = SessionPopulation(config)
    backward = [population.spec(i) for i in reversed(range(20))]
    assert forward == list(reversed(backward))


def test_spec_fields_within_configured_ranges():
    config = PopulationConfig(seed=0, size=200)
    population = SessionPopulation(config)
    for spec in population:
        assert spec.os_name in config.os_mix
        assert spec.profile in APP_PROFILES
        assert spec.scenario in (None, "smoke")
        assert config.wpm_range[0] <= spec.wpm <= config.wpm_range[1]
        assert config.jitter_range[0] <= spec.jitter <= config.jitter_range[1]
        assert (
            config.think_mean_range_s[0]
            <= spec.think_mean_s
            <= config.think_mean_range_s[1]
        )
        assert config.chars_range[0] <= spec.chars <= config.chars_range[1]
        assert spec.seed >= 0


def test_every_mix_component_appears():
    population = SessionPopulation(PopulationConfig(seed=0, size=400))
    specs = list(population)
    assert {s.os_name for s in specs} == set(population.config.os_mix)
    assert {s.profile for s in specs} == set(population.config.profile_mix)
    # The empty-string scenario weight materializes as None (healthy).
    assert {s.scenario for s in specs} == {None, "smoke"}


def test_session_seeds_are_distinct():
    population = SessionPopulation(PopulationConfig(seed=0, size=300))
    seeds = [population.spec(i).seed for i in range(300)]
    assert len(set(seeds)) == len(seeds)


def test_different_population_seeds_differ():
    a = SessionPopulation(PopulationConfig(seed=0, size=30))
    b = SessionPopulation(PopulationConfig(seed=1, size=30))
    assert any(a.spec(i) != b.spec(i) for i in range(30))


def test_index_bounds_enforced():
    population = SessionPopulation(PopulationConfig(seed=0, size=5))
    with pytest.raises(IndexError):
        population.spec(-1)
    with pytest.raises(IndexError):
        population.spec(5)
    assert population[4].index == 4
    assert len(population) == 5


def test_batches_partition_the_population():
    population = SessionPopulation(PopulationConfig(seed=0, size=23))
    for batch_size in (1, 5, 7, 23, 100):
        batches = population.batches(batch_size)
        covered = [i for start, stop in batches for i in range(start, stop)]
        assert covered == list(range(23))
    with pytest.raises(ValueError):
        population.batches(0)


def test_fingerprint_identifies_population():
    base = PopulationConfig(seed=0, size=100)
    assert base.fingerprint() == PopulationConfig(seed=0, size=100).fingerprint()
    assert base.fingerprint() != PopulationConfig(seed=1, size=100).fingerprint()
    assert base.fingerprint() != PopulationConfig(seed=0, size=101).fingerprint()
    assert (
        base.fingerprint()
        != PopulationConfig(seed=0, size=100, wpm_range=(30.0, 90.0)).fingerprint()
    )


def test_config_round_trip():
    config = PopulationConfig(seed=9, size=77, chars_range=(4, 8))
    clone = PopulationConfig.from_dict(config.to_dict())
    assert clone.fingerprint() == config.fingerprint()
    assert clone.seed == 9 and clone.size == 77


def test_config_validation():
    with pytest.raises(ValueError):
        PopulationConfig(size=0)
    with pytest.raises(ValueError, match="profile"):
        PopulationConfig(profile_mix={"spreadsheet": 1.0})
    with pytest.raises(ValueError, match="scenario"):
        PopulationConfig(scenario_mix={"no-such-scenario": 1.0})
    with pytest.raises(ValueError):
        PopulationConfig(os_mix={})
    with pytest.raises(ValueError):
        PopulationConfig(os_mix={"nt40": -1.0, "win95": 0.5})
    with pytest.raises(ValueError):
        PopulationConfig(wpm_range=(90.0, 25.0))
    with pytest.raises(ValueError, match="fleet-population"):
        PopulationConfig.from_dict({"kind": "other"})


def test_spec_to_dict_is_plain():
    spec = SessionPopulation(PopulationConfig(seed=0, size=1)).spec(0)
    data = spec.to_dict()
    assert data["index"] == 0
    assert set(data) == {
        "index", "seed", "os", "profile", "scenario",
        "wpm", "jitter", "think_mean_s", "chars",
    }
