"""Final edge coverage: kernel introspection, runner render path, caches."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import Compute, GetMessage, Message, WM, boot


class TestKernelIntrospection:
    def test_cpu_is_idle(self, nt40):
        nt40.run_for(ns_from_ms(5))
        assert nt40.kernel.cpu_is_idle()

        def worker():
            yield Compute(nt40.personality.app_work(10_000_000))

        nt40.spawn("w", worker())
        nt40.run_for(ns_from_ms(1))
        assert not nt40.kernel.cpu_is_idle()

    def test_foreground_queue_len(self, nt40):
        assert nt40.kernel.foreground_queue_len() == 0

        def app():
            yield Compute(nt40.personality.app_work(50_000_000))
            while True:
                yield GetMessage()

        thread = nt40.spawn("app", app(), foreground=True)
        nt40.run_for(ns_from_ms(1))
        nt40.kernel.post_message(thread, Message(WM.USER))
        nt40.kernel.post_message(thread, Message(WM.USER))
        assert nt40.kernel.foreground_queue_len() == 2


class TestRunnerRenderPath:
    def test_full_render_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out or "fig1" in out
        assert "measured" in out
        assert "wall time" in out


class TestPptRunsCache:
    def test_cache_returns_same_objects(self):
        from repro.experiments.ppt_runs import powerpoint_sessions

        a = powerpoint_sessions(seed=0)
        b = powerpoint_sessions(seed=0)
        assert a is b
        assert set(a) == {"nt351", "nt40"}


class TestEchoHelpers:
    def test_personality_hz(self, nt40):
        from repro.apps import EchoApp

        assert EchoApp(nt40).personality_hz() == 100_000_000


class TestPackageSurface:
    def test_core_all_importable(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_winsys_all_importable(self):
        import repro.winsys as winsys

        for name in winsys.__all__:
            assert hasattr(winsys, name), name

    def test_sim_all_importable(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_workload_all_importable(self):
        import repro.workload as workload

        for name in workload.__all__:
            assert hasattr(workload, name), name

    def test_version(self):
        import repro

        assert repro.__version__
