"""Unit tests for the input pipeline (keyboard, mouse, Win95 spin)."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import GetMessage, WM, boot


def collecting_app(system, got):
    def program():
        while True:
            message = yield GetMessage()
            got.append((message.kind, message.payload, system.now))

    return program()


class TestKeyboardPipeline:
    def test_printable_key_generates_down_char_up(self, nt40):
        got = []
        nt40.spawn("app", collecting_app(nt40, got), foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(20))
        kinds = [kind for kind, _p, _t in got]
        assert kinds == [WM.KEYDOWN, WM.CHAR, WM.KEYUP]
        assert got[1][1] == "a"

    def test_special_key_has_no_char(self, nt40):
        got = []
        nt40.spawn("app", collecting_app(nt40, got), foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("PageDown")
        nt40.run_for(ns_from_ms(20))
        kinds = [kind for kind, _p, _t in got]
        assert kinds == [WM.KEYDOWN, WM.KEYUP]

    def test_input_latency_includes_dispatch_cost(self, nt40):
        got = []
        nt40.spawn("app", collecting_app(nt40, got), foreground=True)
        nt40.run_for(ns_from_ms(5))
        injected = nt40.now
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(20))
        first_delivery = got[0][2]
        # ISR + input-dispatch DPC must take real time (> 0.1 ms).
        assert first_delivery - injected > 100_000

    def test_no_foreground_drops_input(self, nt40):
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(20))  # must not crash

    def test_focus_routing(self, nt40):
        got_a, got_b = [], []
        nt40.spawn("a", collecting_app(nt40, got_a), foreground=True)
        thread_b = nt40.spawn("b", collecting_app(nt40, got_b))
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("x")
        nt40.run_for(ns_from_ms(20))
        nt40.set_foreground(thread_b)
        nt40.machine.keyboard.keystroke("y")
        nt40.run_for(ns_from_ms(20))
        assert [p for _k, p, _t in got_a if p] == ["x", "x", "x"]
        assert [p for _k, p, _t in got_b if p] == ["y", "y", "y"]


class TestMousePipeline:
    def test_nt_click_generates_down_up(self, nt40):
        got = []
        nt40.spawn("app", collecting_app(nt40, got), foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.mouse.click(hold_ns=ns_from_ms(50))
        nt40.run_for(ns_from_ms(100))
        kinds = [kind for kind, _p, _t in got]
        assert kinds == [WM.LBUTTONDOWN, WM.LBUTTONUP]

    def test_nt_down_delivered_before_up(self, nt40):
        """On NT the button-down is processed while the button is held."""
        got = []
        nt40.spawn("app", collecting_app(nt40, got), foreground=True)
        nt40.run_for(ns_from_ms(5))
        press = nt40.now
        nt40.machine.mouse.click(hold_ns=ns_from_ms(80))
        nt40.run_for(ns_from_ms(200))
        down_time = got[0][2]
        assert down_time - press < ns_from_ms(10)


class TestWin95MouseSpin:
    def test_messages_delivered_only_after_release(self, win95):
        got = []
        win95.spawn("app", collecting_app(win95, got), foreground=True)
        win95.run_for(ns_from_ms(5))
        press = win95.now
        win95.machine.mouse.click(hold_ns=ns_from_ms(90))
        win95.run_for(ns_from_ms(300))
        kinds = [kind for kind, _p, _t in got]
        assert kinds == [WM.LBUTTONDOWN, WM.LBUTTONUP]
        # Both deliveries happen after the button-up (the spin blocked them).
        assert got[0][2] - press >= ns_from_ms(90)

    def test_cpu_spins_during_press(self, win95):
        win95.spawn("app", collecting_app(win95, []), foreground=True)
        win95.run_for(ns_from_ms(5))
        busy_before = win95.machine.cpu.busy_ns
        win95.machine.mouse.click(hold_ns=ns_from_ms(90))
        win95.run_for(ns_from_ms(150))
        busy_delta = win95.machine.cpu.busy_ns - busy_before
        # Nearly the whole 90 ms press burned as busy-wait.
        assert busy_delta >= ns_from_ms(85)

    def test_system_recovers_after_spin(self, win95):
        got = []
        win95.spawn("app", collecting_app(win95, got), foreground=True)
        win95.run_for(ns_from_ms(5))
        win95.machine.mouse.click(hold_ns=ns_from_ms(50))
        win95.run_for(ns_from_ms(200))
        win95.machine.keyboard.keystroke("z")
        win95.run_for(ns_from_ms(50))
        assert WM.CHAR in [kind for kind, _p, _t in got]
