"""Unit tests for the priority scheduler."""

import pytest

from repro.winsys.scheduler import Scheduler
from repro.winsys.threads import SimThread, ThreadState


def make_thread(name="t", priority=8):
    def program():
        yield None

    return SimThread(name, program(), priority=priority)


class TestScheduler:
    def test_highest_priority_first(self):
        scheduler = Scheduler()
        low = make_thread("low", 1)
        high = make_thread("high", 12)
        scheduler.make_ready(low)
        scheduler.make_ready(high)
        assert scheduler.pick() is high
        assert scheduler.pick() is low

    def test_fifo_within_priority(self):
        scheduler = Scheduler()
        a, b = make_thread("a", 8), make_thread("b", 8)
        scheduler.make_ready(a)
        scheduler.make_ready(b)
        assert scheduler.pick() is a
        assert scheduler.pick() is b

    def test_front_requeue(self):
        scheduler = Scheduler()
        a, b = make_thread("a", 8), make_thread("b", 8)
        scheduler.make_ready(a)
        scheduler.make_ready(b, front=True)
        assert scheduler.pick() is b

    def test_pick_empty_returns_none(self):
        assert Scheduler().pick() is None

    def test_pick_sets_running_state(self):
        scheduler = Scheduler()
        thread = make_thread()
        scheduler.make_ready(thread)
        assert thread.state == ThreadState.READY
        scheduler.pick()
        assert thread.state == ThreadState.RUNNING

    def test_top_priority(self):
        scheduler = Scheduler()
        assert scheduler.top_priority() is None
        scheduler.make_ready(make_thread(priority=3))
        scheduler.make_ready(make_thread(priority=9))
        assert scheduler.top_priority() == 9

    def test_has_ready_at(self):
        scheduler = Scheduler()
        scheduler.make_ready(make_thread(priority=5))
        assert scheduler.has_ready_at(5)
        assert not scheduler.has_ready_at(8)

    def test_remove(self):
        scheduler = Scheduler()
        thread = make_thread()
        scheduler.make_ready(thread)
        assert scheduler.remove(thread)
        assert scheduler.pick() is None
        assert not scheduler.remove(thread)

    def test_ready_count(self):
        scheduler = Scheduler()
        scheduler.make_ready(make_thread(priority=1))
        scheduler.make_ready(make_thread(priority=2))
        assert scheduler.ready_count() == 2

    def test_cannot_ready_done_thread(self):
        scheduler = Scheduler()
        thread = make_thread()
        thread.state = ThreadState.DONE
        with pytest.raises(ValueError):
            scheduler.make_ready(thread)


class TestSimThread:
    def test_advance_starts_then_sends(self):
        received = []

        def program():
            value = yield "first"
            received.append(value)
            yield "second"

        thread = SimThread("t", program())
        assert thread.advance() == "first"
        assert thread.advance("hello") == "second"
        assert received == ["hello"]

    def test_stopiteration_on_finish(self):
        def program():
            yield "only"

        thread = SimThread("t", program())
        thread.advance()
        with pytest.raises(StopIteration):
            thread.advance(None)

    def test_unique_ids(self):
        a, b = make_thread(), make_thread()
        assert a.tid != b.tid
