"""Hardened-runner behaviour: timeouts, retries, Ctrl-C, --resume.

These tests exercise the sweep-survival machinery added to
``experiments/parallel.py`` and ``experiments/runner.py``: a hanging
experiment is bounded by the watchdog, a crashing one becomes a
structured failure record, transient pool losses are retried with
exponential backoff, Ctrl-C still writes a manifest, and ``--resume``
re-runs exactly the jobs the previous sweep did not finish.

Real-hang tests need the fork start method (the monkeypatched registry
must reach pool workers) and are skipped elsewhere; everything else
uses in-process fakes and runs anywhere.
"""

import multiprocessing
import time

import pytest

from repro.core.serialize import load_json, manifest_from_dict
from repro.experiments import parallel, registry
from repro.experiments.runner import EXIT_INTERRUPTED, main

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched registry only reaches workers under fork",
)


def _hang(seed=0, **kwargs):
    time.sleep(60)


def _crash(seed=0, **kwargs):
    raise RuntimeError("deliberate crash for the hardening test")


def _manifest(out):
    return manifest_from_dict(load_json(out / "manifest.json"))


def _by_id(manifest):
    return {(run["id"], run["seed"]): run for run in manifest["experiments"]}


# ----------------------------------------------------------------------
# Watchdog timeouts
# ----------------------------------------------------------------------
def test_sequential_timeout_via_sigalrm(tmp_path, monkeypatch, capsys):
    if not hasattr(__import__("signal"), "SIGALRM"):
        pytest.skip("no SIGALRM on this platform")
    monkeypatch.setitem(registry.EXPERIMENTS, "fig1", _hang)
    out = tmp_path / "out"
    started = time.monotonic()
    rc = main(
        ["fig1", "fig4", "--jobs", "1", "--no-cache", "--save", str(out),
         "--timeout", "1"]
    )
    assert rc == 1
    assert time.monotonic() - started < 30
    err = capsys.readouterr().err
    assert "watchdog" in err and "[timeout]" in err

    runs = _by_id(_manifest(out))
    assert runs[("fig1", 0)]["failure_kind"] == "timeout"
    assert "exceeded 1.0s" in runs[("fig1", 0)]["error"]
    # The hang did not take fig4 down with it.
    assert runs[("fig4", 0)]["error"] is None
    assert (out / runs[("fig4", 0)]["saved"]).exists()


@fork_only
def test_pool_timeout_terminates_hung_worker(tmp_path, monkeypatch, capsys):
    monkeypatch.setitem(registry.EXPERIMENTS, "fig1", _hang)
    out = tmp_path / "out"
    started = time.monotonic()
    rc = main(
        ["fig1", "fig4", "--jobs", "2", "--no-cache", "--save", str(out),
         "--timeout", "1"]
    )
    assert rc == 1
    # Bounded: nowhere near the 60 s the hung experiment wanted.
    assert time.monotonic() - started < 30
    runs = _by_id(_manifest(out))
    assert runs[("fig1", 0)]["failure_kind"] == "timeout"
    assert runs[("fig4", 0)]["error"] is None


def test_timeout_must_be_positive(capsys):
    assert main(["fig1", "--timeout", "0"]) == 2
    assert "--timeout must be positive" in capsys.readouterr().err


def test_retries_must_be_nonnegative(capsys):
    assert main(["fig1", "--retries", "-1"]) == 2
    assert "--retries must be >= 0" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Retry with exponential backoff (transient pool failures only)
# ----------------------------------------------------------------------
class _FakeFuture:
    def __init__(self, fn, args, fail):
        self._fn, self._args, self._fail = fn, args, fail

    def result(self, timeout=None):
        if self._fail:
            raise RuntimeError("worker lost (simulated)")
        return self._fn(*self._args)

    def cancel(self):
        return False


class _FlakyPool:
    """Every future of the first ``fail_rounds`` pools raises; later
    pools run the job in-process.  Class-level counter because
    run_specs constructs a fresh pool per round."""

    rounds = 0
    fail_rounds = 1

    def __init__(self, max_workers=None):
        type(self).rounds += 1
        self._fail = type(self).rounds <= type(self).fail_rounds

    def submit(self, fn, *args):
        return _FakeFuture(fn, args, self._fail)

    def shutdown(self, wait=True, cancel_futures=False):
        pass


@pytest.fixture
def flaky_pool(monkeypatch):
    _FlakyPool.rounds = 0
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _FlakyPool)
    return _FlakyPool


def test_transient_pool_failure_retried_and_succeeds(flaky_pool):
    flaky_pool.fail_rounds = 1
    naps = []
    results = parallel.run_many(
        ["ablation-merge"], [0, 1], jobs=2, cache=None,
        retries=2, backoff_s=0.5, sleep=naps.append,
    )
    assert [job.error for job in results] == [None, None]
    assert [job.attempts for job in results] == [2, 2]
    assert naps == [0.5]  # one retry round, base backoff


def test_backoff_doubles_per_round(flaky_pool):
    flaky_pool.fail_rounds = 99  # never recovers
    naps = []
    results = parallel.run_many(
        ["ablation-merge"], [0, 1], jobs=2, cache=None,
        retries=2, backoff_s=1.0, sleep=naps.append,
    )
    for job in results:
        assert job.failure_kind == "pool"
        assert "worker lost" in job.error
        assert job.attempts == 3
    assert naps == [1.0, 2.0]


def test_no_retries_by_default(flaky_pool):
    flaky_pool.fail_rounds = 1
    naps = []
    results = parallel.run_many(
        ["ablation-merge"], [0, 1], jobs=2, cache=None, sleep=naps.append
    )
    for job in results:
        assert job.failure_kind == "pool"
        assert job.attempts == 1
    assert naps == []


def test_deterministic_experiment_error_not_retried(monkeypatch):
    monkeypatch.setitem(registry.EXPERIMENTS, "fig1", _crash)
    naps = []
    (job,) = parallel.run_many(
        ["fig1"], [0], jobs=1, cache=None,
        retries=3, backoff_s=1.0, sleep=naps.append,
    )
    assert job.failure_kind == "error"
    assert job.attempts == 1
    assert naps == []  # "error" is deterministic: retrying is waste


def test_streaming_order_preserved_across_retries(flaky_pool):
    flaky_pool.fail_rounds = 1
    order = []
    parallel.run_many(
        ["fig4", "fig1"], [0], jobs=2, cache=None,
        retries=1, backoff_s=0.0, sleep=lambda s: None,
        on_result=lambda job: order.append((job.experiment_id, job.error is None)),
    )
    # Both failed round 1, both retried; delivery stays submission-order.
    assert order == [("fig4", True), ("fig1", True)]


# ----------------------------------------------------------------------
# Ctrl-C: cancelled sweep still yields a manifest
# ----------------------------------------------------------------------
def test_interrupt_writes_partial_manifest(tmp_path, monkeypatch, capsys):
    def _interrupt(seed=0, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setitem(registry.EXPERIMENTS, "fig4", _interrupt)
    out = tmp_path / "out"
    rc = main(["fig1", "fig4", "ablation-merge", "--jobs", "1", "--no-cache",
               "--save", str(out)])
    assert rc == EXIT_INTERRUPTED
    assert "writing partial manifest" in capsys.readouterr().err

    manifest = _manifest(out)
    assert manifest["interrupted"] is True
    runs = _by_id(manifest)
    # fig1 completed before the ^C and its archive was kept ...
    assert runs[("fig1", 0)]["error"] is None
    assert (out / runs[("fig1", 0)]["saved"]).exists()
    # ... while fig4 and everything after it are interruption records.
    assert runs[("fig4", 0)]["failure_kind"] == "interrupted"
    assert runs[("ablation-merge", 0)]["failure_kind"] == "interrupted"
    assert runs[("ablation-merge", 0)]["saved"] is None


def test_sweep_interrupted_carries_snapshot():
    def _interrupt(seed=0, **kwargs):
        raise KeyboardInterrupt

    real = registry.EXPERIMENTS["fig4"]
    registry.EXPERIMENTS["fig4"] = _interrupt
    try:
        with pytest.raises(parallel.SweepInterrupted) as excinfo:
            parallel.run_many(["fig1", "fig4", "ablation-merge"], [0],
                              jobs=1, cache=None)
    finally:
        registry.EXPERIMENTS["fig4"] = real
    snapshot = excinfo.value.results
    assert [job.experiment_id for job in snapshot] == [
        "fig1", "fig4", "ablation-merge"
    ]
    assert snapshot[0].error is None
    assert snapshot[1].failure_kind == "interrupted"
    assert snapshot[2].failure_kind == "interrupted"


# ----------------------------------------------------------------------
# --resume: re-run exactly the missing/failed jobs
# ----------------------------------------------------------------------
def test_resume_reruns_only_failures(tmp_path, monkeypatch, capsys):
    monkeypatch.setitem(registry.EXPERIMENTS, "fig1", _crash)
    out = tmp_path / "out"
    rc = main(["fig1", "fig4", "ablation-merge", "--jobs", "1", "--no-cache",
               "--save", str(out)])
    assert rc == 1
    first = _by_id(_manifest(out))
    assert first[("fig1", 0)]["failure_kind"] == "error"
    fig4_archive = (out / first[("fig4", 0)]["saved"]).read_bytes()

    # Heal the experiment, then resume from the failed manifest.
    monkeypatch.undo()
    rc = main(["--resume", str(out)])
    assert rc == 0
    err = capsys.readouterr().err
    assert "resuming: 2 job(s) preserved, 1 to run" in err

    merged = _manifest(out)
    assert merged["failures"] == 0
    runs = _by_id(merged)
    assert set(runs) == {("fig1", 0), ("fig4", 0), ("ablation-merge", 0)}
    # Preserved entries are flagged and their archives untouched.
    assert runs[("fig4", 0)]["resumed"] is True
    assert (out / runs[("fig4", 0)]["saved"]).read_bytes() == fig4_archive
    # The healed job ran fresh and archived next to the manifest.
    assert runs[("fig1", 0)]["resumed"] is False
    assert runs[("fig1", 0)]["error"] is None
    assert (out / runs[("fig1", 0)]["saved"]).exists()


def test_resume_reruns_job_with_missing_archive(tmp_path, capsys):
    out = tmp_path / "out"
    rc = main(["fig1", "fig4", "--jobs", "1", "--no-cache", "--save", str(out)])
    assert rc == 0
    runs = _by_id(_manifest(out))
    (out / runs[("fig1", 0)]["saved"]).unlink()

    rc = main(["--resume", str(out / "manifest.json")])
    assert rc == 0
    assert "resuming: 1 job(s) preserved, 1 to run" in capsys.readouterr().err
    runs = _by_id(_manifest(out))
    assert (out / runs[("fig1", 0)]["saved"]).exists()
    assert runs[("fig1", 0)]["resumed"] is False
    assert runs[("fig4", 0)]["resumed"] is True


def test_resume_after_interrupt_completes_the_sweep(tmp_path, monkeypatch):
    def _interrupt(seed=0, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setitem(registry.EXPERIMENTS, "fig4", _interrupt)
    out = tmp_path / "out"
    assert main(["fig1", "fig4", "--jobs", "1", "--no-cache",
                 "--save", str(out)]) == EXIT_INTERRUPTED
    monkeypatch.undo()

    assert main(["--resume", str(out)]) == 0
    manifest = _manifest(out)
    assert "interrupted" not in manifest
    assert manifest["failures"] == 0
    runs = _by_id(manifest)
    assert runs[("fig1", 0)]["resumed"] is True
    assert runs[("fig4", 0)]["error"] is None


def test_resume_nothing_to_do(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(["fig1", "--jobs", "1", "--no-cache", "--save", str(out)]) == 0
    assert main(["--resume", str(out)]) == 0
    assert "resuming: 1 job(s) preserved, 0 to run" in capsys.readouterr().err


def test_resume_missing_manifest_rejected(tmp_path, capsys):
    assert main(["--resume", str(tmp_path / "nowhere")]) == 2
    assert "cannot resume" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The ISSUE acceptance flow: hang + crash in one sweep, then resume
# ----------------------------------------------------------------------
@fork_only
def test_acceptance_hang_crash_sweep_then_resume(tmp_path, monkeypatch, capsys):
    monkeypatch.setitem(registry.EXPERIMENTS, "fig1", _hang)
    monkeypatch.setitem(registry.EXPERIMENTS, "fig4", _crash)
    out = tmp_path / "out"
    rc = main(["fig1", "fig4", "ablation-merge", "--jobs", "2", "--no-cache",
               "--save", str(out), "--timeout", "1"])
    assert rc == 1

    runs = _by_id(_manifest(out))
    assert runs[("fig1", 0)]["failure_kind"] == "timeout"
    assert runs[("fig4", 0)]["failure_kind"] == "error"
    assert "deliberate crash" in runs[("fig4", 0)]["error"]
    assert runs[("ablation-merge", 0)]["error"] is None

    monkeypatch.undo()
    rc = main(["--resume", str(out)])
    assert rc == 0
    assert "resuming: 1 job(s) preserved, 2 to run" in capsys.readouterr().err
    merged = _manifest(out)
    assert merged["failures"] == 0
    runs = _by_id(merged)
    assert runs[("ablation-merge", 0)]["resumed"] is True
    assert runs[("fig1", 0)]["error"] is None
    assert runs[("fig4", 0)]["error"] is None
