"""Property-based round-trip tests for serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.samples import SampleTrace
from repro.core.serialize import (
    profile_from_dict,
    profile_to_dict,
    trace_from_dict,
    trace_to_dict,
)


@st.composite
def arbitrary_profiles(draw):
    events = draw(
        st.lists(
            st.builds(
                LatencyEvent,
                start_ns=st.integers(min_value=0, max_value=10**12),
                latency_ns=st.integers(min_value=0, max_value=10**10),
                busy_ns=st.integers(min_value=0, max_value=10**10),
                message_kinds=st.tuples(st.sampled_from(
                    ["WM_CHAR", "WM_KEYDOWN", "WM_TIMER", "WM_SOCKET"]
                )),
                first_input=st.one_of(st.none(), st.text(max_size=5)),
                label=st.text(max_size=10),
            ),
            max_size=30,
        )
    )
    name = draw(st.text(max_size=10))
    return LatencyProfile(events, name=name)


@given(arbitrary_profiles())
@settings(max_examples=100)
def test_profile_roundtrip_exact(profile):
    import json

    payload = json.loads(json.dumps(profile_to_dict(profile)))
    restored = profile_from_dict(payload)
    assert restored.name == profile.name
    assert len(restored) == len(profile)
    for a, b in zip(profile, restored):
        assert (a.start_ns, a.latency_ns, a.busy_ns) == (
            b.start_ns,
            b.latency_ns,
            b.busy_ns,
        )
        assert a.message_kinds == b.message_kinds
        assert a.first_input == b.first_input
        assert a.label == b.label


@given(
    deltas=st.lists(st.integers(min_value=0, max_value=10**9), max_size=50),
    loop_ns=st.integers(min_value=1, max_value=10**7),
)
@settings(max_examples=100)
def test_trace_roundtrip_exact(deltas, loop_ns):
    import json

    times = [0]
    for delta in deltas:
        times.append(times[-1] + delta)
    trace = SampleTrace(times, loop_ns=loop_ns)
    payload = json.loads(json.dumps(trace_to_dict(trace)))
    restored = trace_from_dict(payload)
    assert list(restored.times) == times
    assert restored.loop_ns == loop_ns
