"""Unit tests for the PowerPoint model and OLE sessions."""

import pytest

from repro.apps import SlidesApp
from repro.apps.ole import OleServer
from repro.sim.timebase import ns_from_ms, ns_from_sec
from repro.winsys import boot


@pytest.fixture
def ppt(nt40):
    app = SlidesApp(nt40)
    app.start(foreground=True)
    nt40.run_for(ns_from_ms(5))
    return nt40, app


def do(system, payload, max_s=120):
    system.post_command(payload)
    system.run_until_quiescent(max_ns=system.now + ns_from_sec(max_s))


class TestLifecycle:
    def test_launch_reads_image_cold(self, ppt):
        system, app = ppt
        blocks_before = system.machine.disk.blocks_transferred
        do(system, "launch")
        assert app.started
        read = system.machine.disk.blocks_transferred - blocks_before
        assert read == app.image.file.block_count

    def test_open_document(self, ppt):
        system, app = ppt
        do(system, "launch")
        do(system, "open")
        assert app.document_open
        assert app.page == 0

    def test_pagedown_advances(self, ppt):
        system, app = ppt
        do(system, "launch")
        do(system, "open")
        system.machine.keyboard.keystroke("PageDown")
        system.run_until_quiescent(max_ns=system.now + ns_from_sec(10))
        assert app.page == 1

    def test_pagedown_clamps_at_end(self, ppt):
        system, app = ppt
        app.page = app.PAGES - 1
        for syscall in app.page_down():
            pass  # drive generator without kernel: state-only check
        assert app.page == app.PAGES - 1


class TestOleSessions:
    def test_first_edit_cold_later_warm(self, ppt):
        system, app = ppt
        do(system, "launch")
        do(system, "open")

        def timed_edit():
            start = system.now
            do(system, "ole_edit")
            duration = system.now - start
            do(system, "ole_close")
            return duration

        first = timed_edit()
        second = timed_edit()
        third = timed_edit()
        assert first > second > third

    def test_modify_is_subsecond(self, ppt):
        system, app = ppt
        do(system, "launch")
        do(system, "open")
        do(system, "ole_edit")
        start = system.now
        do(system, "ole_modify")
        assert system.now - start < ns_from_sec(1)
        do(system, "ole_close")

    def test_activations_counted(self, ppt):
        system, app = ppt
        do(system, "launch")
        do(system, "ole_edit")
        do(system, "ole_close")
        do(system, "ole_edit")
        assert app.ole.activations == 2

    def test_session_creep(self, nt40):
        """Later warm activations cost slightly more (the 5.3 quirk)."""
        server = OleServer(nt40, name="creep-test")
        server.activations = 1  # pretend first already happened

        def warm_cycles():
            total = 0
            for syscall in server.start_edit():
                work = getattr(syscall, "work", None)
                if work is not None:
                    total += work.cycles
            return total

        second = warm_cycles()
        third = warm_cycles()
        fourth = warm_cycles()
        assert second < third < fourth


class TestSave:
    def test_save_writes_scale_with_personality(self, nt351, nt40):
        def save_writes(system):
            app = SlidesApp(system)
            return round(app.SAVE_WRITE_COUNT * system.personality.save_write_factor)

        assert save_writes(nt40) > save_writes(nt351)

    def test_save_takes_seconds(self, ppt):
        system, app = ppt
        do(system, "launch")
        do(system, "open")
        start = system.now
        do(system, "save", max_s=300)
        assert system.now - start > ns_from_sec(2)
