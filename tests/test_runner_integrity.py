"""Runner integration of the integrity subsystem.

Exit code 3 is reserved for measurement-invariant failure under
``--strict-invariants``; manifests carry per-job payload-invariant
outcomes and (in strict mode) the probe-matrix records; ``--scenario``
is validated and recorded for resume.
"""

from __future__ import annotations

import json

import pytest

from repro.core.serialize import load_json
from repro.experiments import runner
from repro.experiments.runner import EXIT_INTERRUPTED, EXIT_INVARIANT, main
from repro.verify.invariants import InvariantReport


def test_exit_codes_are_distinct():
    assert EXIT_INVARIANT == 3
    assert len({0, 1, 2, EXIT_INVARIANT, EXIT_INTERRUPTED}) == 5


def test_strict_invariants_pass_is_exit_zero(tmp_path, capsys):
    code = main(
        [
            "fig4",
            "--no-cache",
            "--checks-only",
            "--strict-invariants",
            "--save",
            str(tmp_path),
        ]
    )
    assert code == 0
    manifest = load_json(tmp_path / "manifest.json")
    integrity = manifest["integrity"]
    assert integrity["strict"] is True
    assert integrity["invariant_failures"] == 0
    assert len(integrity["probes"]) == 3  # one healthy probe per OS
    for record in integrity["probes"]:
        assert not record["summary"]["failed"]
    (entry,) = manifest["experiments"]
    assert entry["invariants"]["failed"] == []
    assert "payload-well-formed" in entry["invariants"]["passed"]


def test_strict_invariant_failure_is_exit_three(tmp_path, monkeypatch, capsys):
    def broken_matrix(scenario, seed):
        return [
            {
                "os": "nt40",
                "scenario": "",
                "summary": {
                    "passed": [],
                    "failed": ["time-conservation"],
                    "skipped": [],
                },
                "violations": [
                    {
                        "invariant": "time-conservation",
                        "message": "planted",
                        "context": {},
                    }
                ],
            }
        ]

    monkeypatch.setattr(runner, "_strict_probe_matrix", broken_matrix)
    code = main(
        ["fig4", "--no-cache", "--checks-only", "--strict-invariants",
         "--save", str(tmp_path)]
    )
    assert code == EXIT_INVARIANT
    err = capsys.readouterr().err
    assert "invariant FAILED: time-conservation" in err
    manifest = load_json(tmp_path / "manifest.json")
    assert manifest["integrity"]["invariant_failures"] == 1
    assert manifest["integrity"]["probes"][0]["violations"]


def test_without_strict_flag_invariants_do_not_gate_exit(tmp_path, monkeypatch):
    """Payload invariants are recorded either way, but only strict mode
    turns them into exit code 3."""
    code = main(["fig4", "--no-cache", "--checks-only", "--save", str(tmp_path)])
    assert code == 0
    manifest = load_json(tmp_path / "manifest.json")
    assert manifest["integrity"]["strict"] is False
    assert "probes" not in manifest["integrity"]


def test_unknown_scenario_is_a_usage_error(capsys):
    assert main(["fig4", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bad_checkpoint_interval_is_a_usage_error(capsys):
    assert main(["fig4", "--checkpoint-interval", "0"]) == 2


def test_scenario_is_recorded_and_reused_on_resume(tmp_path, capsys):
    code = main(
        [
            "ext-faults",
            "--no-cache",
            "--checks-only",
            "--scenario",
            "degraded",
            "--save",
            str(tmp_path),
        ]
    )
    assert code == 0
    manifest = load_json(tmp_path / "manifest.json")
    assert manifest["run_kwargs"] == {"scenario": "degraded"}
    # a resume without --scenario picks the recorded one back up
    code = main(["--resume", str(tmp_path), "--checks-only", "--no-cache"])
    assert code == 0
    manifest = load_json(tmp_path / "manifest.json")
    assert manifest["run_kwargs"] == {"scenario": "degraded"}
    (entry,) = manifest["experiments"]
    assert entry["resumed"] is True  # nothing needed re-running


def test_checkpoint_dir_flag_reaches_the_experiment(tmp_path):
    ckdir = tmp_path / "ck"
    code = main(
        [
            "ext-faults",
            "--no-cache",
            "--checks-only",
            "--checkpoint-dir",
            str(ckdir),
            "--jobs",
            "1",
        ]
    )
    assert code == 0
    # the run completed, so its snapshot was consumed
    assert ckdir.exists()
    assert not list(ckdir.glob("*.ckpt.json"))
