"""Unit tests for the ARQ input channel and adaptive RTO estimator."""

import pytest

from repro.remote.link import LinkConfig, LossyLink
from repro.remote.transport import (
    AckPacket,
    InputChannel,
    InputPacket,
    RtoEstimator,
    SkipPacket,
    TransportConfig,
    TransportLog,
)
from repro.sim.timebase import ns_from_ms


class TestRtoEstimator:
    def test_initial_rto_is_configured(self):
        estimator = RtoEstimator(TransportConfig())
        assert estimator.rto_ns() == ns_from_ms(150.0)

    def test_first_sample_seeds_srtt(self):
        estimator = RtoEstimator(TransportConfig())
        estimator.sample(ns_from_ms(40))
        assert estimator.srtt_ns == ns_from_ms(40)
        assert estimator.rttvar_ns == ns_from_ms(20)

    def test_converges_to_stable_rtt(self):
        estimator = RtoEstimator(TransportConfig())
        for _ in range(50):
            estimator.sample(ns_from_ms(40))
        # RTTVAR decays toward zero on a steady link, so RTO approaches
        # srtt + margin (clamped at the floor).
        assert estimator.srtt_ns == pytest.approx(ns_from_ms(40), rel=0.01)
        assert estimator.rto_ns() <= ns_from_ms(80)

    def test_rto_respects_floor_and_ceiling(self):
        config = TransportConfig(rto_min_ms=60.0, rto_max_ms=300.0)
        estimator = RtoEstimator(config)
        estimator.sample(ns_from_ms(1))
        assert estimator.rto_ns() >= ns_from_ms(60.0)
        for _ in range(10):
            estimator.on_timeout()
        assert estimator.rto_ns() == ns_from_ms(300.0)

    def test_backoff_doubles_and_resets(self):
        estimator = RtoEstimator(TransportConfig(rto_max_ms=100_000.0))
        base = estimator.rto_ns()
        estimator.on_timeout()
        assert estimator.backoff == 2
        assert estimator.rto_ns() == 2 * base
        estimator.on_timeout()
        assert estimator.rto_ns() == 4 * base
        estimator.sample(ns_from_ms(40))  # clean sample ends the regime
        assert estimator.backoff == 1

    def test_backoff_caps_at_64(self):
        estimator = RtoEstimator(TransportConfig())
        for _ in range(20):
            estimator.on_timeout()
        assert estimator.backoff == 64


def _channel(system, loss=0.0, **transport_kwargs):
    """An InputChannel echoed by a trivial always-ack server."""
    config = TransportConfig(**transport_kwargs)
    log = TransportLog()
    link = LossyLink(system, LinkConfig.symmetric("t", rtt_ms=40.0, loss=loss))
    channel = {}

    def server_deliver(packet):
        if isinstance(packet, SkipPacket):
            return
        assert isinstance(packet, InputPacket)
        link.send(
            "down",
            config.ack_bytes,
            lambda seq=packet.seq: channel["channel"].on_ack(AckPacket(seq)),
            label=f"ack:{packet.seq}",
        )

    channel["channel"] = InputChannel(link, config, server_deliver, log)
    return channel["channel"], log


class TestInputChannel:
    def test_clean_link_acks_everything(self, nt40):
        channel, log = _channel(nt40)
        for char in "abcdef":
            channel.send(char)
            nt40.run_for(ns_from_ms(100))
        counters = channel.counters()
        assert counters["acked"] == counters["sent"] == 6
        assert counters["retransmits"] == 0
        assert counters["rtt_samples"] == 6
        assert log.count("ack") == 6

    def test_lossy_link_retransmits_until_acked(self):
        from repro.winsys import boot

        system = boot("nt40", seed=5)
        channel, log = _channel(system, loss=0.45)
        for char in "abcdefgh":
            channel.send(char)
            system.run_for(ns_from_ms(120))
        system.run_for(ns_from_ms(12_000))
        counters = channel.counters()
        assert counters["retransmits"] > 0
        assert counters["acked"] + counters["abandoned"] == counters["sent"]
        assert log.count("retransmit") == counters["retransmits"]

    def test_give_up_after_retry_cap(self, nt40):
        # A link that drops every upstream packet: each input burns
        # through the retry cap and is abandoned, with a skip notice.
        config = TransportConfig(retry_cap=3)
        log = TransportLog()
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=40.0, loss=0.99))
        abandoned = []
        channel = InputChannel(
            link,
            config,
            deliver=lambda packet: None,
            log=log,
            on_abandoned=abandoned.append,
        )
        channel.send("a")
        nt40.run_for(ns_from_ms(60_000))
        counters = channel.counters()
        assert counters["abandoned"] == 1 and counters["in_flight"] == 0
        assert abandoned == [1]
        assert log.count("give-up") == 1
        # retry_cap total transmissions: 1 send + (cap - 1) retransmits.
        assert log.count("send") + log.count("retransmit") == config.retry_cap

    def test_karn_skips_retransmitted_samples(self, nt40):
        channel, _ = _channel(nt40)
        channel.send("a")
        nt40.run_for(ns_from_ms(100))
        assert channel.estimator.samples == 1
        # Fake an ambiguous ack: pretend the packet was retransmitted.
        channel._pending[99] = {
            "char": "x",
            "first_sent_ns": 0,
            "attempts": 2,
            "rto_ns": ns_from_ms(100),
            "timer": None,
        }
        channel.on_ack(AckPacket(99))
        assert channel.estimator.samples == 1  # unchanged

    def test_duplicate_ack_is_ignored(self, nt40):
        channel, _ = _channel(nt40)
        channel.send("a")
        nt40.run_for(ns_from_ms(100))
        before = channel.counters()
        channel.on_ack(AckPacket(1))
        assert channel.counters() == before

    def test_log_digest_is_deterministic(self):
        from repro.winsys import boot

        def run_once():
            system = boot("nt40", seed=7)
            channel, log = _channel(system, loss=0.3)
            for char in "abcde":
                channel.send(char)
                system.run_for(ns_from_ms(150))
            system.run_for(ns_from_ms(8_000))
            return log.digest()

        assert run_once() == run_once()
