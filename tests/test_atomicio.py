"""Atomic artifact writes and the chaos write-fault hook.

The acceptance bar: a reader can never observe a torn file from
:func:`atomic_write_text` — either the previous complete content or the
new complete content — and a simulated ENOSPC leaves the destination
untouched with no temp-file debris.
"""

import json
import os

import pytest

from repro.core.atomicio import (
    atomic_write_json,
    atomic_write_text,
    install_write_fault,
)


@pytest.fixture(autouse=True)
def _clean_hook():
    """No test may leak a write-fault hook into the next."""
    install_write_fault(None)
    yield
    install_write_fault(None)


def test_writes_and_replaces(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "first")
    assert target.read_text() == "first"
    atomic_write_text(target, "second")
    assert target.read_text() == "second"
    # No temp debris: the only entry is the artifact itself.
    assert os.listdir(tmp_path) == ["artifact.json"]


def test_json_wrapper_round_trips(tmp_path):
    target = tmp_path / "payload.json"
    payload = {"b": [1, 2, 3], "a": {"nested": True}}
    atomic_write_json(target, payload, indent=2)
    assert json.loads(target.read_text()) == payload


def test_json_serialization_failure_touches_nothing(tmp_path):
    target = tmp_path / "payload.json"
    atomic_write_json(target, {"ok": 1})
    with pytest.raises(TypeError):
        atomic_write_json(target, {"bad": object()})
    assert json.loads(target.read_text()) == {"ok": 1}
    assert os.listdir(tmp_path) == ["payload.json"]


def test_enospc_hook_preserves_previous_content(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "intact")

    def refuse(path, text):
        raise OSError(28, f"chaos enospc: {path}")

    install_write_fault(refuse)
    with pytest.raises(OSError):
        atomic_write_text(target, "lost")
    install_write_fault(None)
    # The destination is exactly as it was, and nothing leaked.
    assert target.read_text() == "intact"
    assert os.listdir(tmp_path) == ["artifact.json"]


def test_failure_mid_write_leaves_no_temp_file(tmp_path):
    """A BaseException unwinding mid-write (the SIGALRM watchdog case)
    must remove its temporary file."""
    target = tmp_path / "artifact.json"

    class Boom(BaseException):
        pass

    class Exploding(str):
        pass

    # Trigger the failure *inside* the temp-file write by handing an
    # object whose str conversion happens late: simplest is a hook that
    # raises a BaseException (not OSError) after mkstemp would run —
    # instead we patch os.replace to blow up post-write.
    real_replace = os.replace

    def exploding_replace(src, dst):
        raise Boom()

    os.replace = exploding_replace
    try:
        with pytest.raises(Boom):
            atomic_write_text(target, "never-published")
    finally:
        os.replace = real_replace
    assert not target.exists()
    assert os.listdir(tmp_path) == []


def test_corrupting_hook_survives_rename_but_is_complete(tmp_path):
    """A torn-write chaos hook produces a *complete* (renamed) file with
    corrupted bytes — the nastier failure load-time validation must
    catch; the write machinery itself stays atomic."""
    target = tmp_path / "cache.json"

    def tear(path, text):
        return text[: len(text) // 2] + "\x00<<torn>>"

    install_write_fault(tear)
    atomic_write_text(target, json.dumps({"digest": "abc", "data": [1] * 50}))
    install_write_fault(None)
    content = target.read_text()
    assert content.endswith("\x00<<torn>>")
    with pytest.raises(json.JSONDecodeError):
        json.loads(content)


def test_install_returns_previous_hook():
    def first(path, text):
        return text

    def second(path, text):
        return text

    assert install_write_fault(first) is None
    assert install_write_fault(second) is first
    assert install_write_fault(None) is second


def test_hook_scope_restoration_via_chaos_harness(tmp_path):
    """The chaos harness installs its write hook for the job's duration
    only — afterwards writes are clean again (no leakage into the next
    sequential job)."""
    from repro.chaos import ChaosPlan, ChaosSpec, chaos_harness, chaos_payload

    plan = ChaosPlan(
        "torn",
        (
            ChaosSpec.make(
                "tear", "corrupt-write", params={"scope": "all"}
            ),
        ),
    )
    target = tmp_path / "artifact.json"
    with chaos_harness(chaos_payload(plan, seed=0), "job:0"):
        atomic_write_text(target, "payload-bytes-here")
        assert "chaos-torn-write" in target.read_text()
    atomic_write_text(target, "payload-bytes-here")
    assert target.read_text() == "payload-bytes-here"


def test_checkpoint_scope_spares_cache_writes(tmp_path):
    """Scope filtering: a checkpoint-scoped fault tears only
    ``*.ckpt.json`` files."""
    from repro.chaos import ChaosPlan, ChaosSpec, chaos_harness, chaos_payload

    plan = ChaosPlan(
        "torn-ckpt",
        (
            ChaosSpec.make(
                "tear", "corrupt-write", params={"scope": "checkpoint"}
            ),
        ),
    )
    cache_file = tmp_path / "entry.json"
    ckpt_file = tmp_path / "unit.ckpt.json"
    with chaos_harness(chaos_payload(plan, seed=0), "job:0"):
        atomic_write_text(cache_file, "cache-entry-bytes")
        atomic_write_text(ckpt_file, "checkpoint-bytes-here")
    assert cache_file.read_text() == "cache-entry-bytes"
    assert "chaos-torn-write" in ckpt_file.read_text()
