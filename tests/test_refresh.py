"""Unit and property tests for the display-refresh extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.refresh import (
    DEFAULT_REFRESH_NS,
    refresh_adjusted,
    refresh_penalty,
)

MS = 1_000_000


def profile_of(*events):
    return LatencyProfile(
        [LatencyEvent(start_ns=s, latency_ns=l, label=label) for s, l, label in events]
    )


class TestRefreshAdjusted:
    def test_rounds_up_to_boundary(self):
        # Event ends at 5 ms; 10 ms refresh -> visible at 10 ms.
        profile = profile_of((0, 5 * MS, ""))
        adjusted = refresh_adjusted(profile, period_ns=10 * MS)
        assert adjusted[0].latency_ns == 10 * MS

    def test_exact_boundary_unchanged(self):
        profile = profile_of((0, 10 * MS, ""))
        adjusted = refresh_adjusted(profile, period_ns=10 * MS)
        assert adjusted[0].latency_ns == 10 * MS

    def test_phase_shifts_boundaries(self):
        profile = profile_of((0, 5 * MS, ""))
        adjusted = refresh_adjusted(profile, period_ns=10 * MS, phase_ns=7 * MS)
        assert adjusted[0].latency_ns == 7 * MS

    def test_metadata_preserved(self):
        profile = profile_of((3 * MS, 5 * MS, "keystroke"))
        adjusted = refresh_adjusted(profile, period_ns=10 * MS)
        assert adjusted[0].label == "keystroke"
        assert adjusted[0].start_ns == 3 * MS

    def test_period_validation(self):
        with pytest.raises(ValueError):
            refresh_adjusted(profile_of(), period_ns=0)

    def test_default_period_in_paper_band(self):
        assert 12 * MS <= DEFAULT_REFRESH_NS <= 17 * MS


class TestRefreshPenalty:
    def test_empty_profile(self):
        penalty = refresh_penalty(profile_of())
        assert penalty.mean_penalty_ns == 0.0
        assert penalty.affected_fraction == 0.0

    def test_penalty_values(self):
        profile = profile_of((0, 4 * MS, ""), (0, 10 * MS, ""))
        penalty = refresh_penalty(profile, period_ns=10 * MS)
        assert penalty.max_penalty_ns == 6 * MS
        assert penalty.mean_penalty_ns == pytest.approx(3 * MS)
        assert penalty.affected_fraction == 0.5


@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**9),
            st.integers(min_value=1, max_value=10**8),
        ),
        min_size=1,
        max_size=40,
    ),
    period_ms=st.integers(min_value=1, max_value=50),
    phase_ms=st.integers(min_value=0, max_value=49),
)
@settings(max_examples=150)
def test_property_penalty_bounded_by_period(events, period_ms, phase_ms):
    profile = LatencyProfile(
        [LatencyEvent(start_ns=s, latency_ns=l) for s, l in events]
    )
    period = period_ms * MS
    adjusted = refresh_adjusted(profile, period_ns=period, phase_ns=phase_ms * MS)
    for before, after in zip(
        sorted(profile, key=lambda e: (e.start_ns, e.latency_ns)),
        sorted(adjusted, key=lambda e: (e.start_ns, e.latency_ns)),
    ):
        penalty = after.latency_ns - before.latency_ns
        assert 0 <= penalty < period
        # Visibility lands exactly on a raster boundary.
        assert (after.end_ns - phase_ms * MS) % period == 0
