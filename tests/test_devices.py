"""Unit tests for the simulated devices (disk, keyboard, mouse, display)."""

import pytest

from repro.sim.devices.disk import Disk, DiskGeometry, DiskRequest
from repro.sim.devices.display import Display
from repro.sim.devices.keyboard import Keyboard
from repro.sim.devices.mouse import Mouse
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def disk(sim):
    return Disk(sim, RngStreams(0))


class TestDisk:
    def test_completion_callback(self, sim, disk):
        done = []
        disk.submit(DiskRequest(block=100, count=4, on_complete=done.append))
        sim.run()
        assert len(done) == 1
        assert done[0].completed_ns > done[0].submitted_ns

    def test_service_time_components(self, sim, disk):
        request = DiskRequest(block=100_000, count=8)
        service = disk.service_time_ns(request)
        geometry = disk.geometry
        minimum = geometry.controller_overhead_ns + geometry.min_seek_ns
        assert service >= minimum
        assert service >= geometry.transfer_ns_per_block * 8

    def test_sequential_access_cheaper_than_far_seek(self, sim, disk):
        # Average over rotation randomness.
        near = sum(
            disk.service_time_ns(DiskRequest(block=0, count=1)) for _ in range(50)
        )
        far = sum(
            disk.service_time_ns(DiskRequest(block=250_000, count=1))
            for _ in range(50)
        )
        assert far > near

    def test_fifo_ordering(self, sim, disk):
        done = []
        for block in (10, 5000, 200):
            disk.submit(
                DiskRequest(block=block, count=1, on_complete=lambda r: done.append(r.block))
            )
        sim.run()
        assert done == [10, 5000, 200]

    def test_queue_depth(self, sim, disk):
        disk.submit(DiskRequest(block=1, count=1))
        disk.submit(DiskRequest(block=2, count=1))
        assert disk.queue_depth == 2
        sim.run()
        assert disk.queue_depth == 0

    def test_bounds_checked(self, disk):
        with pytest.raises(ValueError):
            disk.submit(DiskRequest(block=-1, count=1))
        with pytest.raises(ValueError):
            disk.submit(DiskRequest(block=disk.geometry.total_blocks, count=1))
        with pytest.raises(ValueError):
            disk.submit(DiskRequest(block=0, count=0))

    def test_interrupt_sink_used_when_set(self, sim, disk):
        raised = []
        disk.set_interrupt_sink(lambda vector, payload: raised.append(vector))
        disk.submit(DiskRequest(block=0, count=1))
        sim.run()
        assert raised == ["disk"]

    def test_stats(self, sim, disk):
        disk.submit(DiskRequest(block=0, count=3))
        sim.run()
        assert disk.requests_completed == 1
        assert disk.blocks_transferred == 3
        assert disk.busy_ns > 0

    def test_deterministic_given_seed(self):
        def total_time(seed):
            sim = Simulator()
            disk = Disk(sim, RngStreams(seed))
            for block in (10, 5000, 99):
                disk.submit(DiskRequest(block=block, count=2))
            sim.run()
            return sim.now

        assert total_time(1) == total_time(1)
        assert total_time(1) != total_time(2)


class TestKeyboard:
    def test_key_raises_interrupt(self, sim):
        events = []
        keyboard = Keyboard(sim, lambda v, p: events.append((v, p)))
        keyboard.key("a")
        assert events[0][0] == "keyboard"
        assert events[0][1].key == "a"
        assert events[0][1].down

    def test_keystroke_posts_down_and_up(self, sim):
        events = []
        keyboard = Keyboard(sim, lambda v, p: events.append(p))
        keyboard.keystroke("x")
        assert [e.down for e in events] == [True, False]

    def test_keystroke_with_hold(self, sim):
        events = []
        keyboard = Keyboard(sim, lambda v, p: events.append((p.down, sim.now)))
        keyboard.keystroke("x", hold_ns=5_000_000)
        sim.run()
        assert events == [(True, 0), (False, 5_000_000)]

    def test_unconnected_raises(self, sim):
        with pytest.raises(RuntimeError):
            Keyboard(sim).key("a")


class TestMouse:
    def test_click_edges(self, sim):
        events = []
        mouse = Mouse(sim, lambda v, p: events.append(p.kind))
        mouse.click(hold_ns=1_000_000)
        sim.run()
        assert events == ["down", "up"]

    def test_move_updates_position(self, sim):
        events = []
        mouse = Mouse(sim, lambda v, p: events.append(p))
        mouse.move(10, 20)
        assert mouse.position == (10, 20)
        assert events[0].position == (10, 20)

    def test_hold_duration(self, sim):
        times = []
        mouse = Mouse(sim, lambda v, p: times.append((p.kind, sim.now)))
        mouse.click(hold_ns=90_000_000)
        sim.run()
        assert dict(times)["up"] == 90_000_000


class TestDisplay:
    def test_paint_accounting(self, sim):
        display = Display(sim)
        display.paint(1000)
        display.paint(500)
        assert display.paint_ops == 2
        assert display.pixels_painted == 1500

    def test_negative_paint_rejected(self, sim):
        with pytest.raises(ValueError):
            Display(sim).paint(-1)

    def test_refresh_boundary(self, sim):
        display = Display(sim, refresh_period_ns=10_000_000)
        sim.schedule(3_000_000, lambda: None)
        sim.run()
        assert display.next_refresh_ns() == 10_000_000
        assert display.visible_after_ns() == 7_000_000

    def test_refresh_in_paper_range(self, sim):
        # Section 2.3: "most graphics output devices refresh every 12-17 ms".
        display = Display(sim)
        assert 12_000_000 <= display.refresh_period_ns <= 17_000_000
