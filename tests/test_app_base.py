"""Unit tests for the InteractiveApp framework."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.apps.base import InteractiveApp
from repro.winsys import WM, boot


class Recorder(InteractiveApp):
    name = "recorder"

    def __init__(self, system):
        super().__init__(system)
        self.log = []

    def on_char(self, char):
        self.log.append(("char", char))
        yield self.app_compute(10_000)

    def on_key(self, key):
        self.log.append(("key", key))
        yield self.app_compute(10_000)

    def on_command(self, command):
        self.log.append(("command", command))
        yield self.app_compute(10_000)


class TestPump:
    def test_dispatch_routes_by_kind(self, nt40):
        app = Recorder(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.post_command("go")
        nt40.run_for(ns_from_ms(50))
        kinds = [entry[0] for entry in app.log]
        assert "char" in kinds and "key" in kinds and "command" in kinds

    def test_queuesync_costs_time_but_no_handler(self, nt40):
        app = Recorder(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        busy_before = nt40.machine.cpu.busy_ns
        nt40.post_queuesync()
        nt40.run_for(ns_from_ms(20))
        assert app.log == []  # no user-visible handling
        assert nt40.machine.cpu.busy_ns - busy_before > 0

    def test_quit_via_wm_quit(self, nt40):
        from repro.winsys.messages import Message

        app = Recorder(nt40)
        thread = app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.kernel.post_message(thread, Message(WM.QUIT))
        nt40.run_for(ns_from_ms(20))
        assert thread.done

    def test_events_handled_counts_input_only(self, nt40):
        app = Recorder(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")  # 3 input messages
        nt40.post_queuesync()  # not input
        nt40.run_for(ns_from_ms(50))
        assert app.events_handled == 3

    def test_default_handlers_cost_cpu(self, nt40):
        app = InteractiveApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("F5")
        nt40.run_for(ns_from_ms(50))
        assert nt40.machine.cpu.busy_ns - busy_before > 500_000


class BackgroundApp(InteractiveApp):
    name = "bg"

    def __init__(self, system):
        super().__init__(system)
        self.units = 0
        self.pending = 3

    def on_char(self, char):
        self.pending += 3
        yield self.app_compute(10_000)

    def has_background_work(self):
        return self.pending > 0

    def run_background_step(self):
        self.pending -= 1
        self.units += 1
        yield self.app_compute(50_000)


class TestBackgroundProtocol:
    def test_background_runs_when_queue_empty(self, nt40):
        app = BackgroundApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(50))
        assert app.units == 3
        assert not app.has_background_work()

    def test_input_processed_between_background_steps(self, nt40):
        app = BackgroundApp(nt40)
        app.pending = 1000
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(100))
        assert app.events_handled >= 1  # input was not starved


class TestSyscallBuilders:
    def test_work_kinds(self, nt40):
        app = InteractiveApp(nt40)
        assert app.app_compute(1000).work.cycles == 1000
        assert app.gui_compute(1000).work.cycles == round(
            1000 * nt40.personality.gui_cycle_factor
        )
        assert app.user_compute(1000).work.cycles == round(
            1000 * nt40.personality.user_cycle_factor
        )

    def test_draw_builds_gdi_op(self, nt40):
        op = InteractiveApp(nt40).draw(5000, pixels=99)
        assert op.base.cycles == 5000
        assert op.pixels == 99
