"""Unit tests for the interrupt-cost probe (Section 2.5)."""

import pytest

from repro.core.isrcost import InterruptCostProbe, InterruptCostReport
from repro.winsys import boot


class TestInterruptCostProbe:
    def test_recovers_bare_isr_cost(self, nt40):
        probe = InterruptCostProbe(nt40, loop_us=50.0)
        report = probe.measure(duration_ms=500.0)
        assert report.min_cycles == nt40.personality.clock_isr_cycles

    def test_counts_interrupts(self, nt40):
        probe = InterruptCostProbe(nt40, loop_us=50.0)
        report = probe.measure(duration_ms=500.0)
        assert abs(report.interrupts_observed - 50) <= 2

    def test_tail_includes_housekeeping(self, nt40):
        probe = InterruptCostProbe(nt40, loop_us=50.0)
        report = probe.measure(duration_ms=1000.0)
        # Every 10th tick runs the housekeeping DPC.
        assert report.max_cycles >= nt40.personality.housekeeping_cycles

    def test_double_install_rejected(self, nt40):
        probe = InterruptCostProbe(nt40)
        probe.install()
        with pytest.raises(RuntimeError):
            probe.install()

    def test_win95_costlier_isr(self, win95, nt40):
        report95 = InterruptCostProbe(win95, loop_us=50.0).measure(500.0)
        report40 = InterruptCostProbe(nt40, loop_us=50.0).measure(500.0)
        assert report95.min_cycles > report40.min_cycles


class TestReport:
    def test_empty_report(self):
        report = InterruptCostReport()
        assert report.min_cycles == 0
        assert report.median_cycles == 0.0
        assert report.max_cycles == 0
        assert report.percentile_cycles(95) == 0.0

    def test_statistics(self):
        report = InterruptCostReport(single_interrupt_cycles=[400, 400, 2400])
        assert report.min_cycles == 400
        assert report.median_cycles == 400.0
        assert report.max_cycles == 2400
