"""Unit tests for the assembled machine."""

from repro.sim.machine import Machine, MachineSpec
from repro.sim.work import HwEvent


class TestMachine:
    def test_default_spec_is_the_paper_testbed(self, machine):
        assert machine.spec.cpu_hz == 100_000_000
        assert machine.spec.ram_bytes == 32 * 1024 * 1024
        assert machine.spec.l2_cache_bytes == 256 * 1024
        assert machine.spec.clock_period_ns == 10_000_000
        assert machine.spec.disk_geometry.name.startswith("Fujitsu")

    def test_clock_off_until_power_on(self, machine):
        machine.run_for(100_000_000)
        assert machine.clock.ticks == 0

    def test_power_on_starts_clock(self, machine):
        machine.power_on()
        machine.run_for(100_000_000)
        assert machine.clock.ticks == 10
        assert machine.perf.total(HwEvent.INTERRUPTS) == 10

    def test_run_for_advances(self, machine):
        machine.run_for(5_000)
        assert machine.now == 5_000
        machine.run_until(10_000)
        assert machine.now == 10_000

    def test_device_vectors_registered(self, machine):
        for vector in ("clock", "disk", "keyboard", "mouse"):
            assert vector in machine.interrupts.delivered

    def test_devices_share_the_simulator(self, machine):
        assert machine.disk.sim is machine.sim
        assert machine.keyboard.sim is machine.sim
        assert machine.cpu.sim is machine.sim

    def test_seeded_machines_identical(self):
        a = Machine(MachineSpec(master_seed=5))
        b = Machine(MachineSpec(master_seed=5))
        assert a.rngs.stream("x").random() == b.rngs.stream("x").random()
