"""Property-based tests for latency profiles and analysis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    cumulative_latency_curve,
    cumulative_vs_events,
    latency_histogram,
)
from repro.core.interarrival import interarrival_table
from repro.core.latency import LatencyEvent, LatencyProfile

MS = 1_000_000


@st.composite
def profiles(draw):
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),  # start ms
                st.integers(min_value=1, max_value=10_000),  # latency ms
            ),
            max_size=60,
        )
    )
    return LatencyProfile(
        [
            LatencyEvent(start_ns=start * MS, latency_ns=latency * MS)
            for start, latency in events
        ]
    )


@given(profiles())
@settings(max_examples=150)
def test_above_below_partition(profile):
    threshold = 100.0
    above = profile.above(threshold)
    below = profile.below(threshold)
    assert len(above) + len(below) == len(profile)
    assert above.total_latency_ns + below.total_latency_ns == profile.total_latency_ns


@given(profiles())
@settings(max_examples=150)
def test_cumulative_curve_total_matches(profile):
    _latencies, cumulative = cumulative_latency_curve(profile)
    if len(profile):
        assert cumulative[-1] * MS == pytest_approx_int(profile.total_latency_ns)
    else:
        assert len(cumulative) == 0


def pytest_approx_int(value):
    return value  # integer-exact in our unit scheme


@given(profiles())
@settings(max_examples=150)
def test_cumulative_vs_events_monotone_and_convex(profile):
    """Sorted by duration: increments must be non-decreasing."""
    _index, cumulative = cumulative_vs_events(profile)
    increments = np.diff(np.concatenate([[0.0], cumulative]))
    assert np.all(np.diff(increments) >= -1e-9)


@given(profiles(), st.floats(min_value=0.5, max_value=500.0))
@settings(max_examples=100)
def test_histogram_counts_everything_up_to_max(profile, bin_ms):
    hist = latency_histogram(profile, bin_ms=bin_ms)
    assert hist.total <= len(profile)
    if len(profile):
        # With the default max the histogram covers every event except
        # possibly the single maximum landing on the last edge.
        assert hist.total >= len(profile) - 1


@given(profiles())
@settings(max_examples=100)
def test_fraction_of_latency_below_bounds(profile):
    fraction = profile.fraction_of_latency_below(100.0)
    assert 0.0 <= fraction <= 1.0


@given(profiles())
@settings(max_examples=100)
def test_interarrival_counts_monotone_in_threshold(profile):
    rows = interarrival_table(profile, [10.0, 100.0, 1000.0])
    counts = [row.count for row in rows]
    assert counts == sorted(counts, reverse=True)
