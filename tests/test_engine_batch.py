"""Batch-executing engine core: kind events, the side calendar and
batched runs.

Three concerns, one file:

* **Call conventions** — ``register_handler`` fixes one entry point per
  handler id (``schedule_kind``/``schedule_kind_at`` -> ``fn()``,
  ``schedule_call`` -> ``fn(payload)``, ``schedule_soa`` ->
  ``fn(time, seq)`` / ``batch(times, seqs)``).
* **Accounting** — ``pending_count`` / ``calendar_high_water`` /
  ``calendar_cancelled`` must stay exact through schedule -> cancel ->
  compact -> batch-run sequences that cross the slot, the heap and the
  side calendar.
* **Identity** — a batched run performs the identical callback sequence
  to a single-event run, entry by entry, so ``--no-batch`` cannot
  change any observable output.
"""

from array import array

import pytest

from repro.sim.engine import (
    SimulationError,
    Simulator,
    batch_default,
    set_batch_default,
)


class TestKindConventions:
    def test_schedule_kind_calls_with_no_args(self, sim):
        seen = []
        hid = sim.register_handler(lambda: seen.append(sim.now))
        sim.schedule_kind(10, hid)
        sim.run()
        assert seen == [10]

    def test_schedule_kind_at_absolute(self, sim):
        seen = []
        hid = sim.register_handler(lambda: seen.append(sim.now))
        sim.schedule_kind_at(25, hid)
        sim.run()
        assert seen == [25]

    def test_schedule_call_carries_payload(self, sim):
        seen = []
        hid = sim.register_handler(seen.append)
        sim.schedule_call(5, hid, "payload")
        sim.run()
        assert seen == ["payload"]

    def test_schedule_call_none_payload_still_delivered(self, sim):
        # None is a legitimate payload (4-tuple entry), not "no argument".
        seen = []
        hid = sim.register_handler(lambda p: seen.append(p))
        sim.schedule_call(5, hid, None)
        sim.run()
        assert seen == [None]

    def test_soa_handler_receives_time_and_seq(self, sim):
        seen = []
        hid = sim.register_handler(lambda t, s: seen.append((t, s)))
        seq = sim.schedule_soa(7, hid)
        sim.run()
        assert seen == [(7, seq)]

    def test_kind_events_interleave_with_handles_in_time_seq_order(self, sim):
        order = []
        hid = sim.register_handler(lambda: order.append("kind"))
        sim.schedule(10, lambda: order.append("handle-a"))
        sim.schedule_kind(10, hid)
        sim.schedule(10, lambda: order.append("handle-b"))
        sim.run()
        assert order == ["handle-a", "kind", "handle-b"]

    def test_negative_delays_rejected(self, sim):
        hid = sim.register_handler(lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_kind(-1, hid)
        with pytest.raises(SimulationError):
            sim.schedule_call(-1, hid, None)
        with pytest.raises(SimulationError):
            sim.schedule_soa(-1, hid)

    def test_cancel_kind_suppresses_delivery(self, sim):
        seen = []
        hid = sim.register_handler(lambda: seen.append("fired"))
        seq = sim.schedule_kind(10, hid)
        sim.cancel_kind(seq)
        sim.run()
        assert seen == []

    def test_cancel_kind_twice_harmless(self, sim):
        hid = sim.register_handler(lambda: None)
        seq = sim.schedule_kind(10, hid)
        sim.cancel_kind(seq)
        sim.cancel_kind(seq)
        assert sim.calendar_cancelled == 1
        sim.run()
        assert sim.pending_count() == 0


class TestSoaOrdering:
    def test_non_monotone_soa_falls_back_to_heap(self, sim):
        """An out-of-order side-calendar schedule keeps its exact key."""
        seen = []
        hid = sim.register_handler(lambda t, s: seen.append((t, s)))
        late = sim.schedule_soa(100, hid)
        early = sim.schedule_soa(50, hid)  # non-monotone -> heap fallback
        sim.run()
        assert seen == [(50, early), (100, late)]

    def test_soa_vs_heap_tie_breaks_by_seq(self, sim):
        order = []
        hid = sim.register_handler(lambda t, s: order.append("soa"))
        sim.schedule(10, lambda: order.append("handle"))
        sim.schedule_soa(10, hid)
        sim.run()
        assert order == ["handle", "soa"]
        order.clear()
        sim2 = Simulator()
        hid2 = sim2.register_handler(lambda t, s: order.append("soa"))
        sim2.schedule_soa(10, hid2)
        sim2.schedule(10, lambda: order.append("handle"))
        sim2.run()
        assert order == ["soa", "handle"]


class TestAccounting:
    def test_pending_count_counts_all_three_sources(self, sim):
        hid = sim.register_handler(lambda: None)
        soa_hid = sim.register_handler(lambda t, s: None)
        sim.schedule(10, lambda: None)  # slot
        sim.schedule(20, lambda: None)  # heap
        sim.schedule_kind(30, hid)  # heap
        sim.schedule_soa(40, soa_hid)  # side calendar
        assert sim.pending_count() == 4
        assert sim.calendar_depth() == 4
        assert sim.calendar_high_water == 4

    def test_cancel_moves_live_to_cancelled_not_depth(self, sim):
        hid = sim.register_handler(lambda: None)
        seqs = [sim.schedule_kind(10 * i, hid) for i in range(1, 6)]
        sim.cancel_kind(seqs[1])
        sim.cancel_kind(seqs[3])
        assert sim.calendar_depth() == 5
        assert sim.pending_count() == 3
        assert sim.calendar_cancelled == 2

    def test_accounting_through_cancel_compact_and_batch_run(self):
        """The satellite pin: schedule -> cancel -> compact -> batch-run
        keeps every gauge exact, on the side calendar."""
        sim = Simulator()
        fired = []
        hid = sim.register_handler(
            lambda t, s: fired.append(s),
            batch=lambda ts, ss: fired.extend(ss),
        )
        seqs = [sim.schedule_soa(10 * (i + 1), hid) for i in range(100)]
        assert sim.pending_count() == 100
        assert sim.calendar_high_water == 100
        # Cancel just over half: the cancelled-dominated side calendar
        # compacts (mirroring the heap's policy).
        for seq in seqs[:51]:
            sim.cancel_kind(seq)
        assert sim.compactions == 1
        assert sim.calendar_cancelled == 0  # compaction swept the set
        assert sim.pending_count() == 49
        assert sim.calendar_depth() == 49
        sim.run()
        assert fired == seqs[51:]
        assert sim.pending_count() == 0
        assert sim.calendar_depth() == 0
        assert sim.calendar_cancelled == 0
        assert sim.events_executed == 49
        # One maximal run: every surviving entry was batched.
        assert sim.events_batched == 49
        assert sim.batch_runs == 1
        assert sim.calendar_high_water == 100

    def test_cancelled_head_discarded_without_skew(self, sim):
        soa_hid = sim.register_handler(lambda t, s: None)
        seq = sim.schedule_soa(10, soa_hid)
        sim.schedule_soa(20, soa_hid)
        sim.cancel_kind(seq)
        assert sim.peek_next_time() == 20
        assert sim.pending_count() == 1
        assert sim.calendar_cancelled == 0  # discarding forgot the seq
        sim.run()
        assert sim.pending_count() == 0

    def test_heap_compaction_sweeps_cancelled_kind_entries(self):
        sim = Simulator()
        hid = sim.register_handler(lambda: None)
        seqs = [sim.schedule_kind(10 * (i + 1), hid) for i in range(100)]
        for seq in seqs[:60]:
            sim.cancel_kind(seq)
        # Kind cancellations are tracked in a seq set; heap compaction is
        # triggered through the handle path, so force one via cancel().
        handles = [sim.schedule(2000 + i, lambda: None) for i in range(20)]
        for handle in handles:
            handle.cancel()
        sim._compact()
        assert sim.calendar_cancelled == 0
        assert sim.pending_count() == 40
        sim.run()
        assert sim.events_executed == 40


class TestBatchedExecution:
    def _population(self, sim, n=32, period=100):
        """A homogeneous periodic population re-armed from a batch handler."""
        log = []

        def single(t, s):
            log.append(("single", t, s))

        def batched(times, seqs):
            assert isinstance(times, array) and isinstance(seqs, array)
            for t, s in zip(times, seqs):
                log.append(("batch", t, s))

        hid = sim.register_handler(single, batch=batched, batch_window_ns=period)
        for i in range(n):
            sim.schedule_soa(period + i, hid)
        return log

    def test_homogeneous_run_batches(self, sim):
        log = self._population(sim)
        sim.run()
        assert sim.batch_runs >= 1
        assert sim.events_batched == 32
        assert [entry[1:] for entry in log] == sorted(entry[1:] for entry in log)

    def test_no_batch_flag_forces_single_event_path(self, sim):
        sim.batch_enabled = False
        log = self._population(sim)
        sim.run()
        assert sim.batch_runs == 0
        assert sim.events_batched == 0
        assert all(entry[0] == "single" for entry in log)

    def test_batched_and_single_histories_identical(self):
        """The tentpole identity: (mode, time, seq) histories match
        entry for entry, modulo the mode tag."""

        def history(enabled):
            sim = Simulator()
            sim.batch_enabled = enabled
            log = []
            hid = sim.register_handler(
                lambda t, s: log.append((t, s)),
                batch=lambda ts, ss: log.extend(zip(ts, ss)),
                batch_window_ns=50,
            )
            other = sim.register_handler(lambda: log.append(("kind", sim.now)))
            for i in range(64):
                sim.schedule_soa(10 + i, hid)
            sim.schedule_kind(40, other)
            sim.schedule(55, lambda: log.append(("handle", sim.now)))
            sim.run()
            return log, sim.events_executed, sim.now

        batched, batched_n, batched_now = history(True)
        single, single_n, single_now = history(False)
        assert batched == single
        assert batched_n == single_n
        assert batched_now == single_now

    def test_until_predicate_disables_batching(self, sim):
        log = self._population(sim)
        sim.run(until=lambda: False)
        assert sim.batch_runs == 0
        assert len(log) == 32

    def test_heap_event_bounds_the_batch(self, sim):
        order = []
        hid = sim.register_handler(
            lambda t, s: order.append("soa"),
            batch=lambda ts, ss: order.extend("soa" for _ in ts),
        )
        for i in range(10):
            sim.schedule_soa(100 + i, hid)
        sim.schedule(105, lambda: order.append("handle"))
        sim.run()
        # Entries 100..104 precede the handle; 106..109 follow it.
        assert order == ["soa"] * 6 + ["handle"] + ["soa"] * 4
        assert sim.batch_runs == 2

    def test_mixed_kinds_break_runs(self, sim):
        order = []
        hid_a = sim.register_handler(
            lambda t, s: order.append("a"),
            batch=lambda ts, ss: order.extend("a" for _ in ts),
        )
        hid_b = sim.register_handler(
            lambda t, s: order.append("b"),
            batch=lambda ts, ss: order.extend("b" for _ in ts),
        )
        for i in range(8):
            sim.schedule_soa(10 + i, hid_a if i % 2 == 0 else hid_b)
        sim.run()
        assert order == ["a", "b"] * 4
        assert sim.batch_runs == 0  # every run has length 1

    def test_batch_window_bounds_runs(self, sim):
        runs = []
        hid = sim.register_handler(
            lambda t, s: runs.append(1),
            batch=lambda ts, ss: runs.append(len(ts)),
            batch_window_ns=5,
        )
        for i in range(10):
            sim.schedule_soa(100 + i, hid)
        sim.run()
        assert sum(runs) == 10
        assert max(runs) <= 5

    def test_until_ns_bounds_the_batch(self, sim):
        log = self._population(sim, n=32, period=100)
        sim.run(until_ns=115)
        assert len(log) == 16
        assert sim.now == 115
        sim.run()
        assert len(log) == 32

    def test_max_events_bounds_the_batch(self, sim):
        log = self._population(sim)
        sim.run(max_events=10)
        assert len(log) == 10
        sim.run()
        assert len(log) == 32

    def test_cancelled_entry_splits_the_run(self, sim):
        log = []
        hid = sim.register_handler(
            lambda t, s: log.append(s),
            batch=lambda ts, ss: log.extend(ss),
        )
        seqs = [sim.schedule_soa(10 + i, hid) for i in range(10)]
        sim.cancel_kind(seqs[4])
        sim.run()
        assert log == seqs[:4] + seqs[5:]

    def test_batch_handler_may_rearm(self, sim):
        """Re-arms from inside the batch handler land after the window."""
        fired = []

        def batch(times, seqs):
            fired.extend(times)
            for t in times:
                if t < 300:
                    sim.schedule_soa(t + 100 - sim.now, hid)

        hid = sim.register_handler(
            lambda t, s: batch(array("q", [t]), array("q", [s])),
            batch=batch,
            batch_window_ns=100,
        )
        for i in range(4):
            sim.schedule_soa(100 + i, hid)
        sim.run()
        assert len(fired) == 12  # 4 timers x 3 generations
        assert fired == sorted(fired)

    def test_batch_handler_calling_stop_raises(self, sim):
        hid = sim.register_handler(
            lambda t, s: None,
            batch=lambda ts, ss: sim.stop(),
        )
        for i in range(4):
            sim.schedule_soa(10 + i, hid)
        with pytest.raises(SimulationError, match="batch handler"):
            sim.run()

    def test_single_entry_run_skips_batch_handler(self, sim):
        calls = []
        hid = sim.register_handler(
            lambda t, s: calls.append("single"),
            batch=lambda ts, ss: calls.append("batch"),
        )
        sim.schedule_soa(10, hid)
        sim.run()
        assert calls == ["single"]


class TestProcessDefault:
    def test_set_batch_default_applies_to_new_simulators(self):
        assert batch_default() is True
        try:
            set_batch_default(False)
            assert Simulator().batch_enabled is False
            set_batch_default(True)
            assert Simulator().batch_enabled is True
        finally:
            set_batch_default(True)

    def test_batch_flag_not_in_cache_variant(self):
        """--no-batch mirrors --no-fast-forward: excluded from cache keys."""
        from repro.experiments.parallel import job_variant

        kwargs, variant = job_variant("fig2", {})
        assert variant == ""
        # The flag travels out of band (process default), never through
        # run_kwargs; an accidental pass-through must not mint a variant.
        kwargs, variant = job_variant("fig2", {"batch": False})
        assert "batch" not in kwargs or variant == ""
