"""End-to-end tests for remote sessions and their fleet integration."""

import pytest

from repro.remote import LinkConfig, TransportConfig, run_remote_session


def _session(os_name="nt40", seed=3, loss=0.0, prediction=False, **kwargs):
    link = LinkConfig.symmetric("test", rtt_ms=60.0, loss=loss)
    return run_remote_session(
        os_name,
        seed,
        link,
        TransportConfig(prediction=prediction),
        chars=kwargs.pop("chars", 12),
        **kwargs,
    )


class TestRemoteSession:
    def test_clean_link_resolves_every_keystroke(self):
        result = _session()
        assert len(result.wait_ms) == 12
        assert result.unresolved == 0
        assert result.abandoned == 0
        assert result.channel["acked"] == 12
        # Every wait covers at least the round trip.
        assert min(result.wait_ms) > 60.0

    def test_schedule_replays_byte_identically(self):
        a = _session(loss=0.3)
        b = _session(loss=0.3)
        assert a.schedule_digest == b.schedule_digest
        assert a.to_dict() == b.to_dict()

    def test_loss_inflates_waits(self):
        clean = _session(seed=3)
        lossy = _session(seed=3, loss=0.35)
        assert max(lossy.wait_ms) > max(clean.wait_ms)
        assert lossy.channel["retransmits"] > 0

    def test_prediction_decouples_wait_from_loss(self):
        lossy = _session(seed=3, loss=0.35, prediction=True)
        # Provisional echo: waits are local-pipeline-sized despite loss.
        assert max(lossy.wait_ms) < 30.0
        assert lossy.predictions == 12
        assert lossy.corrections > 0

    def test_arq_accounting_identity(self):
        for loss in (0.0, 0.35):
            result = _session(seed=9, loss=loss)
            channel = result.channel
            assert (
                channel["acked"] + channel["abandoned"] + channel["in_flight"]
                == channel["sent"]
            )

    def test_scenario_composes(self):
        healthy = _session(seed=3)
        degraded = _session(seed=3, scenario="net-loss")
        assert degraded.schedule_digest != healthy.schedule_digest
        # The scenario's loss window forces retransmissions the healthy
        # run never needed.
        assert degraded.channel["retransmits"] > healthy.channel["retransmits"]

    def test_flapping_link_still_converges(self):
        link = LinkConfig.symmetric(
            "flappy", rtt_ms=50.0, flap_period_ms=400.0, flap_down_ms=80.0
        )
        result = run_remote_session("nt40", 3, link, TransportConfig(), chars=12)
        flapped = result.link["flapped"]
        assert flapped["up"] + flapped["down"] > 0
        assert result.channel["acked"] > 0


class TestFleetRemoteProfile:
    def test_remote_profile_in_default_mix(self):
        from repro.fleet.population import APP_PROFILES, PopulationConfig

        assert "remote" in APP_PROFILES
        assert "remote" in PopulationConfig().profile_mix

    def test_remote_session_result_shape(self):
        from repro.fleet.population import PopulationConfig, SessionPopulation
        from repro.fleet.session import run_session

        population = SessionPopulation(PopulationConfig(seed=3, size=40))
        spec = next(s for s in population if s.profile == "remote")
        result = run_session(spec)
        assert result.profile == "remote"
        assert result.wait_ms and result.span_ms > 0
        assert result.stage_ms["sync_io_wait"] == 0.0
        assert result.stage_ms["keystroke_wait"] == pytest.approx(
            sum(result.wait_ms)
        )
        assert result.to_dict() == run_session(spec).to_dict()

    def test_merged_digest_identical_across_shard_shapes(self):
        """The satellite guarantee: remote sessions in the population
        must not perturb the shard-shape invariance of the fleet digest."""
        from repro.fleet.population import PopulationConfig
        from repro.fleet.shards import run_fleet

        config = PopulationConfig(
            seed=11,
            size=12,
            profile_mix={"remote": 2.0, "editor": 1.0},
            chars_range=(4, 6),
        )
        a = run_fleet(config, shards=1, batch_size=12)
        b = run_fleet(config, shards=3, batch_size=2)
        assert a.digest == b.digest
        assert a.sessions_completed == b.sessions_completed == 12
