"""Edge cases of the sequential-round SIGALRM watchdog.

The watchdog shares one process-wide ``ITIMER_REAL`` with whoever armed
it before us (an outer harness, a test runner's own timeout).  The
contract: after a watchdogged sequential round the outer timer is
re-armed with its *remaining* time (decremented by however long our
jobs ran), an already-expired outer timer still fires (re-armed at a
near-zero epsilon rather than silently disarmed), and a timeout landing
mid-artifact-write leaves no torn files or temp debris behind.

These tests arm real timers, so they only run where SIGALRM exists and
they always disarm in ``finally``.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.core.atomicio import atomic_write_text
from repro.experiments.parallel import JobResult, run_specs

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="platform has no SIGALRM"
)


def _quick_executor(experiment_id, seed, cache=None, refresh=False, **kwargs):
    return JobResult(experiment_id=experiment_id, seed=seed, rendered="ok")


def _napping_executor(experiment_id, seed, cache=None, refresh=False, **kwargs):
    time.sleep(0.25)
    return JobResult(experiment_id=experiment_id, seed=seed, rendered="ok")


#: Set by the slow-write test so the module-level executor knows where
#: to write (sequential rounds run in-process, so a global is safe).
_WRITE_DIR = None


def _slow_write_executor(experiment_id, seed, cache=None, refresh=False, **kwargs):
    """Stall inside :func:`atomic_write_text`'s fsync — the watchdog's
    ``_JobTimeout`` unwinds through the write's cleanup path."""
    target = Path(_WRITE_DIR) / "entry.json"
    real_fsync = os.fsync

    def stalled_fsync(fd):
        time.sleep(30.0)

    os.fsync = stalled_fsync
    try:
        atomic_write_text(target, "{" + "x" * 4096)
    finally:
        os.fsync = real_fsync
    return JobResult(experiment_id=experiment_id, seed=seed, rendered="ok")


@pytest.fixture(autouse=True)
def _disarm():
    """Never leak a timer or handler into the next test."""
    yield
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, signal.SIG_DFL)


def test_outer_timer_restored_with_decremented_remaining():
    fired = []
    signal.signal(signal.SIGALRM, lambda s, f: fired.append(s))
    signal.setitimer(signal.ITIMER_REAL, 60.0)
    results = run_specs(
        [("quick", 0)],
        jobs=1,
        timeout_s=5.0,
        executor=_quick_executor,
    )
    remaining, interval = signal.getitimer(signal.ITIMER_REAL)
    assert results[0].error is None
    assert not fired  # the outer alarm never fired spuriously
    # Re-armed, with the job's elapsed time already deducted.
    assert 0.0 < remaining < 60.0
    assert interval == 0.0


def test_expired_outer_timer_still_fires():
    """An outer timer that should have fired while our watchdog owned
    ``ITIMER_REAL`` is re-armed at a near-zero epsilon — delayed, never
    swallowed (``setitimer(0)`` would disarm it silently)."""
    fired = []
    signal.signal(signal.SIGALRM, lambda s, f: fired.append(s))
    signal.setitimer(signal.ITIMER_REAL, 0.05)  # expires during the job
    results = run_specs(
        [("nap", 0)],
        jobs=1,
        timeout_s=5.0,
        executor=_napping_executor,
    )
    assert results[0].error is None
    deadline = time.monotonic() + 2.0
    while not fired and time.monotonic() < deadline:
        time.sleep(0.01)
    assert fired  # the pending alarm was delivered, late but not lost


def test_no_outer_timer_leaves_alarm_disarmed():
    signal.signal(signal.SIGALRM, signal.SIG_DFL)
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    results = run_specs(
        [("quick", 0)],
        jobs=1,
        timeout_s=5.0,
        executor=_quick_executor,
    )
    assert results[0].error is None
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_timeout_during_artifact_write_leaves_no_debris(tmp_path):
    global _WRITE_DIR
    _WRITE_DIR = str(tmp_path)
    try:
        results = run_specs(
            [("stuck-writer", 0)],
            jobs=1,
            timeout_s=0.3,
            executor=_slow_write_executor,
        )
    finally:
        _WRITE_DIR = None
    job = results[0]
    assert job.failure_kind == "timeout"
    assert job.attempt_history == ["timeout"]
    assert "watchdog" in job.error
    # The interrupted write published nothing: no target, no temp file.
    assert os.listdir(tmp_path) == []


def test_watchdog_timeout_is_not_retried():
    """Timeouts are deterministic badness, not transient pool loss —
    retry rounds must not re-run them."""
    results = run_specs(
        [("nap", 0)],
        jobs=1,
        timeout_s=0.05,
        retries=2,
        backoff_s=0.0,
        sleep=lambda seconds: None,
        executor=_napping_executor,
    )
    job = results[0]
    assert job.failure_kind == "timeout"
    assert job.attempts == 1
    assert job.attempt_history == ["timeout"]
