"""Integration tests: bit-reproducibility of whole simulations."""

import random

import pytest

from repro.apps import NotepadApp, WordApp
from repro.core import MeasurementSession
from repro.workload.tasks import notepad_task, word_task


def profile_signature(result):
    return [
        (event.start_ns, event.latency_ns, tuple(event.message_kinds))
        for event in result.profile
    ]


class TestDeterminism:
    def test_notepad_identical_across_processless_reruns(self):
        def run_once():
            rng = random.Random(21)
            spec = notepad_task(rng, chars=80, page_downs=2, arrows=3)
            return profile_signature(
                MeasurementSession("nt351", NotepadApp, seed=9).run(
                    spec.script, max_seconds=120
                )
            )

        assert run_once() == run_once()

    def test_word_typist_identical(self):
        def run_once():
            rng = random.Random(5)
            spec = word_task(rng, chars=120)
            return profile_signature(
                MeasurementSession("nt40", WordApp, seed=1).run(
                    spec.script, driver_kind="typist", max_seconds=600
                )
            )

        assert run_once() == run_once()

    def test_different_seed_differs(self):
        def run_once(seed):
            rng = random.Random(5)
            spec = word_task(rng, chars=120)
            return profile_signature(
                MeasurementSession("nt40", WordApp, seed=seed).run(
                    spec.script, driver_kind="typist", max_seconds=600
                )
            )

        # Different machine seed -> different typist draws -> different
        # timeline.
        assert run_once(1) != run_once(2)

    def test_simulated_time_identical(self):
        def end_time():
            rng = random.Random(2)
            spec = notepad_task(rng, chars=50, page_downs=1, arrows=1)
            result = MeasurementSession("win95", NotepadApp, seed=3).run(
                spec.script, max_seconds=120
            )
            return result.end_ns

        assert end_time() == end_time()
