"""Crash-safe checkpointing: unit store semantics and kill-and-resume.

The headline test SIGKILLs a real experiment subprocess mid-run (after
its second completed unit), resumes it from the on-disk checkpoint in a
fresh process, and requires the resumed run's archived payload to be
byte-identical to an uninterrupted control run — the property the whole
checkpoint design exists to provide.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.verify.checkpoint import Checkpointer, checkpoint_path

IDENTITY = {
    "experiment_id": "exp",
    "seed": 3,
    "code_version": "abc",
    "variant": "",
}


def _path(tmp_path):
    return tmp_path / "exp-seed3.ckpt.json"


def test_record_get_and_order(tmp_path):
    ck = Checkpointer(_path(tmp_path), IDENTITY)
    assert ck.get("a") is None and "a" not in ck and len(ck) == 0
    ck.record("a", {"x": 1})
    ck.record("b", [1, 2])
    assert ck.get("a") == {"x": 1}
    assert "b" in ck and len(ck) == 2
    assert ck.completed == ["a", "b"]


def test_resume_restores_units_and_audit_trail(tmp_path):
    ck = Checkpointer(_path(tmp_path), IDENTITY)
    ck.record("a", {"x": 1})
    ck.record("b", {"y": 2})
    resumed = Checkpointer(_path(tmp_path), IDENTITY)
    assert resumed.resumed_units == ["a", "b"]
    assert resumed.get("b") == {"y": 2}
    assert ck.resumed_units == []  # the writer started fresh


def test_interval_batches_writes(tmp_path):
    path = _path(tmp_path)
    ck = Checkpointer(path, IDENTITY, interval=3)
    ck.record("a", 1)
    ck.record("b", 2)
    assert not path.exists()  # below the cadence: nothing durable yet
    ck.record("c", 3)
    assert path.exists()
    assert Checkpointer(path, IDENTITY).completed == ["a", "b", "c"]


def test_flush_persists_pending_units(tmp_path):
    path = _path(tmp_path)
    ck = Checkpointer(path, IDENTITY, interval=100)
    ck.record("a", 1)
    ck.flush()
    assert Checkpointer(path, IDENTITY).completed == ["a"]


def test_identity_mismatch_is_ignored_entirely(tmp_path):
    path = _path(tmp_path)
    Checkpointer(path, IDENTITY).record("a", 1)
    stale = Checkpointer(path, dict(IDENTITY, seed=4))
    assert stale.resumed_units == [] and len(stale) == 0


def test_corrupt_file_is_ignored(tmp_path):
    path = _path(tmp_path)
    path.write_text("{not json")
    ck = Checkpointer(path, IDENTITY)
    assert ck.resumed_units == []
    ck.record("a", 1)  # and the slot is recoverable
    assert Checkpointer(path, IDENTITY).completed == ["a"]


def test_discard_removes_the_file(tmp_path):
    path = _path(tmp_path)
    ck = Checkpointer(path, IDENTITY)
    ck.record("a", 1)
    assert path.exists()
    ck.discard()
    assert not path.exists()
    ck.discard()  # idempotent


def test_unserializable_payload_fails_fast(tmp_path):
    ck = Checkpointer(_path(tmp_path), IDENTITY)
    with pytest.raises(TypeError):
        ck.record("a", {"fn": object()})
    assert "a" not in ck


def test_payloads_are_isolated_copies(tmp_path):
    ck = Checkpointer(_path(tmp_path), IDENTITY)
    payload = {"xs": [1]}
    ck.record("a", payload)
    payload["xs"].append(2)
    assert ck.get("a") == {"xs": [1]}
    ck.get("a")["xs"].append(3)
    assert ck.get("a") == {"xs": [1]}


def test_interval_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        Checkpointer(_path(tmp_path), IDENTITY, interval=0)


def test_checkpoint_path_encodes_identity(tmp_path):
    assert checkpoint_path(tmp_path, "fig2", 7).name == "fig2-seed7.ckpt.json"
    assert (
        checkpoint_path(tmp_path, "fig2", 7, "deadbeef").name
        == "fig2-seed7-vdeadbeef.ckpt.json"
    )


# ----------------------------------------------------------------------
# Kill-and-resume: the property the subsystem exists for.
# ----------------------------------------------------------------------
_RUN_SNIPPET = """
import json, os, signal, sys
from repro.core.serialize import save_json
from repro.experiments.parallel import execute_job
from repro.verify.checkpoint import Checkpointer

mode, ckdir, out = sys.argv[1], sys.argv[2], sys.argv[3]

if mode == "kill":
    # SIGKILL the process the moment the second unit has been made
    # durable: a genuine mid-run crash, no cooperative cleanup.
    original = Checkpointer.record
    def record_then_die(self, key, payload):
        original(self, key, payload)
        if len(self.completed) == 2:
            self.flush()
            os.kill(os.getpid(), signal.SIGKILL)
    Checkpointer.record = record_then_die

job = execute_job(
    "ext-faults", 5,
    run_kwargs={"chars": 8, "scenario": "smoke"},
    checkpoint_dir=ckdir,
)
assert job.error is None, job.error
save_json(job.payload, out)
"""


def _run_child(mode: str, ckdir: Path, out: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(_RUN_SNIPPET),
         mode, str(ckdir), str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_sigkilled_run_resumes_byte_identical(tmp_path):
    ckdir = tmp_path / "ck"
    control_out = tmp_path / "control.json"
    resumed_out = tmp_path / "resumed.json"

    killed = _run_child("kill", str(ckdir / "a"), tmp_path / "unused.json")
    assert killed.returncode == -signal.SIGKILL, killed.stderr
    leftovers = list((ckdir / "a").glob("*.ckpt.json"))
    assert len(leftovers) == 1, "the killed run must leave its snapshot"
    snapshot = json.loads(leftovers[0].read_text())
    assert len(snapshot["completed"]) == 2

    resumed = _run_child("run", str(ckdir / "a"), resumed_out)
    assert resumed.returncode == 0, resumed.stderr
    control = _run_child("run", str(ckdir / "b"), control_out)
    assert control.returncode == 0, control.stderr

    assert resumed_out.read_bytes() == control_out.read_bytes()
    # completed runs consume their snapshots
    assert not list((ckdir / "a").glob("*.ckpt.json"))
    assert not list((ckdir / "b").glob("*.ckpt.json"))
