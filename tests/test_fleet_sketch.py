"""Unit and property tests for the fleet latency sketches.

The fleet determinism contract rests on two properties proved here:
sketch merges are exactly commutative and associative (integer bucket
counts), and every reported quantile sits within the guaranteed
relative value error of the exact nearest-rank quantile.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.session import SessionResult
from repro.fleet.sketch import (
    DEFAULT_COMPRESSION,
    FleetAggregator,
    QuantileSketch,
    StageHistogram,
    relative_error_bound,
)

QUANTILES = (0.5, 0.9, 0.95, 0.99, 0.999)


def exact_quantile(values, q):
    """Nearest-rank with the sketch's own rank semantics."""
    ordered = sorted(values)
    return ordered[int(math.floor(q * (len(ordered) - 1)))]


def sketch_of(values, compression=DEFAULT_COMPRESSION):
    sketch = QuantileSketch(compression)
    sketch.extend(values)
    return sketch


def _distributions():
    rng = random.Random(42)
    return {
        "uniform": [rng.uniform(0.5, 200.0) for _ in range(2000)],
        "lognormal": [rng.lognormvariate(1.0, 1.2) for _ in range(2000)],
        "exponential": [rng.expovariate(1 / 30.0) + 0.01 for _ in range(2000)],
        "bimodal": [
            rng.uniform(1.0, 5.0) if rng.random() < 0.9
            else rng.uniform(500.0, 3000.0)
            for _ in range(2000)
        ],
    }


class TestQuantileAccuracy:
    @pytest.mark.parametrize("compression", [32, 64, 128, 256])
    def test_within_relative_bound_on_known_distributions(self, compression):
        bound = relative_error_bound(compression)
        for name, values in _distributions().items():
            sketch = sketch_of(values, compression)
            for q in QUANTILES:
                exact = exact_quantile(values, q)
                estimate = sketch.quantile(q)
                assert abs(estimate - exact) <= bound * exact + 1e-12, (
                    f"{name} q={q} compression={compression}: "
                    f"{estimate} vs exact {exact} (bound {bound:.4%})"
                )

    def test_bound_shrinks_with_compression(self):
        bounds = [relative_error_bound(c) for c in (32, 64, 128, 256)]
        assert bounds == sorted(bounds, reverse=True)
        assert relative_error_bound(128) < 0.01

    def test_single_value_is_exact(self):
        sketch = sketch_of([17.3])
        for q in QUANTILES:
            assert sketch.quantile(q) == 17.3

    def test_quantiles_monotone_in_q(self):
        sketch = sketch_of(_distributions()["lognormal"])
        estimates = [sketch.quantile(q) for q in QUANTILES]
        assert estimates == sorted(estimates)

    def test_estimates_clamped_to_observed_extremes(self):
        values = [2.0, 3.0, 100.0]
        sketch = sketch_of(values)
        assert sketch.quantile(0.0) >= 2.0
        assert sketch.quantile(1.0) <= 100.0

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.count == 0
        assert sketch.summary()["count"] == 0
        assert sketch.mean_ms == 0.0

    def test_mean_is_exact(self):
        values = [1.5, 2.5, 10.0]
        sketch = sketch_of(values)
        assert sketch.mean_ms == pytest.approx(sum(values) / len(values))

    def test_underflow_values_resolve_to_floor(self):
        sketch = sketch_of([1e-6, 1e-5, 1e-4])
        # Everything below the resolution floor shares the underflow
        # bucket; estimates stay clamped inside [min, max].
        assert 1e-6 <= sketch.quantile(0.5) <= 1e-4


class TestMergeAlgebra:
    def test_merge_commutative(self):
        values = _distributions()["uniform"]
        a1, b1 = sketch_of(values[:700]), sketch_of(values[700:])
        a2, b2 = sketch_of(values[:700]), sketch_of(values[700:])
        assert a1.merge(b1).digest() == b2.merge(a2).digest()

    def test_merge_associative(self):
        values = _distributions()["bimodal"]
        parts = [values[:500], values[500:1100], values[1100:]]

        left = sketch_of(parts[0]).merge(sketch_of(parts[1]))
        left.merge(sketch_of(parts[2]))
        right_tail = sketch_of(parts[1]).merge(sketch_of(parts[2]))
        right = sketch_of(parts[0]).merge(right_tail)
        assert left.digest() == right.digest()

    def test_merge_equals_single_pass(self):
        values = _distributions()["exponential"]
        merged = sketch_of(values[:333]).merge(sketch_of(values[333:]))
        assert merged.digest() == sketch_of(values).digest()

    def test_weighted_add_equals_repeats(self):
        a = QuantileSketch()
        a.add(42.0, weight=3)
        b = QuantileSketch()
        for _ in range(3):
            b.add(42.0)
        assert a.digest() == b.digest()

    def test_merge_compression_mismatch_rejected(self):
        with pytest.raises(ValueError, match="compression"):
            QuantileSketch(64).merge(QuantileSketch(128))

    @given(
        values=st.lists(
            st.floats(min_value=1e-3, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        order_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100)
    def test_merge_order_and_partition_invariance(self, values, order_seed):
        """Any partition, merged in any order, is byte-identical."""
        reference = sketch_of(values).digest()
        rng = random.Random(order_seed)
        chunks = []
        remaining = list(values)
        while remaining:
            take = rng.randint(1, len(remaining))
            chunks.append(remaining[:take])
            remaining = remaining[take:]
        rng.shuffle(chunks)
        merged = QuantileSketch()
        for chunk in chunks:
            merged.merge(sketch_of(chunk))
        assert merged.digest() == reference


class TestValidationAndSerialization:
    def test_invalid_inputs_rejected(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            sketch.add(1.0, weight=0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(0)

    def test_round_trip_preserves_digest_and_quantiles(self):
        sketch = sketch_of(_distributions()["lognormal"])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.digest() == sketch.digest()
        for q in QUANTILES:
            assert clone.quantile(q) == sketch.quantile(q)
        assert clone.mean_ms == sketch.mean_ms

    def test_dict_form_is_json_and_canonical(self):
        sketch = sketch_of([1.0, 2.0, 3.0])
        data = json.loads(json.dumps(sketch.to_dict()))
        assert data["kind"] == "quantile-sketch"
        assert data["buckets"] == sorted(data["buckets"])

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="quantile-sketch"):
            QuantileSketch.from_dict({"kind": "nope"})


class TestStageHistogram:
    def test_observe_and_summary(self):
        histogram = StageHistogram(bounds_ms=(1.0, 10.0))
        histogram.observe("wait", 0.5)
        histogram.observe("wait", 5.0)
        histogram.observe("wait", 50.0)  # overflow bucket
        summary = histogram.stage_summary("wait")
        assert summary["count"] == 3
        assert summary["sum_ms"] == pytest.approx(55.5)
        assert summary["mean_ms"] == pytest.approx(55.5 / 3)
        assert histogram.stage_summary("missing") == {
            "count": 0, "sum_ms": 0.0, "mean_ms": 0.0,
        }

    def test_merge_order_independent(self):
        def build(observations):
            histogram = StageHistogram()
            for stage, value in observations:
                histogram.observe(stage, value)
            return histogram

        observations = [("a", 1.0), ("b", 7.0), ("a", 300.0), ("b", 9999.0)]
        whole = build(observations)
        left = build(observations[:2]).merge(build(observations[2:]))
        right = build(observations[2:]).merge(build(observations[:2]))
        assert left.to_dict() == whole.to_dict() == right.to_dict()

    def test_round_trip(self):
        histogram = StageHistogram()
        histogram.observe("io", 3.5, weight=2)
        clone = StageHistogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            StageHistogram(bounds_ms=())
        with pytest.raises(ValueError):
            StageHistogram(bounds_ms=(5.0, 1.0))
        histogram = StageHistogram()
        with pytest.raises(ValueError):
            histogram.observe("x", -1.0)
        with pytest.raises(ValueError):
            histogram.merge(StageHistogram(bounds_ms=(1.0,)))


def _session(index, os_name="nt40", scenario=None, waits=(2.0, 3.0)):
    return SessionResult(
        index=index,
        os_name=os_name,
        profile="editor",
        scenario=scenario,
        wait_ms=list(waits),
        span_ms=1000.0 + index,
        stage_ms={"keystroke_wait": sum(waits), "session_span": 1000.0 + index},
    )


class TestFleetAggregator:
    def test_groups_by_personality_and_scenario(self):
        aggregator = FleetAggregator()
        aggregator.add_session(_session(0, "nt40", None))
        aggregator.add_session(_session(1, "nt40", "smoke"))
        aggregator.add_session(_session(2, "win95", None))
        assert aggregator.group_keys() == [
            ("nt40", "healthy"), ("nt40", "smoke"), ("win95", "healthy"),
        ]
        assert aggregator.sessions == 3
        assert aggregator.events == 6

    def test_merge_matches_single_pass_fold(self):
        sessions = [
            _session(i, os_name, scenario, waits=(1.0 + i, 2.0 + i))
            for i, (os_name, scenario) in enumerate(
                [("nt40", None), ("nt351", "smoke"), ("win95", None),
                 ("nt40", "smoke"), ("nt351", None)]
            )
        ]
        whole = FleetAggregator()
        for session in sessions:
            whole.add_session(session)
        left, right = FleetAggregator(), FleetAggregator()
        for session in sessions[:2]:
            left.add_session(session)
        for session in sessions[2:]:
            right.add_session(session)
        assert left.merge(right).digest() == whole.digest()
        # And the opposite merge order too.
        left2, right2 = FleetAggregator(), FleetAggregator()
        for session in sessions[:2]:
            left2.add_session(session)
        for session in sessions[2:]:
            right2.add_session(session)
        assert right2.merge(left2).digest() == whole.digest()

    def test_round_trip(self):
        aggregator = FleetAggregator()
        aggregator.add_session(_session(0))
        aggregator.add_session(_session(1, scenario="smoke"))
        clone = FleetAggregator.from_dict(aggregator.to_dict())
        assert clone.digest() == aggregator.digest()
        assert clone.sessions == 2 and clone.events == 4

    def test_merge_compression_mismatch_rejected(self):
        with pytest.raises(ValueError, match="compression"):
            FleetAggregator(64).merge(FleetAggregator(128))
