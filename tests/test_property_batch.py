"""Differential hypothesis tests: batched engine vs a pure-heapq oracle.

The oracle executes every scheduled entry one at a time off a plain
``heapq`` keyed ``(time, seq)`` — no slot, no side calendar, no
compaction, no batching.  Randomised schedule / cancel / reschedule
workloads must produce identical ``(time, seq, callback-order)``
histories on the real engine with batching **on** and **off**, and both
must match the oracle.  This is the checkable form of the tentpole's
contract: batching is a pure execution-strategy change.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class _HeapqOracle:
    """Reference semantics for the mixed calendar, one heap, no tricks."""

    def __init__(self):
        self.now = 0
        self.seq = 0
        self.heap = []
        self.cancelled = set()
        self.history = []

    def schedule(self, delay, tag):
        time_ns = self.now + delay
        seq = self.seq
        self.seq += 1
        heapq.heappush(self.heap, (time_ns, seq, tag))
        return seq

    def cancel(self, seq):
        self.cancelled.add(seq)

    def run(self):
        while self.heap:
            time_ns, seq, tag = heapq.heappop(self.heap)
            if seq in self.cancelled:
                self.cancelled.discard(seq)
                continue
            self.now = time_ns
            self.history.append((tag, time_ns, seq))


# One workload program: a list of operations interpreted in order.
#   ("soa", delay)      — side-calendar schedule (periodic-timer shape)
#   ("kind", delay)     — plain kind event
#   ("handle", delay)   — closure-handle event
#   ("cancel", k)       — cancel the k-th still-live scheduled entry
#   ("resched", k, d)   — cancel the k-th live entry, schedule a new soa
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("soa"), st.integers(0, 500)),
        st.tuples(st.just("kind"), st.integers(0, 500)),
        st.tuples(st.just("handle"), st.integers(0, 500)),
        st.tuples(st.just("cancel"), st.integers(0, 30)),
        st.tuples(st.just("resched"), st.integers(0, 30), st.integers(0, 500)),
    ),
    min_size=1,
    max_size=60,
)


def _run_engine(ops, batch_enabled):
    sim = Simulator()
    sim.batch_enabled = batch_enabled
    history = []
    soa_hid = sim.register_handler(
        lambda t, s: history.append(("soa", t, s)),
        batch=lambda ts, ss: history.extend(("soa", t, s) for t, s in zip(ts, ss)),
    )
    # Kind entries are scheduled through schedule_call with a one-slot
    # box as payload so the handler can report its own seq at fire time.
    kind_hid = sim.register_handler(
        lambda box: history.append(("kind", sim.now, box[0]))
    )
    live = []  # (seq, canceller) in schedule order

    def do_cancel(k):
        if live:
            seq, canceller = live.pop(k % len(live))
            canceller(seq)
            return True
        return False

    for op in ops:
        if op[0] == "soa":
            seq = sim.schedule_soa(op[1], soa_hid)
            live.append((seq, sim.cancel_kind))
        elif op[0] == "kind":
            box = [None]
            seq = sim.schedule_call(op[1], kind_hid, box)
            box[0] = seq
            live.append((seq, sim.cancel_kind))
        elif op[0] == "handle":
            handle = sim.schedule(
                op[1], lambda: history.append(("handle", sim.now))
            )
            live.append((handle, lambda h: h.cancel()))
        elif op[0] == "cancel":
            do_cancel(op[1])
        else:  # resched: cancel one, schedule a replacement
            do_cancel(op[1])
            seq = sim.schedule_soa(op[2], soa_hid)
            live.append((seq, sim.cancel_kind))
    sim.run()
    return history, sim.events_executed, sim.now


def _run_oracle(ops):
    oracle = _HeapqOracle()
    live = []
    cancelled_kind_seqs = set()

    def do_cancel(k):
        if live:
            seq = live.pop(k % len(live))
            oracle.cancel(seq)
            cancelled_kind_seqs.add(seq)

    for op in ops:
        if op[0] == "soa":
            live.append(oracle.schedule(op[1], "soa"))
        elif op[0] == "kind":
            live.append(oracle.schedule(op[1], "kind"))
        elif op[0] == "handle":
            live.append(oracle.schedule(op[1], "handle"))
        elif op[0] == "cancel":
            do_cancel(op[1])
        else:
            do_cancel(op[1])
            live.append(oracle.schedule(op[2], "soa"))
    oracle.run()
    return oracle.history, oracle.now


def _normalise(history):
    # Handle events carry no seq on the engine side; compare (tag, time)
    # there and (tag, time, seq) for kind/soa entries.
    return [
        (entry[0], entry[1]) if entry[0] == "handle" else entry
        for entry in history
    ]


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_batched_engine_matches_heapq_oracle(ops):
    batched, batched_n, batched_now = _run_engine(ops, batch_enabled=True)
    single, single_n, single_now = _run_engine(ops, batch_enabled=False)
    # Batch on/off: identical histories, counters and final clock.
    assert batched == single
    assert batched_n == single_n
    assert batched_now == single_now

    oracle_history, oracle_now = _run_oracle(ops)
    assert _normalise(batched) == _normalise(oracle_history)
    # The engine parks the clock where the last event ran; so does the
    # oracle (both leave now untouched when nothing fired).
    if oracle_history:
        assert batched_now == oracle_now


@given(
    periods=st.lists(st.integers(1, 50), min_size=1, max_size=8),
    population=st.integers(1, 20),
    horizon=st.integers(100, 2000),
)
@settings(max_examples=100, deadline=None)
def test_periodic_populations_match_oracle_under_horizon(
    periods, population, horizon
):
    """Self-re-arming timer populations — the SoA calendar's target shape —
    stay identical to the oracle across run horizons."""

    def engine_history(batch_enabled):
        sim = Simulator()
        sim.batch_enabled = batch_enabled
        history = []
        hids = []
        for index, period in enumerate(periods):

            def fire(t, s, index=index, period=period):
                history.append((index, t, s))
                if t + period <= horizon:
                    sim.schedule_soa(t + period - sim.now, hids[index])

            def fire_batch(ts, ss, index=index, period=period):
                for t, s in zip(ts, ss):
                    fire(t, s, index, period)

            hids.append(
                sim.register_handler(
                    fire, batch=fire_batch, batch_window_ns=period
                )
            )
        for index, period in enumerate(periods):
            for _ in range(population):
                sim.schedule_soa(period, hids[index])
        sim.run(until_ns=horizon)
        return history

    def oracle_history():
        oracle = _HeapqOracle()
        results = []

        def run():
            while oracle.heap and oracle.heap[0][0] <= horizon:
                time_ns, seq, tag = heapq.heappop(oracle.heap)
                oracle.now = time_ns
                index, period = tag
                results.append((index, time_ns, seq))
                if time_ns + period <= horizon:
                    oracle.schedule(period, tag)

        for index, period in enumerate(periods):
            for _ in range(population):
                oracle.schedule(period, (index, period))
        run()
        return results

    batched = engine_history(True)
    single = engine_history(False)
    reference = oracle_history()
    assert batched == single == reference
