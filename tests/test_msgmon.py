"""Unit tests for the message-API monitor (live against the kernel)."""

import pytest

from repro.apps import NotepadApp
from repro.core.msgmon import MessageApiMonitor
from repro.sim.timebase import ns_from_ms
from repro.winsys import WM, boot


@pytest.fixture
def monitored(nt40):
    app = NotepadApp(nt40)
    app.start(foreground=True)
    monitor = MessageApiMonitor(nt40, thread_name=app.name)
    monitor.attach()
    nt40.run_for(ns_from_ms(5))
    return nt40, app, monitor


class TestAttachment:
    def test_double_attach_rejected(self, monitored):
        _system, _app, monitor = monitored
        with pytest.raises(RuntimeError):
            monitor.attach()

    def test_detach_stops_recording(self, monitored):
        system, _app, monitor = monitored
        monitor.detach()
        count = len(monitor)
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(30))
        assert len(monitor) == count

    def test_thread_filter(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        monitor = MessageApiMonitor(nt40, thread_name="someone-else")
        monitor.attach()
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(30))
        assert len(monitor) == 0


class TestRecording:
    def test_keystroke_retrievals_logged(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(50))
        kinds = [
            record.message.kind
            for record in monitor.records
            if record.message is not None
        ]
        assert WM.KEYDOWN in kinds and WM.CHAR in kinds and WM.KEYUP in kinds

    def test_call_records_precede_returns(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(50))
        assert any(record.message is None for record in monitor.records)

    def test_records_between(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(50))
        t0 = monitor.records[0].time_ns
        t1 = monitor.records[-1].time_ns + 1
        assert monitor.records_between(t0, t1) == monitor.records
        assert monitor.records_between(t1, t1 + 100) == []

    def test_input_retrievals(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.post_queuesync()
        system.run_for(ns_from_ms(50))
        inputs = monitor.input_retrievals()
        assert all(record.message.from_input for record in inputs)
        assert len(inputs) == 3  # down/char/up, not queuesync

    def test_queuesync_spans(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(30))
        system.post_queuesync()
        system.run_for(ns_from_ms(30))
        spans = monitor.queuesync_spans(0, system.now)
        assert len(spans) == 1
        record, duration = spans[0]
        assert record.message.kind == WM.QUEUESYNC
        # NT 4.0 queuesync work is 60k cycles = 0.6 ms.
        assert 0.4e6 < duration < 2.0e6

    def test_next_call_after(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(50))
        first = monitor.records[0]
        following = monitor.next_call_after(first.time_ns)
        assert following is not None
        assert following.time_ns >= first.time_ns

    def test_clear(self, monitored):
        system, _app, monitor = monitored
        system.machine.keyboard.keystroke("a")
        system.run_for(ns_from_ms(30))
        monitor.clear()
        assert len(monitor) == 0
