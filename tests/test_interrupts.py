"""Unit tests for the interrupt controller and periodic clock."""

import pytest

from repro.sim.cpu import CPU
from repro.sim.engine import Simulator
from repro.sim.interrupts import InterruptController, PeriodicClock
from repro.sim.perf import PerfCounters
from repro.sim.work import HwEvent, Work


@pytest.fixture
def setup(sim):
    perf = PerfCounters(sim)
    cpu = CPU(sim, perf)
    controller = InterruptController(sim, cpu)
    return sim, perf, cpu, controller


class TestController:
    def test_unknown_vector_raises(self, setup):
        _sim, _perf, _cpu, controller = setup
        with pytest.raises(KeyError):
            controller.raise_interrupt("nope")

    def test_handler_runs_after_isr_duration(self, setup):
        sim, _perf, _cpu, controller = setup
        seen = []
        controller.register("kbd", Work(500), handler=lambda p: seen.append((p, sim.now)))
        controller.raise_interrupt("kbd", payload="x")
        sim.run()
        assert seen == [("x", 5_000)]  # 500 cycles = 5 us

    def test_interrupt_event_charged(self, setup):
        sim, perf, _cpu, controller = setup
        controller.register("kbd", Work(500))
        controller.raise_interrupt("kbd")
        assert perf.total(HwEvent.INTERRUPTS) == 1

    def test_isr_steals_from_running_work(self, setup):
        sim, _perf, cpu, controller = setup
        controller.register("kbd", Work(1_000))  # 10 us ISR
        done = []
        cpu.start(Work(100_000), "ctx", lambda c: done.append(sim.now))
        sim.run(until_ns=100)
        controller.raise_interrupt("kbd")
        sim.run()
        assert done == [1_010_000]

    def test_delivered_counts(self, setup):
        sim, _perf, _cpu, controller = setup
        controller.register("kbd", Work(10))
        controller.raise_interrupt("kbd")
        controller.raise_interrupt("kbd")
        assert controller.delivered["kbd"] == 2

    def test_set_handler_and_recost(self, setup):
        sim, _perf, _cpu, controller = setup
        controller.register("disk", Work(10))
        seen = []
        controller.set_handler("disk", lambda p: seen.append(p))
        controller.set_isr_work("disk", Work(2_000))
        controller.raise_interrupt("disk", payload=9)
        sim.run()
        assert seen == [9]
        with pytest.raises(KeyError):
            controller.set_handler("none", lambda p: None)


class TestPeriodicClock:
    def test_ticks_on_10ms_boundaries(self, setup):
        sim, _perf, _cpu, controller = setup
        clock = PeriodicClock(sim, controller)
        times = []
        controller.set_handler("clock", lambda tick: times.append(sim.now))
        clock.start()
        sim.run(until_ns=35_000_000)
        # Handler fires ISR-duration after each 10 ms boundary.
        assert len(times) == 3
        for time_ns, boundary in zip(times, (10_000_000, 20_000_000, 30_000_000)):
            assert 0 <= time_ns - boundary < 100_000

    def test_stop(self, setup):
        sim, _perf, _cpu, controller = setup
        clock = PeriodicClock(sim, controller)
        clock.start()
        sim.run(until_ns=25_000_000)
        clock.stop()
        sim.run(until_ns=100_000_000)
        assert clock.ticks == 2

    def test_start_idempotent(self, setup):
        sim, _perf, _cpu, controller = setup
        clock = PeriodicClock(sim, controller)
        clock.start()
        clock.start()
        sim.run(until_ns=10_500_000)
        assert clock.ticks == 1

    def test_interrupt_count_matches_ticks(self, setup):
        sim, perf, _cpu, controller = setup
        clock = PeriodicClock(sim, controller)
        clock.start()
        sim.run(until_ns=100_000_000)
        assert perf.total(HwEvent.INTERRUPTS) == clock.ticks == 10
