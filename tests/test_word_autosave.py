"""Unit tests for Word autosave (asynchronous background I/O)."""

import pytest

from repro.apps import WordApp
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot


class TestAutosave:
    def test_off_by_default(self, nt40):
        app = WordApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(3000))
        assert app.autosaves == 0
        assert nt40.machine.disk.requests_completed == 0

    def test_periodic_autosaves_write_to_disk(self, nt40):
        app = WordApp(nt40, autosave_period_s=0.5)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(2600))
        assert app.autosaves == 5
        assert nt40.machine.disk.requests_completed >= 5
        assert nt40.machine.disk.blocks_transferred >= 5 * 8  # 32 KB each

    def test_autosave_is_asynchronous(self, nt40):
        """No synchronous I/O wait is created (Figure 2's assumption)."""
        observed = []
        nt40.iomgr.add_sync_observer(observed.append)
        app = WordApp(nt40, autosave_period_s=0.3)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(1500))
        assert app.autosaves >= 3
        assert observed == []  # outstanding_sync never moved

    def test_autosave_does_not_inflate_keystroke_latency(self):
        def keystroke_busy(autosave):
            system = boot("nt40", seed=5)
            app = WordApp(
                system, autosave_period_s=10.0 if autosave else None
            )
            app.start(foreground=True)
            system.run_for(ns_from_ms(50))
            busy_before = system.machine.cpu.busy_ns
            system.machine.keyboard.keystroke("a")
            system.run_for(ns_from_ms(300))
            return system.machine.cpu.busy_ns - busy_before

        plain = keystroke_busy(False)
        with_autosave = keystroke_busy(True)
        # Identical within the autosave prep noise (< 1 ms).
        assert abs(plain - with_autosave) < ns_from_ms(1)
