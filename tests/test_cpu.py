"""Unit tests for the CPU execution model."""

import pytest

from repro.sim.cpu import CPU
from repro.sim.engine import SimulationError, Simulator
from repro.sim.perf import PerfCounters
from repro.sim.work import HwEvent, Work


@pytest.fixture
def cpu(sim):
    return CPU(sim, PerfCounters(sim))


class TestExecution:
    def test_completion_at_work_duration(self, sim, cpu):
        done = []
        cpu.start(Work(100_000), "ctx", lambda c: done.append((c, sim.now)))
        sim.run()
        assert done == [("ctx", 1_000_000)]  # 100k cycles = 1 ms

    def test_busy_flag(self, sim, cpu):
        cpu.start(Work(1000), "ctx", lambda c: None)
        assert cpu.busy
        assert cpu.current_context == "ctx"
        sim.run()
        assert not cpu.busy
        assert cpu.current_context is None

    def test_start_while_busy_raises(self, sim, cpu):
        cpu.start(Work(1000), "a", lambda c: None)
        with pytest.raises(SimulationError):
            cpu.start(Work(1000), "b", lambda c: None)

    def test_events_fully_charged_on_completion(self, sim, cpu):
        cpu.start(Work(1000, {HwEvent.ITLB_MISS: 40}), "ctx", lambda c: None)
        sim.run()
        assert cpu.perf.total(HwEvent.ITLB_MISS) == 40

    def test_busy_ns_accumulates(self, sim, cpu):
        cpu.start(Work(100_000), "ctx", lambda c: None)
        sim.run()
        assert cpu.busy_ns == 1_000_000


class TestPreemption:
    def test_preempt_returns_remainder(self, sim, cpu):
        cpu.start(Work(100_000), "ctx", lambda c: None)
        sim.run(until_ns=400_000)  # 40% through
        context, remaining = cpu.preempt()
        assert context == "ctx"
        assert remaining.cycles == 60_000

    def test_preempt_charges_pro_rata(self, sim, cpu):
        cpu.start(Work(100_000, {HwEvent.DTLB_MISS: 100}), "ctx", lambda c: None)
        sim.run(until_ns=500_000)
        _context, remaining = cpu.preempt()
        assert cpu.perf.total(HwEvent.DTLB_MISS) == 50
        assert remaining.events[HwEvent.DTLB_MISS] == 50

    def test_preempt_then_resume_total_is_exact(self, sim, cpu):
        done = []
        cpu.start(Work(100_000, {HwEvent.ITLB_MISS: 10}), "ctx", lambda c: done.append(sim.now))
        sim.run(until_ns=300_000)
        _context, remaining = cpu.preempt()
        # Resume 1 ms later.
        sim.run(until_ns=1_300_000)
        cpu.start(remaining, "ctx", lambda c: done.append(sim.now))
        sim.run()
        assert done == [2_000_000]  # 0.3 ms + 1 ms gap + 0.7 ms
        assert cpu.perf.total(HwEvent.ITLB_MISS) == 10
        assert cpu.busy_ns == 1_000_000

    def test_preempt_idle_raises(self, cpu):
        with pytest.raises(SimulationError):
            cpu.preempt()

    def test_cancelled_completion_never_fires(self, sim, cpu):
        done = []
        cpu.start(Work(1000), "ctx", lambda c: done.append(c))
        sim.run(until_ns=1)
        cpu.preempt()
        sim.run()
        assert done == []

    def test_abort_discards_remainder(self, sim, cpu):
        cpu.start(Work(10**9), "spin", lambda c: None)
        sim.run(until_ns=1_000_000)
        context = cpu.abort()
        assert context == "spin"
        assert not cpu.busy
        assert cpu.busy_ns == 1_000_000


class TestStealing:
    def test_steal_pushes_completion_back(self, sim, cpu):
        done = []
        cpu.start(Work(100_000), "ctx", lambda c: done.append(sim.now))
        sim.run(until_ns=200_000)
        cpu.steal(Work(40_000))  # 0.4 ms ISR
        sim.run()
        assert done == [1_400_000]

    def test_steal_charges_isr_events_immediately(self, sim, cpu):
        cpu.start(Work(100_000), "ctx", lambda c: None)
        sim.run(until_ns=100)
        cpu.steal(Work(400, {HwEvent.SEGMENT_LOADS: 4}))
        assert cpu.perf.total(HwEvent.SEGMENT_LOADS) == 4

    def test_steal_while_idle_returns_duration(self, sim, cpu):
        assert cpu.steal(Work(400)) == 4_000

    def test_multiple_steals_stack(self, sim, cpu):
        done = []
        cpu.start(Work(100_000), "ctx", lambda c: done.append(sim.now))
        sim.run(until_ns=100_000)
        cpu.steal(Work(10_000))
        sim.run(until_ns=300_000)
        cpu.steal(Work(10_000))
        sim.run()
        assert done == [1_200_000]

    def test_steal_counts_as_busy(self, sim, cpu):
        cpu.steal(Work(50_000))
        assert cpu.busy_ns == 500_000

    def test_preempt_after_steal_accounts_progress(self, sim, cpu):
        # Work starts at 0; ISR steals 0.1 ms at t=0.2 ms; preempt at 0.5 ms.
        cpu.start(Work(100_000), "ctx", lambda c: None)
        sim.run(until_ns=200_000)
        cpu.steal(Work(10_000))
        sim.run(until_ns=500_000)
        _context, remaining = cpu.preempt()
        # Progress = 0.5 ms elapsed - 0.1 ms stolen = 0.4 ms -> 40k cycles done.
        assert remaining.cycles == 60_000
