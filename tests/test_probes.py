"""Unit tests for the system-state probes."""

import pytest

from repro.apps import NotepadApp
from repro.core.probes import QueueProbe, SyncIoProbe, coverage_fraction, spans_overlap_ns
from repro.sim.timebase import ns_from_ms
from repro.winsys import SyncRead, boot


class TestSpanMath:
    def test_overlap_basic(self):
        spans = [(10, 20), (30, 40)]
        assert spans_overlap_ns(spans, 0, 50) == 20
        assert spans_overlap_ns(spans, 15, 35) == 10
        assert spans_overlap_ns(spans, 20, 30) == 0

    def test_overlap_empty_window(self):
        assert spans_overlap_ns([(0, 10)], 5, 5) == 0

    def test_coverage_fraction(self):
        assert coverage_fraction([(0, 50)], 0, 100) == pytest.approx(0.5)
        assert coverage_fraction([], 0, 100) == 0.0
        assert coverage_fraction([(0, 10)], 3, 3) == 0.0


class TestSyncIoProbe:
    def test_records_busy_spans(self, nt40):
        probe = SyncIoProbe(nt40)
        probe.attach()
        file = nt40.filesystem.create("f", 64 * 4096)

        def program():
            yield SyncRead(file, 0, 64 * 4096)

        nt40.spawn("reader", program())
        nt40.run_until_quiescent(max_ns=nt40.now + 10 * 10**9)
        spans = probe.busy_spans()
        assert len(spans) == 1
        start, end = spans[0]
        assert end - start > ns_from_ms(10)

    def test_no_io_no_spans(self, nt40):
        probe = SyncIoProbe(nt40)
        probe.attach()
        nt40.run_for(ns_from_ms(50))
        assert probe.busy_spans() == []

    def test_open_span_closed_at_query(self, nt40):
        probe = SyncIoProbe(nt40)
        probe.attach()
        file = nt40.filesystem.create("f", 256 * 4096)

        def program():
            yield SyncRead(file, 0, 256 * 4096)

        nt40.spawn("reader", program())
        nt40.run_for(ns_from_ms(10))  # still in flight
        spans = probe.busy_spans()
        assert len(spans) == 1
        assert spans[0][1] == nt40.now

    def test_double_attach_rejected(self, nt40):
        probe = SyncIoProbe(nt40)
        probe.attach()
        with pytest.raises(RuntimeError):
            probe.attach()


class TestQueueProbe:
    def test_records_nonempty_spans(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        probe = QueueProbe(nt40, app.thread)
        probe.attach()
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(100))
        spans = probe.nonempty_spans()
        assert len(spans) >= 1
        assert all(end > start for start, end in spans)

    def test_quiet_queue_no_spans(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        probe = QueueProbe(nt40, app.thread)
        probe.attach()
        nt40.run_for(ns_from_ms(50))
        assert probe.nonempty_spans() == []
