"""Unit tests for the idle-loop instrument."""

import pytest

from repro.core.idleloop import IdleLoopInstrument
from repro.sim.timebase import ns_from_ms
from repro.winsys import Compute, boot


class TestCalibration:
    def test_default_loop_is_one_ms(self, nt40):
        instrument = IdleLoopInstrument(nt40)
        assert instrument.loop_ns == ns_from_ms(1)
        # 1 ms at 100 MHz = 100k cycles of busy-wait.
        assert instrument.loop_work_cycles == 100_000

    def test_n_scales_with_loop_time(self, nt40):
        fine = IdleLoopInstrument(nt40, loop_ms=0.5)
        coarse = IdleLoopInstrument(nt40, loop_ms=2.0)
        assert coarse.n_iterations == 4 * fine.n_iterations

    def test_invalid_loop_rejected(self, nt40):
        with pytest.raises(ValueError):
            IdleLoopInstrument(nt40, loop_ms=0)


class TestSampling:
    def test_one_record_per_idle_ms(self, nt40):
        instrument = IdleLoopInstrument(nt40)
        instrument.install()
        nt40.run_for(ns_from_ms(100))
        # ~100 records in 100 idle ms (clock interrupts shave a few).
        assert 95 <= instrument.samples_collected <= 101

    def test_double_install_rejected(self, nt40):
        instrument = IdleLoopInstrument(nt40)
        instrument.install()
        with pytest.raises(RuntimeError):
            instrument.install()

    def test_busy_time_elongates_interval(self, nt40):
        instrument = IdleLoopInstrument(nt40)
        instrument.install()

        def burst():
            yield Compute(nt40.personality.app_work(500_000))  # 5 ms

        nt40.run_for(ns_from_ms(20))
        nt40.spawn("burst", burst())
        nt40.run_for(ns_from_ms(30))
        trace = instrument.trace()
        elongated = trace.elongated()
        assert len(elongated) == 1
        _start, _end, busy = elongated[0]
        assert busy == pytest.approx(5_000_000, rel=0.15)

    def test_starved_while_busy(self, nt40):
        """During a long event the instrument collects nothing."""
        instrument = IdleLoopInstrument(nt40)
        instrument.install()

        def long_burst():
            yield Compute(nt40.personality.app_work(5_000_000))  # 50 ms

        nt40.run_for(ns_from_ms(10))
        nt40.spawn("burst", long_burst())
        before = instrument.samples_collected
        nt40.run_for(ns_from_ms(40))
        assert instrument.samples_collected <= before + 1

    def test_reset_clears_buffer(self, nt40):
        instrument = IdleLoopInstrument(nt40)
        instrument.install()
        nt40.run_for(ns_from_ms(20))
        instrument.reset()
        assert instrument.samples_collected == 0

    def test_buffer_capacity_stops_collection(self, nt40):
        instrument = IdleLoopInstrument(nt40, buffer_capacity=10)
        instrument.install()
        nt40.run_for(ns_from_ms(100))
        assert instrument.samples_collected == 10

    def test_instrument_does_not_perturb_foreground(self):
        """The idle loop must not slow down normal work."""
        bare = boot("nt40", seed=1)
        done_bare = []
        bare.spawn("w", burst_program(bare, done_bare))
        bare.run_for(ns_from_ms(50))

        instrumented = boot("nt40", seed=1)
        IdleLoopInstrument(instrumented).install()
        done_inst = []
        instrumented.spawn("w", burst_program(instrumented, done_inst))
        instrumented.run_for(ns_from_ms(50))
        assert done_bare and done_inst
        assert abs(done_bare[0] - done_inst[0]) < ns_from_ms(1)


def burst_program(system, done):
    def program():
        yield Compute(system.personality.app_work(1_000_000))
        done.append(system.now)

    return program()
