"""Property-based tests for the remote transport's pure-data configs.

The serialization round-trips matter because link/transport configs
travel through manifests and cache variants: ``from_dict(to_dict(c))``
must reconstruct an identical config (and hence fingerprint) for every
representable value, not just the defaults.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.remote.link import DirectionConfig, LinkConfig
from repro.remote.transport import RtoEstimator, TransportConfig
from repro.sim.timebase import ns_from_ms

_ms = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)
_probability = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)

direction_configs = st.builds(
    DirectionConfig,
    bandwidth_kbps=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    delay_ms=_ms,
    jitter_ms=_ms,
    loss=_probability,
    reorder=_probability,
    reorder_ms=_ms,
)


@st.composite
def link_configs(draw):
    period = draw(st.floats(min_value=2.0, max_value=10_000.0, allow_nan=False))
    flapping = draw(st.booleans())
    return LinkConfig(
        name=draw(st.text(min_size=1, max_size=20)),
        up=draw(direction_configs),
        down=draw(direction_configs),
        flap_period_ms=period if flapping else 0.0,
        flap_down_ms=period / 2.0 if flapping else 0.0,
    )


@given(config=direction_configs)
@settings(max_examples=100)
def test_direction_config_round_trips(config):
    assert DirectionConfig.from_dict(config.to_dict()) == config


@given(config=link_configs())
@settings(max_examples=100)
def test_link_config_round_trips(config):
    restored = LinkConfig.from_dict(config.to_dict())
    assert restored == config
    assert restored.fingerprint() == config.fingerprint()


@given(
    retry_cap=st.integers(min_value=1, max_value=32),
    rto_ms=st.tuples(
        st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=500.0, max_value=5_000.0, allow_nan=False),
    ),
    prediction=st.booleans(),
    predict_base_miss=_probability,
    jitter_buffer_ms=_ms,
)
@settings(max_examples=100)
def test_transport_config_round_trips(
    retry_cap, rto_ms, prediction, predict_base_miss, jitter_buffer_ms
):
    config = TransportConfig(
        retry_cap=retry_cap,
        rto_min_ms=rto_ms[0],
        rto_max_ms=rto_ms[1],
        prediction=prediction,
        predict_base_miss=predict_base_miss,
        jitter_buffer_ms=jitter_buffer_ms,
    )
    restored = TransportConfig.from_dict(config.to_dict())
    assert restored == config
    assert restored.fingerprint() == config.fingerprint()


@given(
    samples=st.lists(
        st.integers(min_value=1, max_value=ns_from_ms(5_000)),
        max_size=50,
    ),
    timeouts=st.lists(st.integers(min_value=0, max_value=5), max_size=50),
)
@settings(max_examples=100)
def test_rto_always_within_clamp(samples, timeouts):
    """Whatever sample/timeout interleaving occurs, the RTO stays in
    ``[rto_min, rto_max]`` — the invariant the retransmission schedule's
    boundedness rests on."""
    config = TransportConfig()
    estimator = RtoEstimator(config)
    events = [("sample", s) for s in samples] + [
        ("timeout", None) for t in timeouts for _ in range(t)
    ]
    for kind, value in events:
        if kind == "sample":
            estimator.sample(value)
        else:
            estimator.on_timeout()
        assert ns_from_ms(config.rto_min_ms) <= estimator.rto_ns() <= ns_from_ms(
            config.rto_max_ms
        )
        assert 1 <= estimator.backoff <= 64
