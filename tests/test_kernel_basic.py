"""Unit tests for kernel syscall dispatch."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import (
    Compute,
    ExitThread,
    GetMessage,
    KillTimer,
    Message,
    PeekMessage,
    PostMessage,
    ReadCycleCounter,
    SetTimer,
    Sleep,
    SpawnThread,
    WM,
    YieldCpu,
    boot,
)
from repro.winsys.threads import ThreadState


def run_program(system, program, until_ms=1000):
    thread = system.spawn("test", program)
    system.run_for(ns_from_ms(until_ms))
    return thread


class TestCompute:
    def test_compute_takes_simulated_time(self, nt40):
        finished = []

        def program():
            yield Compute(nt40.personality.app_work(100_000))  # 1 ms
            finished.append(nt40.now)

        run_program(nt40, program())
        assert len(finished) == 1
        assert finished[0] >= ns_from_ms(1)

    def test_sequential_computes_accumulate(self, nt40):
        stamps = []

        def program():
            for _ in range(3):
                yield Compute(nt40.personality.app_work(100_000))
                stamps.append(nt40.now)

        run_program(nt40, program())
        assert len(stamps) == 3
        assert stamps[2] - stamps[0] >= ns_from_ms(2)

    def test_thread_finishes(self, nt40):
        def program():
            yield Compute(nt40.personality.app_work(1000))

        thread = run_program(nt40, program())
        assert thread.state == ThreadState.DONE


class TestMessaging:
    def test_getmessage_blocks_until_post(self, nt40):
        got = []

        def receiver():
            message = yield GetMessage()
            got.append((message.kind, nt40.now))

        thread = nt40.spawn("receiver", receiver())
        nt40.run_for(ns_from_ms(5))
        assert got == []
        assert thread.blocked
        nt40.kernel.post_message(thread, Message(WM.USER, payload=1))
        nt40.run_for(ns_from_ms(5))
        assert got and got[0][0] == WM.USER

    def test_getmessage_nonblocking_when_queued(self, nt40):
        got = []

        def receiver():
            message = yield GetMessage()
            got.append(message.payload)

        thread = nt40.spawn("receiver", receiver())
        nt40.kernel.post_message(thread, Message(WM.USER, payload="hi"))
        nt40.run_for(ns_from_ms(5))
        assert got == ["hi"]

    def test_peekmessage_returns_none_when_empty(self, nt40):
        results = []

        def program():
            results.append((yield PeekMessage()))

        run_program(nt40, program(), until_ms=10)
        assert results == [None]

    def test_peekmessage_remove_semantics(self, nt40):
        results = []

        def program():
            results.append((yield PeekMessage(remove=False)))
            results.append((yield PeekMessage(remove=True)))
            results.append((yield PeekMessage(remove=True)))

        thread = nt40.spawn("peeker", program())
        nt40.kernel.post_message(thread, Message(WM.USER, payload="only"))
        nt40.run_for(ns_from_ms(10))
        assert results[0].payload == "only"  # peeked, not removed
        assert results[1].payload == "only"  # removed
        assert results[2] is None

    def test_postmessage_between_threads(self, nt40):
        got = []

        def receiver():
            message = yield GetMessage()
            got.append(message.payload)

        receiver_thread = nt40.spawn("receiver", receiver())

        def sender():
            yield PostMessage(receiver_thread, Message(WM.USER, payload=42))

        nt40.spawn("sender", sender())
        nt40.run_for(ns_from_ms(10))
        assert got == [42]


class TestTimersAndSleep:
    def test_sleep_rounds_to_tick(self, nt40):
        woke = []

        def program():
            yield Sleep(ns_from_ms(3))
            woke.append(nt40.now)

        run_program(nt40, program(), until_ms=100)
        assert len(woke) == 1
        # Woken on a 10 ms boundary (plus dispatch epsilon).
        assert woke[0] % ns_from_ms(10) < ns_from_ms(1)

    def test_set_timer_posts_wm_timer(self, nt40):
        fired = []

        def program():
            yield SetTimer(timer_id=1, period_ns=ns_from_ms(20))
            for _ in range(3):
                message = yield GetMessage()
                if message.kind == WM.TIMER:
                    fired.append(nt40.now)
            yield KillTimer(timer_id=1)

        run_program(nt40, program(), until_ms=200)
        assert len(fired) == 3
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        for gap in gaps:
            assert abs(gap - ns_from_ms(20)) <= ns_from_ms(11)

    def test_kill_timer_stops_messages(self, nt40):
        count = [0]

        def program():
            yield SetTimer(timer_id=1, period_ns=ns_from_ms(10))
            message = yield GetMessage()
            assert message.kind == WM.TIMER
            count[0] += 1
            yield KillTimer(timer_id=1)
            message = yield GetMessage()  # blocks forever
            count[0] += 1

        thread = run_program(nt40, program(), until_ms=300)
        assert count[0] == 1
        assert thread.blocked


class TestMisc:
    def test_read_cycle_counter(self, nt40):
        values = []

        def program():
            values.append((yield ReadCycleCounter()))
            yield Compute(nt40.personality.app_work(100_000))
            values.append((yield ReadCycleCounter()))

        run_program(nt40, program())
        assert values[1] - values[0] >= 100_000

    def test_spawn_thread(self, nt40):
        child_ran = []

        def child():
            yield Compute(nt40.personality.app_work(1000))
            child_ran.append(True)

        def parent():
            thread = yield SpawnThread("child", child(), priority=8)
            assert thread.name == "child"
            yield Compute(nt40.personality.app_work(1000))

        run_program(nt40, parent())
        assert child_ran == [True]

    def test_exit_thread(self, nt40):
        after = []

        def program():
            yield ExitThread()
            after.append(True)  # pragma: no cover - must not run

        thread = run_program(nt40, program(), until_ms=10)
        assert thread.done
        assert after == []

    def test_yield_cpu_round_robins(self, nt40):
        order = []

        def worker(tag):
            for _ in range(3):
                yield Compute(nt40.personality.app_work(1000))
                order.append(tag)
                yield YieldCpu()

        nt40.spawn("a", worker("a"))
        nt40.spawn("b", worker("b"))
        nt40.run_for(ns_from_ms(50))
        assert order[:4] == ["a", "b", "a", "b"]
