"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_always_execute_in_nondecreasing_time_order(delays):
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=100)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = []
    for index, delay in enumerate(delays):
        handles.append(sim.schedule(delay, lambda i=index: fired.append(i)))
    cancelled = set()
    for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(index)
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
    horizon=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100)
def test_horizon_splits_execution_exactly(delays, horizon):
    sim = Simulator()
    early, late = [], []
    for delay in delays:
        sim.schedule(
            delay,
            lambda d=delay: (early if d <= horizon else late).append(d),
        )
    sim.run(until_ns=horizon)
    assert sorted(early) == sorted(d for d in delays if d <= horizon)
    assert late == []
    sim.run()
    assert sorted(late) == sorted(d for d in delays if d > horizon)


@given(seed_delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20))
@settings(max_examples=50)
def test_clock_never_goes_backwards(seed_delays):
    sim = Simulator()
    observed = []

    def chain(remaining):
        observed.append(sim.now)
        if remaining:
            sim.schedule(remaining[0], lambda: chain(remaining[1:]))

    sim.schedule(seed_delays[0], lambda: chain(seed_delays[1:]))
    sim.run()
    assert observed == sorted(observed)
