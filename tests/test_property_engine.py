"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_always_execute_in_nondecreasing_time_order(delays):
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=100)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = []
    for index, delay in enumerate(delays):
        handles.append(sim.schedule(delay, lambda i=index: fired.append(i)))
    cancelled = set()
    for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(index)
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


@given(
    delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
    horizon=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100)
def test_horizon_splits_execution_exactly(delays, horizon):
    sim = Simulator()
    early, late = [], []
    for delay in delays:
        sim.schedule(
            delay,
            lambda d=delay: (early if d <= horizon else late).append(d),
        )
    sim.run(until_ns=horizon)
    assert sorted(early) == sorted(d for d in delays if d <= horizon)
    assert late == []
    sim.run()
    assert sorted(late) == sorted(d for d in delays if d > horizon)


@given(seed_delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20))
@settings(max_examples=50)
def test_clock_never_goes_backwards(seed_delays):
    sim = Simulator()
    observed = []

    def chain(remaining):
        observed.append(sim.now)
        if remaining:
            sim.schedule(remaining[0], lambda: chain(remaining[1:]))

    sim.schedule(seed_delays[0], lambda: chain(seed_delays[1:]))
    sim.run()
    assert observed == sorted(observed)


class _ReferenceCalendar:
    """Naive, compaction-free model of the event calendar: a sorted list
    of (time, seq) keys, with cancellation by removal."""

    def __init__(self):
        self.now = 0
        self.seq = 0
        self.entries = []

    def schedule(self, delay, token):
        key = (self.now + delay, self.seq)
        self.seq += 1
        self.entries.append((key, token))
        return key

    def cancel(self, key):
        self.entries = [item for item in self.entries if item[0] != key]

    def run(self):
        fired = []
        while self.entries:
            self.entries.sort(key=lambda item: item[0])
            (time, _), token = self.entries.pop(0)
            self.now = time
            fired.append(token)
        return fired


@given(
    delays=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=64, max_size=200
    ),
    data=st.data(),
)
@settings(max_examples=50)
def test_compacting_simulator_matches_reference(delays, data):
    """Random schedules + random cancellations: the compacting heap must
    fire exactly the events the naive sorted-list calendar fires, in the
    same order — compaction is invisible."""
    cancel_mask = data.draw(
        st.lists(
            st.booleans(), min_size=len(delays), max_size=len(delays)
        )
    )
    sim = Simulator()
    fired = []
    handles = []
    reference = _ReferenceCalendar()
    ref_keys = []
    for index, delay in enumerate(delays):
        handles.append(sim.schedule(delay, lambda i=index: fired.append(i)))
        ref_keys.append(reference.schedule(delay, index))
    for index, cancel in enumerate(cancel_mask):
        if cancel:
            handles[index].cancel()
            reference.cancel(ref_keys[index])
    sim.run()
    assert fired == reference.run()
    assert sim.pending_count() == 0


@given(
    step=st.integers(min_value=1, max_value=500),
    next_event=st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=200)
def test_fast_forward_budget_lands_strictly_before_next_event(step, next_event):
    sim = Simulator()
    sim.schedule(next_event, lambda: None)
    budget = sim.fast_forward_budget(step)
    assert budget >= 0
    if budget:
        # The largest admissible jump still leaves the event in the future,
        sim.fast_forward(budget * step, events=budget)
        assert sim.now < next_event
        # and one more segment would reach or cross it.
        assert sim.now + step >= next_event
