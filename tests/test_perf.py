"""Unit tests for the Pentium-style performance counters."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.perf import CounterAccessError, PerfCounters
from repro.sim.work import HwEvent


@pytest.fixture
def perf(sim):
    return PerfCounters(sim)


class TestCycleCounter:
    def test_free_runs_with_time(self, sim, perf):
        assert perf.read_cycle_counter() == 0
        sim.schedule(1_000, lambda: None)  # 1 us
        sim.run()
        assert perf.read_cycle_counter() == 100  # 100 cycles at 100 MHz

    def test_user_mode_readable(self, sim, perf):
        # RDTSC needs no privilege; simply no exception path exists.
        assert perf.read_cycle_counter() == 0


class TestEventCounters:
    def test_charge_and_read(self, perf):
        perf.configure(HwEvent.ITLB_MISS, HwEvent.SEGMENT_LOADS)
        perf.charge(HwEvent.ITLB_MISS, 5)
        perf.charge(HwEvent.SEGMENT_LOADS, 7)
        assert perf.read_event_counter(0) == 5
        assert perf.read_event_counter(1) == 7

    def test_unconfigured_counter_reads_zero(self, perf):
        perf.charge(HwEvent.ITLB_MISS, 5)
        assert perf.read_event_counter(0) == 0

    def test_only_two_counters(self, perf):
        with pytest.raises(ValueError):
            perf.read_event_counter(2)

    def test_system_mode_required_for_configure(self, perf):
        with pytest.raises(CounterAccessError):
            perf.configure(HwEvent.ITLB_MISS, system_mode=False)

    def test_system_mode_required_for_read(self, perf):
        with pytest.raises(CounterAccessError):
            perf.read_event_counter(0, system_mode=False)

    def test_40_bit_wrap(self, perf):
        perf.configure(HwEvent.DTLB_MISS)
        perf.charge(HwEvent.DTLB_MISS, (1 << 40) + 3)
        assert perf.read_event_counter(0) == 3

    def test_reconfigure_keeps_internal_tally(self, perf):
        perf.charge(HwEvent.ITLB_MISS, 9)
        perf.configure(HwEvent.ITLB_MISS)
        assert perf.read_event_counter(0) == 9


class TestFractionalCharging:
    def test_residual_accumulates(self, perf):
        for _ in range(10):
            perf.charge(HwEvent.UNALIGNED_ACCESS, 0.25)
        assert perf.total(HwEvent.UNALIGNED_ACCESS) == 2

    def test_charge_events_with_fraction(self, perf):
        perf.charge_events({HwEvent.ITLB_MISS: 100}, fraction=0.5)
        assert perf.total(HwEvent.ITLB_MISS) == 50

    def test_exact_total_over_many_fractions(self, perf):
        # 1000 charges of 1/3 each must sum to ~333, not drift to 0.
        for _ in range(1000):
            perf.charge(HwEvent.DATA_REFS, 1 / 3)
        assert perf.total(HwEvent.DATA_REFS) in (333, 334)


class TestSnapshot:
    def test_snapshot_includes_cycles(self, sim, perf):
        snap = perf.snapshot()
        assert snap.cycles == 0
        assert HwEvent.ITLB_MISS in snap

    def test_snapshot_is_copy(self, perf):
        snap = perf.snapshot()
        perf.charge(HwEvent.ITLB_MISS, 5)
        assert snap[HwEvent.ITLB_MISS] == 0
