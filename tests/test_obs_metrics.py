"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    merge_snapshots,
    prometheus_text,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc_per_label_set(self):
        counter = Counter("c")
        counter.inc(os="nt40")
        counter.inc(2, os="nt40")
        counter.inc(os="win95")
        assert counter.value(os="nt40") == 3
        assert counter.value(os="win95") == 1
        assert counter.value(os="nt351") == 0

    def test_label_order_irrelevant(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_high_water(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set_max(3)
        assert gauge.value() == 5
        gauge.set_max(9)
        assert gauge.value() == 9

    def test_add(self):
        gauge = Gauge("g")
        gauge.add(2)
        gauge.add(-0.5)
        assert gauge.value() == 1.5


class TestHistogram:
    def test_bucketing_cumulative_in_samples(self):
        hist = Histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        (sample,) = hist.samples()
        assert sample["counts"] == [2, 1, 1]  # <=1, <=5, +Inf
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(104.2)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help c").inc(os="nt40")
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["c"]["help"] == "help c"
        assert snap["counters"]["c"]["samples"] == [
            {"labels": {"os": "nt40"}, "value": 1.0}
        ]
        assert snap["histograms"]["h"]["buckets"] == [1.0]

    def test_null_registry_is_free(self):
        metric = NULL_REGISTRY.counter("anything")
        metric.inc(5, os="nt40")
        assert metric.value() == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMerge:
    def _snap(self, count, high):
        registry = MetricsRegistry()
        registry.counter("c").inc(count, os="nt40")
        registry.gauge("g").set(high)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        return registry.snapshot()

    def test_counters_sum_gauges_max_histograms_sum(self):
        merged = merge_snapshots([self._snap(2, 7), self._snap(3, 4), None])
        (c_sample,) = merged["counters"]["c"]["samples"]
        assert c_sample["value"] == 5
        (g_sample,) = merged["gauges"]["g"]["samples"]
        assert g_sample["value"] == 7
        (h_sample,) = merged["histograms"]["h"]["samples"]
        assert h_sample["counts"] == [2, 0]
        assert h_sample["count"] == 2

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs run.").inc(3, status="ok")
        registry.gauge("depth").set(2.5)
        registry.histogram("wall", buckets=(1.0,)).observe(0.5)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="ok"} 3' in text
        assert "depth 2.5" in text
        assert 'wall_bucket{le="1.0"} 1' in text
        assert 'wall_bucket{le="+Inf"} 1' in text
        assert "wall_sum 0.5" in text
        assert "wall_count 1" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(name='a"b\\c')
        text = prometheus_text(registry.snapshot())
        assert r'name="a\"b\\c"' in text
