"""Property-based tests for the buffer cache and file system."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.winsys.filesystem import BufferCache, FileSystem


@given(
    capacity=st.integers(min_value=1, max_value=64),
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "probe"]),
            st.lists(st.integers(min_value=0, max_value=200), max_size=20),
        ),
        max_size=40,
    ),
)
@settings(max_examples=100)
def test_cache_never_exceeds_capacity(capacity, operations):
    cache = BufferCache(capacity)
    for action, blocks in operations:
        if action == "insert":
            cache.insert(blocks)
        else:
            cache.probe(blocks)
        assert len(cache) <= capacity


@given(
    capacity=st.integers(min_value=1, max_value=64),
    blocks=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
)
@settings(max_examples=100)
def test_recently_inserted_blocks_present(capacity, blocks):
    """The last min(capacity, distinct) inserted blocks must be cached."""
    cache = BufferCache(capacity)
    cache.insert(blocks)
    recent = []
    for block in reversed(blocks):
        if block not in recent:
            recent.append(block)
        if len(recent) == capacity:
            break
    for block in recent:
        assert block in cache


@given(
    capacity=st.integers(min_value=1, max_value=32),
    probes=st.lists(
        st.lists(st.integers(min_value=0, max_value=50), max_size=10), max_size=20
    ),
)
@settings(max_examples=100)
def test_hits_plus_misses_equals_probes(capacity, probes):
    cache = BufferCache(capacity)
    total = 0
    for blocks in probes:
        hits, misses = cache.probe(blocks)
        assert len(hits) + len(misses) == len(blocks)
        cache.insert(misses)
        total += len(blocks)
    assert cache.hits + cache.misses == total


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20),
    kind=st.sampled_from(["ntfs", "fat"]),
)
@settings(max_examples=100)
def test_filesystem_files_never_overlap(sizes, kind):
    fs = FileSystem(total_blocks=500_000, kind=kind)
    seen = set()
    for index, size_blocks in enumerate(sizes):
        file = fs.create(f"f{index}", size_blocks * 4096)
        blocks = set(file.blocks(0, file.size_bytes, 4096))
        assert len(blocks) == size_blocks
        assert not blocks & seen
        seen |= blocks


@given(
    size_blocks=st.integers(min_value=1, max_value=64),
    kind=st.sampled_from(["ntfs", "fat"]),
    data=st.data(),
)
@settings(max_examples=100)
def test_block_lookup_consistent_with_full_read(size_blocks, kind, data):
    fs = FileSystem(total_blocks=100_000, kind=kind)
    file = fs.create("f", size_blocks * 4096)
    full = file.blocks(0, file.size_bytes, 4096)
    offset = data.draw(st.integers(min_value=0, max_value=file.size_bytes - 1))
    length = data.draw(st.integers(min_value=1, max_value=file.size_bytes - offset))
    partial = file.blocks(offset, length, 4096)
    first = offset // 4096
    assert partial == full[first : first + len(partial)]
