"""Unit tests for the MS Test and typist drivers."""

import pytest

from repro.apps import NotepadApp
from repro.sim.timebase import ns_from_ms
from repro.winsys import WM, boot
from repro.workload.mstest import MsTestDriver
from repro.workload.script import Click, Command, InputScript, Key, Mark, Pause, WaitIdle
from repro.workload.typist import TypistDriver, TypistModel, humanize_script


def app_on(system):
    app = NotepadApp(system)
    app.start(foreground=True)
    system.run_for(ns_from_ms(5))
    return app


class TestMsTestDriver:
    def test_plays_keys_in_order(self, nt40):
        app = app_on(nt40)
        driver = MsTestDriver(
            nt40, InputScript([Key("a"), Key("b")]), queuesync=False,
            default_pause_ms=50.0,
        )
        driver.run_to_completion()
        assert app.keystrokes >= 2
        assert driver.finished
        assert driver.events_injected == 2

    def test_marks_recorded_with_times(self, nt40):
        app_on(nt40)
        driver = MsTestDriver(
            nt40,
            InputScript([Mark("one"), Key("a"), Mark("two"), Key("b")]),
            queuesync=False,
        )
        driver.run_to_completion()
        labels = [label for label, _t in driver.marks]
        assert labels == ["one", "two"]
        assert driver.marks[1][1] > driver.marks[0][1]

    def test_pause_delays_next_action(self, nt40):
        app_on(nt40)
        driver = MsTestDriver(
            nt40,
            InputScript([Key("a"), Pause(500.0), Mark("after"), Key("b")]),
            queuesync=False,
            default_pause_ms=10.0,
        )
        driver.run_to_completion()
        marks = dict(driver.marks)
        assert marks["after"] >= ns_from_ms(500)

    def test_queuesync_posted_after_each_event(self, nt40):
        app = app_on(nt40)
        seen = []
        nt40.hooks.register(
            "GetMessage",
            lambda r: seen.append(r.message.kind) if r.message else None,
        )
        driver = MsTestDriver(nt40, InputScript([Key("a")]), queuesync=True)
        driver.run_to_completion()
        assert WM.QUEUESYNC in seen

    def test_no_queuesync_when_disabled(self, nt40):
        app_on(nt40)
        seen = []
        nt40.hooks.register(
            "GetMessage",
            lambda r: seen.append(r.message.kind) if r.message else None,
        )
        MsTestDriver(nt40, InputScript([Key("a")]), queuesync=False).run_to_completion()
        assert WM.QUEUESYNC not in seen

    def test_wait_idle_blocks_until_quiescent(self, nt40):
        app_on(nt40)
        driver = MsTestDriver(
            nt40,
            InputScript([Key("a"), WaitIdle(timeout_ms=5000), Mark("idle")]),
            queuesync=False,
        )
        driver.run_to_completion()
        assert dict(driver.marks)["idle"] > 0

    def test_command_action(self, nt40):
        got = []

        class CommandApp(NotepadApp):
            def on_command(self, command):
                got.append(command)
                yield self.app_compute(1000)

        app = CommandApp(nt40)
        app.start(foreground=True)
        nt40.run_for(ns_from_ms(5))
        MsTestDriver(
            nt40, InputScript([Command("hello")]), queuesync=False
        ).run_to_completion()
        assert got == ["hello"]

    def test_click_action(self, nt40):
        app_on(nt40)
        driver = MsTestDriver(
            nt40, InputScript([Click(hold_ms=30.0)]), queuesync=False
        )
        driver.run_to_completion()
        assert nt40.machine.mouse.events_raised == 3  # move + down + up

    def test_timeout_raises(self, nt40):
        app_on(nt40)
        driver = MsTestDriver(
            nt40, InputScript([Key("a")] * 100), default_pause_ms=500.0,
            queuesync=False,
        )
        with pytest.raises(TimeoutError):
            driver.run_to_completion(max_seconds=0.2)

    def test_unknown_action_rejected(self, nt40):
        app_on(nt40)
        driver = MsTestDriver(nt40, InputScript(["bogus"]), queuesync=False)
        driver.start(nt40.now + 1000)
        with pytest.raises(TypeError):
            nt40.run_for(ns_from_ms(10))


class TestTypistModel:
    def test_min_keystroke_floor(self):
        import random

        model = TypistModel(random.Random(0), wpm=500)
        assert model.base_gap_ms == 120.0  # Shneiderman's floor

    def test_gap_longer_after_sentence(self):
        import random

        model = TypistModel(random.Random(0))
        normal = sum(model.gap_after_ms("a") for _ in range(50)) / 50
        sentence = sum(model.gap_after_ms(".") for _ in range(50)) / 50
        assert sentence > normal + 500

    def test_paragraph_pause_longest(self):
        import random

        model = TypistModel(random.Random(0))
        enter = sum(model.gap_after_ms("Enter") for _ in range(50)) / 50
        sentence = sum(model.gap_after_ms(".") for _ in range(50)) / 50
        assert enter > sentence

    def test_typo_model(self):
        import random

        model = TypistModel(random.Random(0), typo_rate=1.0)
        wrong = model.maybe_typo("a")
        assert wrong is not None and wrong != "a" and wrong.isalpha()
        assert model.maybe_typo("Enter") is None

    def test_humanize_inserts_corrections(self):
        import random

        from repro.workload.script import InputScript, Key

        model = TypistModel(random.Random(0), typo_rate=1.0)
        script = humanize_script(InputScript([Key("a")]), model)
        keys = [action.key for action in script]
        assert keys == [script[0].key, "Backspace", "a"]

    def test_wpm_validation(self):
        import random

        with pytest.raises(ValueError):
            TypistModel(random.Random(0), wpm=0)


class TestTypistDriver:
    def test_slower_than_mstest(self, nt40):
        app_on(nt40)
        script = InputScript([Key("a") for _ in range(10)])
        driver = TypistDriver(nt40, script)
        start = nt40.now
        driver.run_to_completion()
        elapsed = nt40.now - start
        # 10 keystrokes at >= 120 ms each.
        assert elapsed >= ns_from_ms(10 * 120)

    def test_no_queuesync(self, nt40):
        app_on(nt40)
        seen = []
        nt40.hooks.register(
            "GetMessage",
            lambda r: seen.append(r.message.kind) if r.message else None,
        )
        TypistDriver(nt40, InputScript([Key("a")])).run_to_completion()
        assert WM.QUEUESYNC not in seen

    def test_deterministic_given_seed(self):
        from repro.winsys import boot

        def run_once():
            system = boot("nt40", seed=3)
            app_on(system)
            driver = TypistDriver(system, InputScript([Key(c) for c in "hello world"]))
            driver.run_to_completion()
            return system.now

        assert run_once() == run_once()
