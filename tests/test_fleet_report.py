"""Tests for fleet reporting, the ext-fleet experiment and the CLI.

Covers: ``fleet_data``/``capacity_plan``/``render_fleet_report``, the
``manifest_fleet_summary`` record the runner embeds, the
``fleet-report`` CLI verb, and the ``stats`` subcommand's fleet block
(including graceful degradation on pre-fleet manifests).
"""

import json
import math

import pytest

from repro.core.serialize import save_json
from repro.fleet.population import PopulationConfig
from repro.fleet.report import (
    capacity_plan,
    fleet_data,
    fleet_report_main,
    manifest_fleet_summary,
    render_fleet_report,
)
from repro.fleet.shards import run_fleet

CONFIG = PopulationConfig(seed=0, size=10, chars_range=(3, 5))


@pytest.fixture(scope="module")
def fleet():
    return run_fleet(CONFIG, shards=1, batch_size=4)


@pytest.fixture(scope="module")
def fleet_section(fleet):
    return fleet_data(fleet)


def test_fleet_data_is_json_safe_and_complete(fleet, fleet_section):
    round_tripped = json.loads(json.dumps(fleet_section))
    assert round_tripped["provenance"]["merged_digest"] == fleet.digest
    assert round_tripped["provenance"]["sessions"] == CONFIG.size
    assert round_tripped["groups"]
    for group in round_tripped["groups"].values():
        assert {"os", "scenario", "sessions", "wait", "span", "stages"} <= set(
            group
        )
    assert round_tripped["aggregate"]["kind"] == "fleet-aggregate"


def test_capacity_plan_math():
    section = {
        "provenance": {"shards": 2},
        "groups": {
            "nt40/healthy": {
                "sessions": 4,
                "wait": {"p95_ms": 10.0},
                "span": {"p95_ms": 2000.0},
                "stages": {
                    "session_span": {"sum_ms": 8000.0},
                    "keystroke_wait": {"sum_ms": 30.0},
                    "other_event_wait": {"sum_ms": 10.0},
                },
            },
        },
    }
    (row,) = capacity_plan(section, budget_hours=1.0)
    assert row["p95_span_s"] == 2.0
    assert row["sessions_per_shard"] == math.floor(3600 / 2.0)
    assert row["max_concurrent_sessions"] == row["sessions_per_shard"] * 2
    assert row["wait_share"] == pytest.approx(40.0 / 8000.0)
    with pytest.raises(ValueError):
        capacity_plan(section, budget_hours=0)


def test_render_fleet_report(fleet, fleet_section):
    text = render_fleet_report(fleet_section, budget_hours=2.0)
    assert fleet.digest in text
    assert "fleet wait time per event" in text
    assert "sketch rel. err" in text
    assert "capacity plan: 2h shard budget" in text
    assert "commutative-bucket-add" in text


def test_manifest_fleet_summary_is_condensed(fleet, fleet_section):
    summary = manifest_fleet_summary(fleet_section)
    assert "aggregate" not in summary  # raw sketches stay in the archive
    assert summary["merged_digest"] == fleet.digest
    assert summary["sessions"] == CONFIG.size
    for group in summary["groups"].values():
        assert {"sessions", "events", "p50_ms", "p95_ms", "p999_ms"} <= set(
            group
        )


def test_fleet_report_cli_on_payload(tmp_path, capsys, fleet_section):
    payload = tmp_path / "ext-fleet-seed0.json"
    save_json({"id": "ext-fleet", "data": {"fleet": fleet_section}}, payload)
    assert fleet_report_main([str(payload)]) == 0
    out = capsys.readouterr().out
    assert "capacity plan" in out
    assert fleet_section["provenance"]["merged_digest"] in out


def test_fleet_report_cli_on_manifest_dir(tmp_path, capsys, fleet_section):
    save_json(
        {"id": "ext-fleet", "data": {"fleet": fleet_section}},
        tmp_path / "ext-fleet-seed0.json",
    )
    save_json(
        {
            "kind": "run-manifest",
            "experiments": [
                {"id": "ext-fleet", "seed": 0, "saved": "ext-fleet-seed0.json"},
                {"id": "fig1", "seed": 0, "saved": None},
            ],
        },
        tmp_path / "manifest.json",
    )
    assert fleet_report_main([str(tmp_path)]) == 0
    assert "fleet wait time" in capsys.readouterr().out


def test_fleet_report_cli_errors(tmp_path, capsys):
    assert fleet_report_main([str(tmp_path / "missing.json")]) == 2
    empty = tmp_path / "empty.json"
    save_json({"kind": "run-manifest", "experiments": []}, empty)
    assert fleet_report_main([str(empty)]) == 2
    assert fleet_report_main([str(empty), "--budget-hours", "-1"]) == 2


def test_runner_dispatches_fleet_report_verb(tmp_path, capsys, fleet_section):
    from repro.experiments.runner import main

    payload = tmp_path / "payload.json"
    save_json({"data": {"fleet": fleet_section}}, payload)
    assert main(["fleet-report", str(payload)]) == 0
    assert "capacity plan" in capsys.readouterr().out


def test_entry_from_job_surfaces_fleet_summary(fleet_section):
    from repro.experiments.parallel import JobResult
    from repro.experiments.runner import _entry_from_job

    job = JobResult(
        experiment_id="ext-fleet",
        seed=0,
        payload={"id": "ext-fleet", "data": {"fleet": fleet_section}},
    )
    entry = _entry_from_job(job, saved=None)
    assert entry["fleet"]["merged_digest"] == (
        fleet_section["provenance"]["merged_digest"]
    )
    plain = _entry_from_job(JobResult(experiment_id="fig1", seed=0), None)
    assert "fleet" not in plain


def test_stats_renders_fleet_block(fleet_section):
    from repro.experiments.stats import render_stats

    entry = {
        "id": "ext-fleet",
        "seed": 0,
        "wall_s": 1.0,
        "cache_hit": False,
        "failed_checks": [],
        "error": None,
        "fleet": manifest_fleet_summary(fleet_section),
    }
    manifest = {"experiments": [entry], "jobs": 1, "code_version": "deadbeef"}
    text = render_stats(manifest)
    assert "fleet ext-fleet (seed 0)" in text
    assert fleet_section["provenance"]["merged_digest"] in text
    assert "merged wait-time sketches" in text
    assert "shard utilization" in text


def test_stats_degrades_on_pre_fleet_manifests():
    from repro.experiments.stats import render_stats

    manifest = {
        "experiments": [
            {"id": "fig1", "seed": 0, "wall_s": 1.0, "cache_hit": True,
             "failed_checks": [], "error": None},
        ],
        "jobs": 1,
        "code_version": "deadbeef",
    }
    text = render_stats(manifest)
    assert "fleet" not in text
    assert "fig1" in text


def test_ext_fleet_experiment_checks_pass_small():
    from repro.experiments import run_experiment

    result = run_experiment(
        "ext-fleet", seed=0, sessions=30, shards=1, batch_size=8,
        sub_sessions=16,
    )
    assert not result.failed_checks(), result.failed_checks()
    data = result.data
    assert data["fleet"]["provenance"]["sessions"] == 30
    determinism = data["determinism"]
    assert (
        determinism["natural_digest"]
        == determinism["permuted_digest"]
        == determinism["unbatched_digest"]
    )
    assert all(row["rel_err"] <= row["bound"] + 1e-9 for row in data["accuracy"])
    assert data["capacity"], "capacity plan must not be empty"
