"""Tests for the documentation linter (``repro.docscheck``).

The linter itself is a CI gate (``make docs-check``), so its failure
modes need pinning: a stale anchor must fail, a link-target anchor
must never be mistaken for a CLI flag, and the live repo must lint
clean.
"""

from pathlib import Path

from repro.docscheck import (
    check_index_coverage,
    check_links,
    github_slug,
    harvest_cli_flags,
    lint_docs,
    main,
)
from repro.docscheck import _doc_flags

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_github_slug_matches_github_rules():
    assert github_slug("Running the experiments") == "running-the-experiments"
    # Backticks vanish, punctuation vanishes, spaces become hyphens —
    # so flag-listing headings get real double hyphens.
    assert github_slug(
        "Hardening: `--timeout`, `--retries`, `--resume`"
    ) == "hardening---timeout---retries---resume"
    assert github_slug("Seeds: `--seed N[,N...]`") == "seeds---seed-nn"


def _write(path, text):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def test_check_links_catches_breakage(tmp_path):
    _write(tmp_path / "README.md", "see [docs](docs/a.md#real-heading)\n")
    _write(tmp_path / "docs" / "a.md", "# Real heading\n[gone](missing.md)\n")
    problems = check_links(
        tmp_path, [tmp_path / "README.md", tmp_path / "docs" / "a.md"]
    )
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_check_links_catches_stale_anchor(tmp_path):
    _write(tmp_path / "README.md", "see [a](docs/a.md#no-such-heading)\n")
    _write(tmp_path / "docs" / "a.md", "# Only heading\n")
    (problem,) = check_links(tmp_path, [tmp_path / "README.md"])
    assert "stale anchor" in problem


def test_external_links_and_code_blocks_ignored(tmp_path):
    _write(
        tmp_path / "README.md",
        "[x](https://example.com/gone)\n"
        "```\n[not a link](nowhere.md)\n```\n",
    )
    assert check_links(tmp_path, [tmp_path / "README.md"]) == []


def test_doc_flags_only_from_code_never_from_anchors():
    text = (
        "Use `--jobs 4` here.\n"
        "```console\n$ run --save out/\n```\n"
        "See [doc](other.md#hardening---timeout---retries---resume)\n"
        "prose --not-a-code-mention\n"
    )
    assert _doc_flags(text) == {"--jobs", "--save"}


def test_harvest_covers_every_cli():
    flags = harvest_cli_flags()
    # One representative flag per CLI surface.
    assert {"--jobs", "--seed", "--budget-hours", "--windows",
            "--baseline", "--update"} <= flags


def test_index_coverage(tmp_path):
    _write(tmp_path / "docs" / "a.md", "# A\n")
    _write(tmp_path / "docs" / "index.md", "[a](a.md)\n")
    assert check_index_coverage(tmp_path) == []
    _write(tmp_path / "docs" / "b.md", "# B\n")
    (problem,) = check_index_coverage(tmp_path)
    assert "docs/b.md" in problem


def test_live_repo_lints_clean(capsys):
    results = lint_docs(REPO_ROOT)
    assert results == {"links": [], "flags": [], "index": []}, results
    assert main([str(REPO_ROOT)]) == 0
    assert "docs-check ok" in capsys.readouterr().out
