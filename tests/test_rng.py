"""Unit tests for the named RNG streams."""

from repro.sim.rng import RngStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("typist")
        b = RngStreams(7).stream("typist")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        streams = RngStreams(7)
        a = streams.stream("typist")
        b = streams.stream("disk")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert a.random() != b.random()

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_creation_order_does_not_matter(self):
        """Adding a new consumer must not perturb existing streams."""
        first = RngStreams(3)
        draw_direct = first.stream("word").random()

        second = RngStreams(3)
        second.stream("some-new-consumer").random()
        second.stream("another").random()
        assert second.stream("word").random() == draw_direct

    def test_fork_is_disjoint(self):
        parent = RngStreams(5)
        child = parent.fork("subsystem")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RngStreams(5).fork("sub").stream("x").random()
        b = RngStreams(5).fork("sub").stream("x").random()
        assert a == b
