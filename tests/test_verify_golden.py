"""Golden-trace regression: digests, drift detection, the CLI flow."""

from __future__ import annotations

import json

import pytest

from repro.core.serialize import experiment_to_dict
from repro.experiments.registry import run_experiment
from repro.verify import golden


def test_canonical_json_is_order_independent():
    a = golden.canonical_json({"b": 1, "a": [1, 2]})
    b = golden.canonical_json({"a": [1, 2], "b": 1})
    assert a == b
    assert golden.payload_digest({"b": 1, "a": [1, 2]}) == golden.payload_digest(
        {"a": [1, 2], "b": 1}
    )


def test_digest_is_content_addressed():
    assert golden.payload_digest({"x": 1}) != golden.payload_digest({"x": 2})
    assert golden.payload_digest({"x": 1}).startswith("sha256:")


def test_committed_golden_records_match_current_code():
    """The in-repo records are the regression gate: any semantic drift
    in the simulator or analysis stack shows up here."""
    for entry in golden.check_golden():
        assert entry["status"] == "matched", entry


def test_update_then_check_roundtrip(tmp_path):
    pairs = [("fig4", 0)]
    written = golden.update_golden(pairs, directory=tmp_path)
    assert [p.name for p in written] == ["fig4-seed0.json"]
    record = json.loads(written[0].read_text())
    assert record["kind"] == "golden-record"
    assert record["summary"]["checks"], "summary must list the shape checks"
    (entry,) = golden.check_golden(pairs, directory=tmp_path)
    assert entry["status"] == "matched"


def test_missing_and_drifted_records_are_distinguished(tmp_path):
    pairs = [("fig4", 0)]
    (entry,) = golden.check_golden(pairs, directory=tmp_path)
    assert entry["status"] == "missing"

    golden.update_golden(pairs, directory=tmp_path)
    path = golden.golden_path("fig4", 0, tmp_path)
    record = json.loads(path.read_text())
    record["digest"] = "sha256:" + "0" * 64
    path.write_text(json.dumps(record))
    (entry,) = golden.check_golden(pairs, directory=tmp_path)
    assert entry["status"] == "drifted"
    assert entry["expected"] != entry["actual"]


def test_cli_exit_codes(tmp_path, capsys):
    assert golden.main(["--update", "--dir", str(tmp_path)]) == 0
    assert golden.main(["--dir", str(tmp_path)]) == 0
    # remove one record: the check must fail loudly
    golden.golden_path("fig2", 0, tmp_path).unlink()
    assert golden.main(["--dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "MISSING" in out


def test_golden_digest_matches_fresh_serialization():
    payload = experiment_to_dict(run_experiment("fig4", seed=0))
    record = json.loads(golden.golden_path("fig4", 0).read_text())
    assert record["digest"] == golden.payload_digest(payload)
