"""Property-based integrity: invariants over the full fault matrix.

Two families:

* Exhaustive — every named fault scenario on every measured personality
  yields evidence the whole catalog passes.  Faults degrade the system
  under test; they must never break the measurement's own accounting.
* Adversarial (hypothesis) — randomized trace corruptions (shuffled
  timestamp permutations, arbitrary dequeue losses, randomized busy
  inflation) always trip the matching invariant, whatever shape the
  randomness takes.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import scenario_names
from repro.verify import InvariantChecker, gather_probe_evidence, summarize_reports
from repro.verify.probe import PERSONALITIES

CHECKER = InvariantChecker()


@pytest.fixture(scope="module")
def healthy():
    return gather_probe_evidence("nt40", seed=7)


@pytest.mark.parametrize("os_name", PERSONALITIES)
@pytest.mark.parametrize("scenario", sorted(scenario_names()))
def test_all_invariants_pass_under_every_scenario(os_name, scenario):
    evidence = gather_probe_evidence(os_name, seed=0, scenario=scenario)
    reports = CHECKER.check(evidence)
    summary = summarize_reports(reports)
    assert not summary["failed"], summary
    assert not summary["skipped"], summary


def _failed(evidence):
    return [r.name for r in CHECKER.check(evidence) if r.failed]


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_any_timestamp_disorder_trips_monotonicity(healthy, data):
    evidence = copy.deepcopy(healthy)
    times = evidence.record_times_ns
    permutation = data.draw(st.permutations(range(len(times))))
    shuffled = [times[i] for i in permutation]
    evidence.record_times_ns = shuffled
    if shuffled == sorted(shuffled):
        assert _failed(evidence) == []
    else:
        assert _failed(evidence) == ["monotonic-timestamps"]


@settings(max_examples=25, deadline=None)
@given(loss=st.integers(min_value=1, max_value=10**6))
def test_any_dequeue_loss_trips_queue_conservation(healthy, loss):
    evidence = copy.deepcopy(healthy)
    evidence.queue_stats["retrieved"] = max(
        0, evidence.queue_stats["retrieved"] - loss
    )
    assert _failed(evidence) == ["queue-conservation"]


@settings(max_examples=25, deadline=None)
@given(
    index=st.integers(min_value=0, max_value=10**6),
    extra_ns=st.integers(min_value=10**10, max_value=10**15),
)
def test_any_large_busy_inflation_trips_sample_sum(healthy, index, extra_ns):
    evidence = copy.deepcopy(healthy)
    assert evidence.events, "probe evidence must contain events"
    evidence.events[index % len(evidence.events)].busy_ns += extra_ns
    assert _failed(evidence) == ["sample-sum-consistency"]


@settings(max_examples=25, deadline=None)
@given(
    delta=st.integers(min_value=-10**9, max_value=-1),
    counter=st.sampled_from(["cycles", "made-up-counter"]),
)
def test_any_negative_counter_delta_trips_counter_sanity(healthy, delta, counter):
    evidence = copy.deepcopy(healthy)
    evidence.counter_deltas[counter] = delta
    assert _failed(evidence) == ["counter-sanity"]


@settings(max_examples=15, deadline=None)
@given(shift=st.integers(min_value=1, max_value=500))
def test_any_span_shift_breaks_time_conservation(healthy, shift):
    """Shaving any amount off an interior same-state pair (gap one side,
    overlap the other) is caught, however small."""
    evidence = copy.deepcopy(healthy)
    spans = evidence.spans
    pairs = [
        (i, j)
        for i in range(len(spans) - 1)
        for j in range(i + 1, len(spans) - 1)
        if spans[i].state == spans[j].state and spans[i].duration_ns > shift
    ]
    assert pairs, "probe evidence must contain a same-state span pair"
    left, right = pairs[0]
    spans[left].end_ns -= shift
    spans[right].end_ns += shift
    assert _failed(evidence) == ["time-conservation"]
