"""Unit tests for preemption, priorities, quanta and DPCs."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.sim.work import Work
from repro.winsys import Compute, GetMessage, Message, WM, boot
from repro.winsys.threads import IDLE_PRIORITY, NORMAL_PRIORITY


class TestPriorityPreemption:
    def test_high_priority_wakeup_preempts_low(self, nt40):
        timeline = []

        def low():
            yield Compute(nt40.personality.app_work(2_000_000))  # 20 ms
            timeline.append(("low-done", nt40.now))

        def high():
            message = yield GetMessage()
            timeline.append(("high-got", nt40.now))

        nt40.spawn("low", low(), priority=NORMAL_PRIORITY)
        high_thread = nt40.spawn("high", high(), priority=NORMAL_PRIORITY + 4)
        nt40.run_for(ns_from_ms(5))
        nt40.kernel.post_message(high_thread, Message(WM.USER))
        nt40.run_for(ns_from_ms(50))
        # High ran promptly, before the low thread finished.
        assert timeline[0][0] == "high-got"
        assert timeline[0][1] < ns_from_ms(7)
        assert timeline[1][0] == "low-done"
        # Low still completed with its full compute (plus the preemption).
        assert timeline[1][1] >= ns_from_ms(20)

    def test_idle_thread_runs_only_when_nothing_else(self, nt40):
        order = []

        def idle():
            while True:
                yield Compute(nt40.personality.app_work(100_000))
                order.append("idle")

        def busy():
            yield Compute(nt40.personality.app_work(500_000))
            order.append("busy")

        nt40.spawn("idle", idle(), priority=IDLE_PRIORITY)
        nt40.spawn("busy", busy(), priority=NORMAL_PRIORITY)
        nt40.run_for(ns_from_ms(10))
        assert order[0] == "busy"
        assert "idle" in order

    def test_equal_priority_no_preemption_midwork(self, nt40):
        order = []

        def worker(tag, cycles):
            yield Compute(nt40.personality.app_work(cycles))
            order.append(tag)

        nt40.spawn("first", worker("first", 500_000))
        nt40.spawn("second", worker("second", 100_000))
        nt40.run_for(ns_from_ms(3))
        # 'first' runs 5 ms within its quantum; 'second' waits despite
        # being shorter.
        assert order == []
        nt40.run_for(ns_from_ms(20))
        assert order == ["first", "second"]


class TestQuantum:
    def test_long_running_equal_threads_share_cpu(self, nt40):
        progress = {"a": 0, "b": 0}

        def worker(tag):
            for _ in range(20):
                yield Compute(nt40.personality.app_work(1_000_000))  # 10 ms
                progress[tag] += 1

        nt40.spawn("a", worker("a"))
        nt40.spawn("b", worker("b"))
        nt40.run_for(ns_from_ms(120))
        # Both made progress: the quantum rotates them.
        assert progress["a"] >= 2
        assert progress["b"] >= 2

    def test_context_switches_counted(self, nt40):
        def worker():
            yield Compute(nt40.personality.app_work(5_000_000))

        nt40.spawn("a", worker())
        nt40.spawn("b", worker())
        nt40.run_for(ns_from_ms(150))
        assert nt40.kernel.context_switches >= 1


class TestDpcs:
    def test_dpc_runs_ahead_of_threads(self, nt40):
        order = []

        def worker():
            yield Compute(nt40.personality.app_work(3_000_000))
            order.append("thread")

        nt40.spawn("worker", worker())
        nt40.run_for(ns_from_ms(1))
        nt40.kernel.queue_dpc(
            Work(100_000, label="dpc"), action=lambda: order.append("dpc")
        )
        nt40.run_for(ns_from_ms(60))
        assert order == ["dpc", "thread"]

    def test_dpc_action_runs_after_work(self, nt40):
        stamps = []
        nt40.kernel.queue_dpc(
            Work(100_000), action=lambda: stamps.append(nt40.now)
        )
        nt40.run_for(ns_from_ms(5))
        assert stamps and stamps[0] >= 1_000_000

    def test_dpcs_fifo(self, nt40):
        order = []
        nt40.kernel.queue_dpc(Work(1000), action=lambda: order.append(1))
        nt40.kernel.queue_dpc(Work(1000), action=lambda: order.append(2))
        nt40.run_for(ns_from_ms(5))
        assert order == [1, 2]

    def test_dpc_steals_from_thread_time(self, nt40):
        done = []

        def worker():
            yield Compute(nt40.personality.app_work(1_000_000))  # 10 ms
            done.append(nt40.now)

        nt40.spawn("worker", worker())
        nt40.run_for(ns_from_ms(2))
        nt40.kernel.queue_dpc(Work(500_000))  # 5 ms of system work
        nt40.run_for(ns_from_ms(60))
        assert done and done[0] >= ns_from_ms(15)
