"""Property-based tests: disk service, typist model, text, work algebra."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.devices.disk import Disk, DiskRequest
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.work import HwEvent, Work
from repro.workload.text import generate_text
from repro.workload.typist import TypistModel


@given(
    block=st.integers(min_value=0, max_value=262_143),
    count=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=100)
def test_disk_service_time_positive_and_bounded(block, count, seed):
    sim = Simulator()
    disk = Disk(sim, RngStreams(seed))
    if block + count > disk.geometry.total_blocks:
        count = disk.geometry.total_blocks - block
    service = disk.service_time_ns(DiskRequest(block=block, count=count))
    geometry = disk.geometry
    assert service >= geometry.controller_overhead_ns
    assert service <= (
        geometry.controller_overhead_ns
        + geometry.max_seek_ns
        + geometry.rotation_ns
        + geometry.transfer_ns_per_block * count
    )


@given(
    count_small=st.integers(min_value=1, max_value=16),
    extra=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=50)
def test_disk_transfer_monotone_in_block_count(count_small, extra):
    """More blocks never cost less, comparing same-seed rotation draws."""
    def service(count):
        sim = Simulator()
        disk = Disk(sim, RngStreams(0))
        return disk.service_time_ns(DiskRequest(block=1000, count=count))

    assert service(count_small + extra) >= service(count_small)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    wpm=st.floats(min_value=10.0, max_value=200.0),
    keys=st.lists(
        st.sampled_from(list("abcdef .!?") + ["Enter", "Backspace"]),
        min_size=1,
        max_size=50,
    ),
)
@settings(max_examples=100)
def test_typist_gaps_respect_the_shneiderman_floor(seed, wpm, keys):
    model = TypistModel(random.Random(seed), wpm=wpm)
    for key in keys:
        assert model.gap_after_ms(key) >= 120.0


@given(seed=st.integers(min_value=0, max_value=10_000),
       chars=st.integers(min_value=50, max_value=3000))
@settings(max_examples=50)
def test_generate_text_invariants(seed, chars):
    text = generate_text(random.Random(seed), chars)
    assert len(text) >= chars * 0.9
    assert len(text) <= chars * 1.5
    assert text.endswith("\n")
    assert "  " not in text  # single spacing


@given(
    cycles=st.integers(min_value=0, max_value=10**9),
    counts=st.dictionaries(
        st.sampled_from(list(HwEvent)), st.integers(min_value=0, max_value=10**6),
        max_size=4,
    ),
    factor=st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=100)
def test_work_scaling_bounds(cycles, counts, factor):
    work = Work(cycles, dict(counts))
    scaled = work.scaled(factor)
    assert abs(scaled.cycles - cycles * factor) <= 0.5
    for event, count in counts.items():
        assert abs(scaled.events.get(event, 0) - count * factor) <= 0.5


@given(
    a_cycles=st.integers(min_value=0, max_value=10**6),
    b_cycles=st.integers(min_value=0, max_value=10**6),
    event=st.sampled_from(list(HwEvent)),
    a_count=st.integers(min_value=0, max_value=1000),
    b_count=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100)
def test_work_plus_commutative(a_cycles, b_cycles, event, a_count, b_count):
    a = Work(a_cycles, {event: a_count})
    b = Work(b_cycles, {event: b_count})
    ab = a.plus(b)
    ba = b.plus(a)
    assert ab.cycles == ba.cycles
    assert ab.events == ba.events
