"""Unit tests for MeasurementSession and cross-OS comparison."""

import random

import pytest

from repro.apps import NotepadApp
from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.session import MeasurementSession, label_events
from repro.core.compare import run_comparison
from repro.workload.script import InputScript, Key, Mark
from repro.workload.tasks import notepad_task

MS = 1_000_000


def tiny_script():
    return InputScript([Key(c, pause_ms=120.0) for c in "hello"])


class TestMeasurementSession:
    def test_end_to_end_produces_events(self):
        session = MeasurementSession("nt40", NotepadApp)
        result = session.run(tiny_script(), max_seconds=60)
        assert len(result.profile) == 5
        assert result.elapsed_s > 0
        assert result.trace.total_busy_ns() > 0

    def test_driver_kinds(self):
        for kind in ("mstest", "typist"):
            session = MeasurementSession("nt40", NotepadApp)
            result = session.run(tiny_script(), driver_kind=kind, max_seconds=120)
            assert len(result.profile) == 5

    def test_unknown_driver_rejected(self):
        session = MeasurementSession("nt40", NotepadApp)
        with pytest.raises(ValueError):
            session.run(tiny_script(), driver_kind="robot")

    def test_queuesync_removal_reduces_latency(self):
        with_qs = MeasurementSession("nt40", NotepadApp).run(
            tiny_script(), remove_queuesync=False, max_seconds=60
        )
        without_qs = MeasurementSession("nt40", NotepadApp).run(
            tiny_script(), remove_queuesync=True, max_seconds=60
        )
        assert (
            without_qs.profile.total_latency_ns < with_qs.profile.total_latency_ns
        )
        assert without_qs.extraction.queuesync_removed_ns > 0

    def test_marks_label_events(self):
        script = InputScript([Mark("first"), Key("a", pause_ms=150.0), Key("b")])
        result = MeasurementSession("nt40", NotepadApp).run(script, max_seconds=60)
        labelled = result.profile.labelled("first")
        assert len(labelled) == 1

    def test_deterministic_across_runs(self):
        def run_once():
            rng = random.Random(4)
            spec = notepad_task(rng, chars=60, page_downs=1, arrows=2)
            result = MeasurementSession("nt40", NotepadApp, seed=2).run(
                spec.script, max_seconds=120
            )
            return [event.latency_ns for event in result.profile]

        assert run_once() == run_once()


class TestLabelEvents:
    def test_slack_tolerates_early_start(self):
        profile = LatencyProfile(
            [LatencyEvent(start_ns=95 * MS, latency_ns=10 * MS)]
        )
        label_events(profile, [("op", 100 * MS)], slack_ns=10 * MS)
        assert profile[0].label == "op"

    def test_each_mark_labels_one_event(self):
        profile = LatencyProfile(
            [
                LatencyEvent(start_ns=100 * MS, latency_ns=MS),
                LatencyEvent(start_ns=200 * MS, latency_ns=MS),
            ]
        )
        label_events(profile, [("a", 100 * MS), ("b", 200 * MS)])
        assert [e.label for e in profile] == ["a", "b"]

    def test_window_limits_matching(self):
        profile = LatencyProfile(
            [LatencyEvent(start_ns=500 * MS, latency_ns=MS)]
        )
        label_events(profile, [("far", 0)], window_ns=100 * MS)
        assert profile[0].label == ""


class TestComparison:
    def test_runs_all_oses(self):
        comparison = run_comparison(
            "tiny",
            ("nt351", "nt40"),
            NotepadApp,
            tiny_script(),
            run_kwargs=dict(max_seconds=60),
        )
        assert comparison.os_names == ["nt351", "nt40"]
        assert len(comparison.profile("nt40")) == 5

    def test_summary_table_renders(self):
        comparison = run_comparison(
            "tiny",
            ("nt40",),
            NotepadApp,
            tiny_script(),
            run_kwargs=dict(max_seconds=60),
        )
        text = comparison.summary_table().render()
        assert "nt40" in text
        assert "events" in text

    def test_cumulative_and_elapsed_maps(self):
        comparison = run_comparison(
            "tiny",
            ("nt40",),
            NotepadApp,
            tiny_script(),
            run_kwargs=dict(max_seconds=60),
        )
        assert comparison.cumulative_latency_ms()["nt40"] > 0
        assert comparison.elapsed_s()["nt40"] > 0
