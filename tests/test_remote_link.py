"""Unit tests for the deterministic lossy-link model."""

import pytest

from repro.remote.link import DirectionConfig, LinkConfig, LossyLink
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot


def _collect(system, link, count=20, size=200, direction="up", gap_ms=0.0):
    """Send ``count`` packets (optionally spaced); return delivery times."""
    times = []

    def send_one(i):
        link.send(
            direction,
            size,
            lambda i=i: times.append((i, system.now)),
            label=f"pkt:{i}",
        )

    for i in range(count):
        if gap_ms:
            system.sim.schedule_at(
                system.now + ns_from_ms(gap_ms * i),
                lambda i=i: send_one(i),
                label="inject",
            )
        else:
            send_one(i)
    system.run_for(ns_from_ms(5_000))
    return times


class TestConfig:
    def test_direction_validation(self):
        with pytest.raises(ValueError):
            DirectionConfig(bandwidth_kbps=0)
        with pytest.raises(ValueError):
            DirectionConfig(loss=1.5)
        with pytest.raises(ValueError):
            DirectionConfig(delay_ms=-1)

    def test_symmetric_splits_rtt(self):
        link = LinkConfig.symmetric("t", rtt_ms=80.0)
        assert link.up.delay_ms + link.down.delay_ms == pytest.approx(80.0)
        assert link.rtt_ms == pytest.approx(80.0)

    def test_flap_validation(self):
        with pytest.raises(ValueError):
            LinkConfig.symmetric(
                "t", rtt_ms=40.0, flap_period_ms=10.0, flap_down_ms=20.0
            )

    def test_fingerprint_tracks_content(self):
        a = LinkConfig.symmetric("t", rtt_ms=40.0)
        b = LinkConfig.symmetric("t", rtt_ms=40.0)
        c = LinkConfig.symmetric("t", rtt_ms=50.0)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestLossyLink:
    def test_delivery_is_deterministic(self):
        def run_once():
            system = boot("nt40", seed=2)
            link = LossyLink(
                system,
                LinkConfig.symmetric("t", rtt_ms=60.0, jitter_ms=5.0, loss=0.2),
            )
            return _collect(system, link)

        assert run_once() == run_once()

    def test_zero_loss_delivers_everything(self, nt40):
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=30.0))
        times = _collect(nt40, link, count=15)
        assert len(times) == 15
        assert link.counters()["lost"]["up"] == 0

    def test_serialization_orders_backlog(self, nt40):
        # 4000 kbps, 10 KB packets: 20 ms serialization each, so
        # back-to-back sends must come out spaced by >= 20 ms, in order.
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=10.0))
        times = _collect(nt40, link, count=5, size=10_000)
        deltas = [b - a for (_, a), (_, b) in zip(times, times[1:])]
        assert all(delta >= ns_from_ms(19) for delta in deltas)
        assert [i for i, _ in times] == sorted(i for i, _ in times)

    def test_loss_drops_some(self, nt40):
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=30.0, loss=0.4))
        times = _collect(nt40, link, count=40)
        assert 0 < len(times) < 40
        assert link.counters()["lost"]["up"] + len(times) == 40

    def test_degrade_restore_composes(self, nt40):
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=30.0))
        base = (link.effective("up").loss, link.effective("up").jitter_ms)
        t1 = link.degrade(loss_add=0.2)
        t2 = link.degrade(jitter_add_ms=10.0, loss_add=0.1)
        effective = link.effective("up")
        assert effective.loss == pytest.approx(0.3)
        assert effective.jitter_ms == pytest.approx(10.0)
        link.restore(t1)
        assert link.effective("up").loss == pytest.approx(0.1)
        link.restore(t2)
        assert (
            link.effective("up").loss,
            link.effective("up").jitter_ms,
        ) == pytest.approx(base)

    def test_flap_is_pure_function_of_time(self, nt40):
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=30.0))
        link.set_flap(period_ms=100.0, down_ms=40.0)
        anchor = nt40.now
        probes = [anchor + ns_from_ms(m) for m in range(0, 200, 10)]
        first = [link.is_down(at) for at in probes]
        second = [link.is_down(at) for at in probes]
        assert first == second
        assert any(first) and not all(first)
        link.clear_flap()
        assert not link.is_down(probes[3])

    def test_flap_drops_in_down_window(self, nt40):
        link = LossyLink(
            nt40,
            LinkConfig.symmetric(
                "t", rtt_ms=30.0, flap_period_ms=200.0, flap_down_ms=150.0
            ),
        )
        times = _collect(nt40, link, count=30, gap_ms=20.0)
        assert link.counters()["flapped"]["up"] > 0
        assert times  # some packets cross in the up windows

    def test_registers_on_system(self, nt40):
        link = LossyLink(nt40, LinkConfig.symmetric("t", rtt_ms=30.0))
        assert nt40.remote_link is link
