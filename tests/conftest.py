"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.machine import Machine, MachineSpec
from repro.winsys import boot


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def machine():
    return Machine(MachineSpec(master_seed=0))


@pytest.fixture
def nt40():
    return boot("nt40", seed=0)


@pytest.fixture
def nt351():
    return boot("nt351", seed=0)


@pytest.fixture
def win95():
    return boot("win95", seed=0)
