"""Unit tests for program images and loading."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import boot
from repro.winsys.loader import ProgramImage, load_image


class TestProgramImage:
    def test_create_allocates_file(self, nt40):
        image = ProgramImage.create(nt40.filesystem, "app", 1024 * 1024, 1000)
        assert image.file.size_bytes == 1024 * 1024
        assert nt40.filesystem.exists("image:app")

    def test_create_idempotent_file(self, nt40):
        a = ProgramImage.create(nt40.filesystem, "app", 1024 * 1024, 1000)
        b = ProgramImage.create(nt40.filesystem, "app", 1024 * 1024, 2000)
        assert a.file is b.file


class TestLoadImage:
    def _load(self, system, image, **kwargs):
        done = []

        def program():
            yield from load_image(system.personality, image, **kwargs)
            done.append(system.now)

        system.spawn("loader", program())
        system.run_until_quiescent(max_ns=system.now + 60 * 10**9)
        return done

    def test_cold_load_takes_disk_time(self, nt40):
        image = ProgramImage.create(
            nt40.filesystem, "app", 2 * 1024 * 1024, init_gui_cycles=1_000_000
        )
        done = self._load(nt40, image)
        assert done and done[0] > ns_from_ms(100)

    def test_warm_load_much_faster(self, nt40):
        image = ProgramImage.create(
            nt40.filesystem, "app", 2 * 1024 * 1024, init_gui_cycles=1_000_000
        )
        cold_done = self._load(nt40, image)[0]
        start = nt40.now
        warm_done = self._load(nt40, image)[0] - start
        assert warm_done < (cold_done) / 3

    def test_read_fraction_validation(self, nt40):
        image = ProgramImage.create(nt40.filesystem, "app", 1024, 0)
        with pytest.raises(ValueError):
            list(load_image(nt40.personality, image, read_fraction=0.0))
        with pytest.raises(ValueError):
            list(load_image(nt40.personality, image, read_fraction=1.5))

    def test_partial_working_set_reads_less(self, nt40):
        image = ProgramImage.create(nt40.filesystem, "app", 4 * 1024 * 1024, 0)
        blocks_before = nt40.machine.disk.blocks_transferred
        self._load(nt40, image, read_fraction=0.5)
        read = nt40.machine.disk.blocks_transferred - blocks_before
        assert read == pytest.approx(512, rel=0.05)  # half of 1024 blocks

    def test_init_gui_cost_differs_by_os(self, nt351, nt40):
        def load_time(system):
            image = ProgramImage.create(
                system.filesystem, "app", 64 * 1024, init_gui_cycles=50_000_000
            )
            done = []

            def program():
                yield from load_image(system.personality, image)
                done.append(system.now)

            start = system.now
            system.spawn("loader", program())
            system.run_until_quiescent(max_ns=system.now + 60 * 10**9)
            return done[0] - start

        assert load_time(nt351) > load_time(nt40)
