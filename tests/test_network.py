"""Unit tests for the NIC, packet source, and terminal app."""

import pytest

from repro.apps import TerminalApp
from repro.sim.timebase import ns_from_ms
from repro.winsys import GetMessage, WM, boot
from repro.workload.network import PacketSource


class TestNic:
    def test_deliver_raises_interrupt(self, nt40):
        delivered_before = nt40.machine.interrupts.delivered.get("nic", 0)
        nt40.machine.nic.deliver("hello", size_bytes=100)
        assert nt40.machine.interrupts.delivered["nic"] == delivered_before + 1
        assert nt40.machine.nic.packets_received == 1
        assert nt40.machine.nic.bytes_received == 100

    def test_size_validation(self, nt40):
        with pytest.raises(ValueError):
            nt40.machine.nic.deliver("x", size_bytes=0)

    def test_packet_becomes_wm_socket(self, nt40):
        got = []

        def program():
            while True:
                message = yield GetMessage()
                got.append((message.kind, message.payload))

        thread = nt40.spawn("app", program(), foreground=True)
        nt40.bind_socket(thread)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.nic.deliver("data", size_bytes=64)
        nt40.run_for(ns_from_ms(20))
        assert got and got[0][0] == WM.SOCKET
        assert got[0][1].payload == "data"

    def test_socket_message_is_input_class(self, nt40):
        """Packet arrivals are events in the paper's sense."""
        got = []

        def program():
            while True:
                message = yield GetMessage()
                got.append(message)

        thread = nt40.spawn("app", program(), foreground=True)
        nt40.bind_socket(thread)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.nic.deliver("data")
        nt40.run_for(ns_from_ms(20))
        assert got[0].from_input

    def test_defaults_to_foreground_without_binding(self, nt40):
        got = []

        def program():
            while True:
                message = yield GetMessage()
                got.append(message.kind)

        nt40.spawn("app", program(), foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.machine.nic.deliver("data")
        nt40.run_for(ns_from_ms(20))
        assert WM.SOCKET in got


class TestPacketSource:
    def test_burst_delivers_count(self, nt40):
        app = TerminalApp(nt40)
        app.start()
        nt40.run_for(ns_from_ms(5))
        source = PacketSource(nt40, mean_interarrival_ms=20.0)
        source.send_burst(10)
        source.run_to_completion()
        assert source.packets_sent == 10
        assert app.lines_received == 10

    def test_deterministic(self):
        def run_once():
            system = boot("nt40", seed=4)
            app = TerminalApp(system)
            app.start()
            system.run_for(ns_from_ms(5))
            source = PacketSource(system, mean_interarrival_ms=30.0)
            source.send_burst(8)
            source.run_to_completion()
            return system.now

        assert run_once() == run_once()

    def test_validation(self, nt40):
        with pytest.raises(ValueError):
            PacketSource(nt40, mean_interarrival_ms=0)
        with pytest.raises(ValueError):
            PacketSource(nt40).send_burst(0)

    def test_overlapping_burst_raises(self, nt40):
        """A second burst may not clobber one still in flight: the old
        ``_remaining`` overwrite silently truncated the first burst."""
        app = TerminalApp(nt40)
        app.start()
        nt40.run_for(ns_from_ms(5))
        source = PacketSource(nt40, mean_interarrival_ms=20.0)
        source.send_burst(10)
        assert not source.finished
        with pytest.raises(RuntimeError):
            source.send_burst(5)
        # The original burst is intact and completes in full.
        source.run_to_completion()
        assert source.packets_sent == 10

    def test_sequential_bursts_allowed(self, nt40):
        app = TerminalApp(nt40)
        app.start()
        nt40.run_for(ns_from_ms(5))
        source = PacketSource(nt40, mean_interarrival_ms=20.0)
        source.send_burst(4)
        source.run_to_completion()
        source.send_burst(3)
        source.run_to_completion()
        assert source.packets_sent == 7
        assert source.finished


class TestTerminalApp:
    def test_scroll_every_screenful(self, nt40):
        app = TerminalApp(nt40)
        app.start()
        nt40.run_for(ns_from_ms(5))
        for _ in range(app.SCREEN_LINES * 2):
            nt40.machine.nic.deliver("line", size_bytes=80)
            nt40.run_until_quiescent(max_ns=nt40.now + 10**9)
        assert app.scrolls == 2

    def test_parse_cost_scales_with_size(self, nt40):
        app = TerminalApp(nt40)
        app.start()
        nt40.run_for(ns_from_ms(5))

        def busy_for(size):
            before = nt40.machine.cpu.busy_ns
            nt40.machine.nic.deliver("x", size_bytes=size)
            nt40.run_until_quiescent(max_ns=nt40.now + 10**9)
            return nt40.machine.cpu.busy_ns - before

        small = busy_for(64)
        large = busy_for(1024)
        # Parsing costs PARSE_PER_BYTE cycles/byte: 960 extra bytes at
        # 120 cycles each is ~1.15 ms of extra busy time.
        assert large - small > ns_from_ms(0.8)
