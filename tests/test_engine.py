"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self, sim):
        order = []
        sim.schedule(10, lambda: order.append(1))
        sim.schedule(10, lambda: order.append(2))
        sim.schedule(10, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_callbacks_can_schedule_more(self, sim):
        seen = []

        def first():
            seen.append("first")
            sim.schedule(5, lambda: seen.append("second"))

        sim.schedule(10, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 15


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(10, lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("a"))
        handle = sim.schedule(20, lambda: fired.append("b"))
        sim.schedule(30, lambda: fired.append("c"))
        handle.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_pending_count_ignores_cancelled(self, sim):
        handle = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.pending_count() == 2
        handle.cancel()
        assert sim.pending_count() == 1

    def test_peek_next_time_skips_cancelled(self, sim):
        first = sim.schedule(10, lambda: None)
        sim.schedule(25, lambda: None)
        first.cancel()
        assert sim.peek_next_time() == 25


class TestRunBounds:
    def test_until_ns_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(True))
        sim.run(until_ns=50)
        assert fired == []
        assert sim.now == 50

    def test_until_ns_inclusive_of_boundary_events(self, sim):
        fired = []
        sim.schedule(50, lambda: fired.append(True))
        sim.run(until_ns=50)
        assert fired == [True]

    def test_resume_after_horizon(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(True))
        sim.run(until_ns=50)
        sim.run(until_ns=150)
        assert fired == [True]

    def test_until_predicate(self, sim):
        count = []
        for delay in (10, 20, 30, 40):
            sim.schedule(delay, lambda: count.append(1))
        sim.run(until=lambda: len(count) >= 2)
        assert len(count) == 2

    def test_max_events(self, sim):
        count = []
        for delay in (10, 20, 30):
            sim.schedule(delay, lambda: count.append(1))
        sim.run(max_events=1)
        assert len(count) == 1

    def test_stop_from_callback(self, sim):
        fired = []

        def stopper():
            fired.append("stopper")
            sim.stop()

        sim.schedule(10, stopper)
        sim.schedule(20, lambda: fired.append("late"))
        sim.run()
        assert fired == ["stopper"]

    def test_run_not_reentrant(self, sim):
        def inner():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1, inner)
        sim.run()

    def test_empty_run_advances_to_horizon(self, sim):
        assert sim.run(until_ns=1000) == 1000

    def test_events_executed_counter(self, sim):
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_executed == 2


class TestCompaction:
    """Lazy-deletion bookkeeping: the calendar compacts itself when
    cancelled entries dominate, without changing pop order."""

    def test_pending_count_is_live_events_only(self, sim):
        handles = [sim.schedule(10 * i + 10, lambda: None) for i in range(5)]
        assert sim.pending_count() == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending_count() == 3

    def test_double_cancel_counted_once(self, sim):
        handle = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_count() == 1

    def test_small_queues_never_compact(self, sim):
        handles = [sim.schedule(10 + i, lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        assert sim.compactions == 0

    def test_cancel_heavy_queue_compacts(self, sim):
        handles = [sim.schedule(10 + i, lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        assert sim.compactions >= 1
        # Compaction purged the dead majority; the handful cancelled
        # since may still sit in the heap awaiting lazy discard.
        assert sim.calendar_depth() < 100
        assert sim.pending_count() == 50

    def test_compaction_preserves_execution_order(self, sim):
        order = []
        handles = []
        for index in range(300):
            handles.append(
                sim.schedule(1000 - index, lambda i=index: order.append(i))
            )
        for index, handle in enumerate(handles):
            if index % 3:
                handle.cancel()
        assert sim.compactions >= 1
        sim.run()
        # Survivors fire in descending index order (later index = earlier
        # time) — exactly the order the uncompacted calendar would use.
        expected = [i for i in range(299, -1, -1) if i % 3 == 0]
        assert order == expected

    def test_cancelled_fraction_gauge(self, sim):
        assert sim.cancelled_fraction() == 0.0
        handles = [sim.schedule(10 + i, lambda: None) for i in range(10)]
        handles[0].cancel()
        handles[1].cancel()
        assert sim.cancelled_fraction() == pytest.approx(0.2)

    def test_calendar_high_water(self, sim):
        for i in range(7):
            sim.schedule(10 + i, lambda: None)
        sim.run()
        assert sim.calendar_high_water == 7

    def test_churn_stays_compact(self, sim):
        """The preempt/reschedule pattern must not grow the heap."""
        decoy = [None]
        count = [0]

        def tick():
            count[0] += 1
            if decoy[0] is not None:
                decoy[0].cancel()
            decoy[0] = sim.schedule(10**9, lambda: None)
            if count[0] < 5000:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run(until_ns=5000 * 10 + 1)
        assert count[0] == 5000
        assert sim.calendar_depth() < 200  # not ~5000 dead entries
