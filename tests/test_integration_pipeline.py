"""Integration tests: the full measurement pipeline end to end."""

import random

import numpy as np
import pytest

from repro.apps import EchoApp, NotepadApp, WordApp
from repro.core import (
    EventExtractor,
    IdleLoopInstrument,
    MessageApiMonitor,
    MeasurementSession,
)
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot
from repro.workload.script import InputScript, Key
from repro.workload.tasks import notepad_task


class TestEchoPipeline:
    """The Figure 1 claim, as an integration invariant."""

    def test_idle_loop_exceeds_timestamps_on_every_os(self):
        for os_name in ("nt351", "nt40", "win95"):
            system = boot(os_name)
            app = EchoApp(system)
            app.start(foreground=True)
            instrument = IdleLoopInstrument(system)
            instrument.install()
            monitor = MessageApiMonitor(system, thread_name=app.name)
            monitor.attach()
            system.run_for(ns_from_ms(100))
            for _ in range(5):
                system.machine.keyboard.keystroke("a")
                system.run_for(ns_from_ms(150))
            extraction = EventExtractor(
                monitor=monitor, merge_gap_ns=ns_from_ms(2)
            ).extract(instrument.trace())
            idle_mean = extraction.profile.latencies_ms.mean()
            stamp_mean = np.mean(app.timestamp_latencies_ns) / 1e6
            assert idle_mean > stamp_mean, os_name


class TestNotepadPipeline:
    def test_event_count_matches_keystrokes(self):
        script = InputScript([Key(c, pause_ms=130.0) for c in "integration"])
        result = MeasurementSession("nt40", NotepadApp).run(script, max_seconds=60)
        assert len(result.profile) == len("integration")

    def test_measured_latency_matches_cpu_accounting(self):
        """Extracted busy time must equal actual CPU time spent (minus
        the instrument's own loop and system background)."""
        script = InputScript([Key(c, pause_ms=150.0) for c in "abcdef"])
        result = MeasurementSession("nt40", NotepadApp).run(
            script, queuesync=False, max_seconds=60
        )
        measured_busy = sum(e.busy_ns for e in result.profile)
        # Each keystroke's busy time is ~4-6 ms on NT 4.0.
        assert 6 * 3_000_000 < measured_busy < 6 * 9_000_000

    def test_all_events_carry_input_messages(self):
        script = InputScript([Key(c, pause_ms=150.0) for c in "xyz"])
        result = MeasurementSession("nt40", NotepadApp).run(script, max_seconds=60)
        for event in result.profile:
            assert any("WM_KEY" in kind or "WM_CHAR" in kind for kind in event.message_kinds)


class TestCrossOsInvariants:
    def test_same_workload_same_event_count(self):
        rng = random.Random(11)
        spec = notepad_task(rng, chars=60, page_downs=1, arrows=2)
        counts = {}
        for os_name in ("nt351", "nt40", "win95"):
            result = MeasurementSession(os_name, NotepadApp).run(
                spec.script, max_seconds=120
            )
            counts[os_name] = len(result.profile)
        assert len(set(counts.values())) == 1, counts

    def test_win95_word_unmeasurable_nt_fine(self):
        script = InputScript([Key(c, pause_ms=200.0) for c in "abc def"])
        nt = MeasurementSession("nt40", WordApp).run(script, max_seconds=120)
        w95 = MeasurementSession("win95", WordApp).run(script, max_seconds=240)
        assert nt.profile.max_ms() < 300
        assert w95.profile.max_ms() > 1500


class TestInstrumentOverheadAccounting:
    def test_trace_busy_excludes_idle_loop_itself(self):
        """2 s of idle must show only background busy, not 2 s."""
        system = boot("nt40")
        instrument = IdleLoopInstrument(system)
        instrument.install()
        system.run_for(ns_from_ms(2000))
        trace = instrument.trace()
        assert trace.total_busy_ns() < ns_from_ms(40)  # clock ticks only
