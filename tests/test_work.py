"""Unit tests for Work descriptors and hardware-event annotations."""

import pytest

from repro.sim.work import HwEvent, Work


class TestWork:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Work(-1)

    def test_scaled(self):
        work = Work(1000, {HwEvent.ITLB_MISS: 10})
        half = work.scaled(0.5)
        assert half.cycles == 500
        assert half.events[HwEvent.ITLB_MISS] == 5

    def test_scaled_rounds(self):
        work = Work(3, {HwEvent.ITLB_MISS: 3})
        assert work.scaled(0.5).cycles == 2  # banker's rounding of 1.5

    def test_plus_sums_cycles_and_events(self):
        a = Work(100, {HwEvent.ITLB_MISS: 1, HwEvent.SEGMENT_LOADS: 2})
        b = Work(200, {HwEvent.ITLB_MISS: 3})
        c = a.plus(b)
        assert c.cycles == 300
        assert c.events[HwEvent.ITLB_MISS] == 4
        assert c.events[HwEvent.SEGMENT_LOADS] == 2

    def test_plus_does_not_mutate(self):
        a = Work(100, {HwEvent.ITLB_MISS: 1})
        b = Work(200, {HwEvent.ITLB_MISS: 3})
        a.plus(b)
        assert a.events[HwEvent.ITLB_MISS] == 1

    def test_total(self):
        parts = [Work(10), Work(20), Work(30, {HwEvent.DTLB_MISS: 5})]
        total = Work.total(parts, label="sum")
        assert total.cycles == 60
        assert total.events[HwEvent.DTLB_MISS] == 5
        assert total.label == "sum"

    def test_from_mapping(self):
        work = Work.from_mapping(50, {"itlb_miss": 2, "segment_loads": 7})
        assert work.count(HwEvent.ITLB_MISS) == 2
        assert work.count(HwEvent.SEGMENT_LOADS) == 7

    def test_count_missing_is_zero(self):
        assert Work(10).count(HwEvent.UNALIGNED_ACCESS) == 0

    def test_repr_mentions_label(self):
        assert "render" in repr(Work(5, label="render"))


class TestHwEvent:
    def test_all_paper_events_present(self):
        names = {event.value for event in HwEvent}
        assert {
            "instructions",
            "data_refs",
            "itlb_miss",
            "dtlb_miss",
            "segment_loads",
            "unaligned_access",
            "interrupts",
        } <= names

    def test_string_enum(self):
        assert str(HwEvent.ITLB_MISS) == "itlb_miss"
