"""Integration tests: fast experiments end to end with shape checks.

The slow task experiments (fig5/7/8/11, tables, sec54) are exercised by
the benchmark harness; here we run the fast ones completely and assert
every shape check passes.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS

FAST_EXPERIMENTS = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "sec25",
    "ablation-merge",
    "ablation-batching",
    "ablation-idle-n",
    "ext-network",
    "ext-decompose",
    "ext-faults",
    "ext-remote",
]


@pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
def test_fast_experiment_shape_checks(experiment_id):
    result = run_experiment(experiment_id, seed=0)
    failed = result.failed_checks()
    assert not failed, "; ".join(str(check) for check in failed)


def test_registry_complete():
    # Every paper artifact has an experiment.
    expected = {
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "fig12", "table1", "table2", "sec25",
        "sec54", "ablation-idle-n", "ablation-batching", "ablation-merge",
        "ext-refresh", "ext-network", "ext-decompose", "ext-faults",
        "ext-fleet", "ext-remote", "sec5-repeat",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_experiment_render_includes_checks():
    result = run_experiment("fig1", seed=0)
    text = result.render()
    assert "shape checks:" in text
    assert "[PASS]" in text


def test_experiment_results_are_deterministic():
    a = run_experiment("fig1", seed=0)
    b = run_experiment("fig1", seed=0)
    assert a.data == b.data


def test_runner_cli_checks_only(capsys):
    from repro.experiments.runner import main

    assert main(["fig1", "--checks-only"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "PASS" in out


def test_runner_cli_list(capsys):
    from repro.experiments.runner import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out


def test_runner_cli_unknown_id(capsys):
    from repro.experiments.runner import main

    assert main(["nope"]) == 2
