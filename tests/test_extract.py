"""Unit tests for event extraction (busy periods -> latency profiles)."""

import pytest

from repro.core.extract import BusyPeriod, Episode, EventExtractor
from repro.core.samples import SampleTrace

MS = 1_000_000
LOOP = 1 * MS


def trace_from_busy(*bursts):
    """Build a sample trace with idle ms records and given busy bursts.

    ``bursts`` are (start_ms, busy_ms) pairs on an otherwise idle
    timeline of 1 ms records.
    """
    times = []
    t = 0
    horizon = max((start + busy for start, busy in bursts), default=0) + 20
    bursts = sorted(bursts)
    index = 0
    while t < horizon:
        if index < len(bursts) and t == bursts[index][0]:
            start, busy = bursts[index]
            index += 1
            # Idle loop starved: next record after busy + remaining loop.
            times.append((start + busy + 1) * MS)
            t = start + busy + 1
        else:
            t += 1
            times.append(t * MS)
    return SampleTrace([0] + times, loop_ns=LOOP)


class TestBusyPeriods:
    def test_single_burst_detected(self):
        trace = trace_from_busy((10, 5))
        periods = EventExtractor().busy_periods(trace)
        assert len(periods) == 1
        assert periods[0].busy_ns == 5 * MS
        assert periods[0].start_ns == 10 * MS

    def test_quiet_trace_no_periods(self):
        trace = trace_from_busy()
        assert EventExtractor().busy_periods(trace) == []

    def test_two_separate_bursts(self):
        trace = trace_from_busy((10, 5), (100, 7))
        periods = EventExtractor().busy_periods(trace)
        assert [p.busy_ns for p in periods] == [5 * MS, 7 * MS]


class TestEpisodes:
    def test_far_apart_periods_stay_separate(self):
        trace = trace_from_busy((10, 5), (100, 5))
        episodes = EventExtractor(merge_gap_ns=2 * MS).episodes(trace)
        assert len(episodes) == 2

    def test_io_span_bridges_periods(self):
        trace = trace_from_busy((10, 5), (40, 5))
        io_spans = [(15 * MS, 40 * MS)]  # disk wait between the bursts
        episodes = EventExtractor(
            merge_gap_ns=2 * MS, io_wait_spans=io_spans
        ).episodes(trace)
        assert len(episodes) == 1
        episode = episodes[0]
        assert episode.start_ns == 10 * MS
        assert episode.end_ns == 45 * MS
        assert episode.busy_ns == 10 * MS  # CPU only

    def test_io_only_episode_kept(self):
        trace = trace_from_busy()
        episodes = EventExtractor(
            io_wait_spans=[(5 * MS, 9 * MS)]
        ).episodes(trace)
        assert len(episodes) == 1
        assert not episodes[0].has_cpu

    def test_small_gap_merges(self):
        trace = trace_from_busy((10, 5))
        extractor = EventExtractor(merge_gap_ns=10 * MS)
        # Manually exercise chaining on synthetic pieces.
        groups = extractor.episodes(trace)
        assert len(groups) == 1


class TestExtraction:
    def test_event_latency_is_busy_duration(self):
        trace = trace_from_busy((10, 6))
        profile = EventExtractor().extract(trace).profile
        assert len(profile) == 1
        assert profile[0].latency_ns == 6 * MS

    def test_min_event_filter(self):
        trace = trace_from_busy((10, 2), (50, 30))
        result = EventExtractor(min_event_ns=10 * MS).extract(trace)
        assert len(result.profile) == 1
        assert result.profile[0].latency_ns == 30 * MS

    def test_io_bridged_event_counts_wall_time(self):
        trace = trace_from_busy((10, 5), (40, 5))
        result = EventExtractor(
            io_wait_spans=[(15 * MS, 40 * MS)]
        ).extract(trace)
        assert len(result.profile) == 1
        event = result.profile[0]
        assert event.latency_ns == 35 * MS  # wall: 10 ms CPU + 25 ms disk
        assert event.busy_ns == 10 * MS

    def test_without_monitor_everything_is_an_event(self):
        trace = trace_from_busy((10, 5), (100, 5))
        result = EventExtractor(monitor=None).extract(trace)
        assert len(result.profile) == 2
        assert len(result.background) == 0
