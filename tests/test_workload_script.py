"""Unit tests for the input-script IR and text generation."""

import random

import pytest

from repro.workload.script import (
    Click,
    Command,
    InputScript,
    Key,
    Mark,
    Pause,
    WaitIdle,
    type_text_actions,
)
from repro.workload.tasks import notepad_task, powerpoint_task, word_task
from repro.workload.text import generate_text


class TestInputScript:
    def test_add_and_iterate(self):
        script = InputScript()
        script.add(Key("a"), Pause(100), Mark("here"))
        assert len(script) == 3
        assert isinstance(script[1], Pause)

    def test_key_count(self):
        script = InputScript([Key("a"), Pause(1), Key("b"), Command("x")])
        assert script.key_count() == 2

    def test_marks(self):
        script = InputScript([Mark("a"), Key("x"), Mark("b")])
        assert script.marks() == ["a", "b"]

    def test_type_text_actions(self):
        actions = type_text_actions("ab\nc", pause_ms=50.0)
        assert [a.key for a in actions] == ["a", "b", "Enter", "c"]
        assert all(a.pause_ms == 50.0 for a in actions)


class TestTextGeneration:
    def test_deterministic(self):
        a = generate_text(random.Random(3), 500)
        b = generate_text(random.Random(3), 500)
        assert a == b

    def test_approximate_length(self):
        text = generate_text(random.Random(1), 1000)
        assert 900 <= len(text) <= 1300

    def test_has_sentences_and_paragraphs(self):
        text = generate_text(random.Random(2), 2000)
        assert ". " in text
        assert text.count("\n") >= 2

    def test_ends_at_paragraph(self):
        text = generate_text(random.Random(5), 800)
        assert text.endswith("\n")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_text(random.Random(0), 0)


class TestTasks:
    def test_notepad_task_shape(self):
        spec = notepad_task(random.Random(7), chars=400)
        assert spec.name == "notepad"
        assert spec.script.key_count() >= 380
        assert spec.info["page_downs"] > 0
        assert spec.info["arrows"] > 0

    def test_word_task_has_varied_pauses(self):
        spec = word_task(random.Random(7), chars=300)
        pauses = {
            action.pause_ms
            for action in spec.script
            if isinstance(action, Key) and action.pause_ms is not None
        }
        assert len(pauses) > 50  # per-key variation

    def test_word_task_has_paragraphs_and_backspaces(self):
        spec = word_task(random.Random(7), chars=800)
        keys = [a.key for a in spec.script if isinstance(a, Key)]
        assert keys.count("Enter") >= 4
        assert "Backspace" in keys

    def test_powerpoint_task_structure(self):
        spec = powerpoint_task()
        marks = spec.script.marks()
        assert marks[0] == "start-powerpoint"
        assert "open-document" in marks
        assert "save-document" in marks
        for index in (1, 2, 3):
            assert f"ole-edit-{index}" in marks
        # 45 page-downs through the 46-page deck.
        assert sum(1 for m in marks if m.startswith("page-down")) == 45

    def test_powerpoint_waits_for_slow_ops(self):
        spec = powerpoint_task()
        actions = list(spec.script)
        launch_index = next(
            i for i, a in enumerate(actions) if isinstance(a, Command)
        )
        assert isinstance(actions[launch_index + 1], WaitIdle)

    def test_tasks_deterministic(self):
        a = word_task(random.Random(9), chars=200)
        b = word_task(random.Random(9), chars=200)
        assert [(type(x).__name__, getattr(x, "key", None)) for x in a.script] == [
            (type(x).__name__, getattr(x, "key", None)) for x in b.script
        ]
