"""Property-based tests for sample-trace invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samples import SampleTrace

MS = 1_000_000


@st.composite
def traces(draw):
    """Random plausible idle-loop traces: intervals >= the loop time."""
    loop_ns = draw(st.sampled_from([MS // 4, MS, 4 * MS]))
    count = draw(st.integers(min_value=2, max_value=100))
    extras = draw(
        st.lists(
            st.integers(min_value=0, max_value=50 * MS),
            min_size=count - 1,
            max_size=count - 1,
        )
    )
    times = [0]
    for extra in extras:
        times.append(times[-1] + loop_ns + extra)
    return SampleTrace(times, loop_ns=loop_ns), extras


@given(traces())
@settings(max_examples=100)
def test_total_busy_equals_sum_of_elongations(trace_and_extras):
    trace, extras = trace_and_extras
    assert trace.total_busy_ns() == sum(extras)


@given(traces())
@settings(max_examples=100)
def test_utilization_bounded(trace_and_extras):
    trace, _extras = trace_and_extras
    _times, util = trace.per_sample_utilization()
    assert np.all(util >= 0.0)
    assert np.all(util < 1.0)


@given(traces(), st.integers(min_value=1, max_value=20))
@settings(max_examples=100)
def test_windowed_busy_conserved(trace_and_extras, window_ms):
    """Windowing must neither create nor destroy busy time."""
    trace, extras = trace_and_extras
    _starts, util = trace.utilization_windows(window_ms * MS)
    # Total busy from windows (last window may be clipped at t1).
    t0, t1 = int(trace.times[0]), int(trace.times[-1])
    busy_from_windows = 0.0
    for index, value in enumerate(util):
        w_lo = t0 + index * window_ms * MS
        w_hi = min(w_lo + window_ms * MS, t1)
        busy_from_windows += value * window_ms * MS if w_hi - w_lo == window_ms * MS else value * window_ms * MS
    # Clipping the final window can lose at most one window of busy.
    assert abs(busy_from_windows - sum(extras)) <= (window_ms + 1) * MS


@given(traces())
@settings(max_examples=100)
def test_elongated_covers_all_busy(trace_and_extras):
    trace, extras = trace_and_extras
    # factor=1.0 detects any interval strictly longer than the loop.
    found_busy = sum(busy for _s, _e, busy in trace.elongated(factor=1.0))
    assert found_busy == sum(extras)


@given(traces(), st.data())
@settings(max_examples=50)
def test_slice_preserves_intervals(trace_and_extras, data):
    trace, _extras = trace_and_extras
    t0 = int(trace.times[0])
    t1 = int(trace.times[-1])
    lo = data.draw(st.integers(min_value=t0, max_value=t1))
    hi = data.draw(st.integers(min_value=lo, max_value=t1))
    sliced = trace.slice(lo, hi)
    assert all(lo <= t <= hi for t in sliced.times)
    assert sliced.total_busy_ns() <= trace.total_busy_ns()
