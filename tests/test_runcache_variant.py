"""Fault-plan identity in run-cache keys (the caching regression).

The defect these tests pin down: before variants, a cached *healthy*
``ext-faults`` run could be served for a request that asked for a fault
scenario (or vice versa), because the cache key was only
``(id, seed, code_version)``.  Now the key carries a variant digest of
the run-time configuration, with fault scenarios contributing their
plan *fingerprint* (content identity), not their name.
"""

from __future__ import annotations

import pytest

from repro.core.runcache import RunCache, variant_key
from repro.experiments.parallel import execute_job, job_variant
from repro.faults import get_scenario


def test_variant_key_empty_and_stable():
    assert variant_key(None) == ""
    assert variant_key({}) == ""
    assert variant_key({"a": 1, "b": 2}) == variant_key({"b": 2, "a": 1})
    assert variant_key({"a": 1}) != variant_key({"a": 2})


def test_job_variant_expands_scenario_to_plan_fingerprint():
    kwargs, variant = job_variant("ext-faults", {"scenario": "smoke"})
    assert kwargs == {"scenario": "smoke"}
    assert variant == variant_key(
        {"fault-plan": get_scenario("smoke").fingerprint()}
    )
    # different plans, different variants
    _, degraded = job_variant("ext-faults", {"scenario": "degraded"})
    assert degraded != variant


def test_job_variant_drops_kwargs_the_experiment_rejects():
    kwargs, variant = job_variant("fig2", {"scenario": "smoke"})
    assert kwargs == {} and variant == ""


def test_entry_paths_are_disjoint_per_variant(tmp_path):
    cache = RunCache(tmp_path, version="v1")
    healthy = cache.entry_path("ext-faults", 0)
    faulted = cache.entry_path("ext-faults", 0, "abc123")
    assert healthy != faulted
    assert "vabc123" in faulted.name


def test_load_rejects_entry_with_wrong_variant(tmp_path):
    """Even a hand-moved file cannot cross the healthy/faulted line:
    the entry re-asserts its own variant on load and is evicted."""
    cache = RunCache(tmp_path, version="v1")
    job = execute_job(
        "ext-faults",
        11,
        cache=cache,
        run_kwargs={"scenario": "smoke", "chars": 6, "os_names": ("nt40",)},
    )
    assert job.error is None
    _, variant = job_variant(
        "ext-faults", {"scenario": "smoke", "chars": 6, "os_names": ("nt40",)}
    )
    stored = cache.entry_path("ext-faults", 11, variant)
    assert stored.exists()
    # masquerade as the healthy slot
    healthy_slot = cache.entry_path("ext-faults", 11)
    healthy_slot.write_bytes(stored.read_bytes())
    assert cache.load("ext-faults", 11) is None
    assert not healthy_slot.exists()  # evicted as corruption


def test_cached_healthy_run_never_serves_a_faulted_request(tmp_path):
    """The headline regression, end to end through execute_job."""
    cache = RunCache(tmp_path)
    base_kwargs = {"chars": 6, "os_names": ("nt40",)}

    healthy = execute_job("ext-faults", 9, cache=cache, run_kwargs=base_kwargs)
    assert healthy.error is None and not healthy.cache_hit

    # A faulted request must MISS the healthy entry and run fresh...
    faulted = execute_job(
        "ext-faults",
        9,
        cache=cache,
        run_kwargs=dict(base_kwargs, scenario="smoke"),
    )
    assert faulted.error is None and not faulted.cache_hit
    assert faulted.payload != healthy.payload

    # ...and vice versa: each now hits only its own slot.
    healthy_again = execute_job(
        "ext-faults", 9, cache=cache, run_kwargs=base_kwargs
    )
    assert healthy_again.cache_hit
    assert healthy_again.payload == healthy.payload
    faulted_again = execute_job(
        "ext-faults",
        9,
        cache=cache,
        run_kwargs=dict(base_kwargs, scenario="smoke"),
    )
    assert faulted_again.cache_hit
    assert faulted_again.payload == faulted.payload


def test_default_configuration_uses_the_unsuffixed_slot(tmp_path):
    cache = RunCache(tmp_path)
    job = execute_job("fig4", 0, cache=cache)
    assert job.error is None
    assert cache.entry_path("fig4", 0).exists()
    hit = execute_job("fig4", 0, cache=cache)
    assert hit.cache_hit
