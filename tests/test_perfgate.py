"""Unit tests for the perf-regression gate (src/repro/perfgate.py)."""

import json

import pytest

from repro.perfgate import (
    SPEEDUP_FLOOR,
    collect_metrics,
    compare_metrics,
    main,
)


def _raw(medians, extras=None):
    """Build a minimal pytest-benchmark JSON document."""
    extras = extras or {}
    return {
        "benchmarks": [
            {
                "name": name,
                "stats": {"median": median},
                "extra_info": extras.get(name, {}),
            }
            for name, median in medians.items()
        ]
    }


REFERENCE = "test_engine_event_throughput"


class TestCollect:
    def test_reference_anchors_relative_cost(self):
        metrics = collect_metrics(_raw({REFERENCE: 0.08, "test_other": 0.02}))
        benches = metrics["benchmarks"]
        assert benches[REFERENCE]["relative_cost"] == 1.0
        assert benches["test_other"]["relative_cost"] == pytest.approx(0.25)

    def test_extra_info_derives_throughput(self):
        metrics = collect_metrics(
            _raw(
                {REFERENCE: 0.1},
                extras={REFERENCE: {"events": 100_000, "sim_ns": 10**9}},
            )
        )
        entry = metrics["benchmarks"][REFERENCE]
        assert entry["events_per_s"] == pytest.approx(1_000_000)
        assert entry["sim_ns_per_wall_ms"] == pytest.approx(10**9 / 100.0)

    def test_speedup_passes_through(self):
        metrics = collect_metrics(
            _raw(
                {REFERENCE: 0.1, "test_ablation": 0.02},
                extras={"test_ablation": {"idle_ff_speedup": 7.5}},
            )
        )
        assert metrics["benchmarks"]["test_ablation"]["idle_ff_speedup"] == 7.5

    def test_missing_reference_rejected(self):
        with pytest.raises(ValueError):
            collect_metrics(_raw({"test_other": 0.02}))

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            collect_metrics({"benchmarks": []})


class TestCompare:
    def _metrics(self, median, speedup=None):
        extras = {"test_x": {"events": 1000}}
        if speedup is not None:
            extras["test_x"]["idle_ff_speedup"] = speedup
        return collect_metrics(
            _raw({REFERENCE: 0.1, "test_x": median}, extras=extras)
        )

    def test_identical_runs_pass(self):
        metrics = self._metrics(0.05)
        assert compare_metrics(metrics, metrics) == []

    def test_small_drift_tolerated(self):
        baseline = self._metrics(0.05)
        current = self._metrics(0.055)  # 10% slower: within 25%
        assert compare_metrics(current, baseline) == []

    def test_large_regression_fails(self):
        baseline = self._metrics(0.05)
        current = self._metrics(0.08)  # 60% slower
        problems = compare_metrics(current, baseline)
        assert problems
        assert any("relative_cost" in p for p in problems)
        assert any("events_per_s" in p for p in problems)

    def test_improvement_passes(self):
        baseline = self._metrics(0.05)
        current = self._metrics(0.01)
        assert compare_metrics(current, baseline) == []

    def test_missing_benchmark_fails(self):
        baseline = self._metrics(0.05)
        current = collect_metrics(_raw({REFERENCE: 0.1}))
        problems = compare_metrics(current, baseline)
        assert any("missing" in p for p in problems)

    def test_speedup_floor_enforced_absolutely(self):
        # Even against a baseline that itself sits below the floor.
        baseline = self._metrics(0.05, speedup=4.0)
        current = self._metrics(0.05, speedup=4.0)
        problems = compare_metrics(current, baseline)
        assert any("floor" in p for p in problems)
        healthy = self._metrics(0.05, speedup=SPEEDUP_FLOOR + 1)
        assert compare_metrics(healthy, healthy) == []

    def test_custom_tolerance(self):
        baseline = self._metrics(0.05)
        current = self._metrics(0.07)  # 40% slower
        assert compare_metrics(current, baseline, tolerance=0.5) == []
        assert compare_metrics(current, baseline, tolerance=0.1)


class TestCli:
    def test_collect_then_check_roundtrip(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(_raw({REFERENCE: 0.1, "test_x": 0.05})))
        baseline = tmp_path / "baseline.json"
        assert main(["collect", str(raw), "-o", str(baseline)]) == 0
        assert main(["check", str(raw), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "perfgate: ok" in out

    def test_check_exit_1_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(collect_metrics(_raw({REFERENCE: 0.1, "test_x": 0.01})))
        )
        current = tmp_path / "current.json"
        current.write_text(json.dumps(_raw({REFERENCE: 0.1, "test_x": 0.05})))
        assert main(["check", str(current), "--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_exit_2_on_missing_file(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_collect_to_stdout(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(_raw({REFERENCE: 0.1})))
        assert main(["collect", str(raw)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == 1
