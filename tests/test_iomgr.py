"""Unit tests for the I/O manager."""

import pytest

from repro.core.fsm import (
    StateInput,
    UserState,
    classify_timeline,
    spans_to_transitions,
)
from repro.sim.devices.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.timebase import ns_from_ms
from repro.winsys.filesystem import BufferCache, FileSystem
from repro.winsys.iomgr import IoManager
from repro.winsys.nt40 import PERSONALITY


@pytest.fixture
def io_setup(sim):
    disk = Disk(sim, RngStreams(0))
    cache = BufferCache(64)
    iomgr = IoManager(disk, cache, PERSONALITY)
    disk.set_interrupt_sink(lambda vector, request: iomgr.on_disk_complete(request))
    fs = FileSystem(total_blocks=disk.geometry.total_blocks)
    return sim, disk, cache, iomgr, fs


class TestPlanning:
    def test_cold_read_plans_requests(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 8 * 4096)
        plan = iomgr.plan_read(file, 0, 8 * 4096)
        assert not plan.all_cached
        assert sum(r.count for r in plan.requests) == 8

    def test_contiguous_misses_coalesce(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 8 * 4096)
        plan = iomgr.plan_read(file, 0, 8 * 4096)
        assert len(plan.requests) == 1  # one contiguous NTFS extent

    def test_warm_read_all_cached(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        cache.insert(file.blocks(0, 4 * 4096, 4096))
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        assert plan.all_cached
        assert plan.cpu_work.cycles > 0  # copies still cost CPU

    def test_partial_hit(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        blocks = file.blocks(0, 4 * 4096, 4096)
        cache.insert(blocks[:2])
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        assert sum(r.count for r in plan.requests) == 2

    def test_write_goes_to_disk(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        plan = iomgr.plan_write(file, 0, 2 * 4096)
        assert sum(r.count for r in plan.requests) == 2
        assert all(r.is_write for r in plan.requests)

    def test_write_populates_cache(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        iomgr.plan_write(file, 0, 4 * 4096)
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        assert plan.all_cached


class TestSubmission:
    def test_all_cached_completes_immediately(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4096)
        cache.insert(file.blocks(0, 4096, 4096))
        plan = iomgr.plan_read(file, 0, 4096)
        done = []
        iomgr.submit(plan, on_done=lambda: done.append(sim.now))
        assert done == [0]

    def test_completion_after_disk(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        done = []
        iomgr.submit(plan, on_done=lambda: done.append(sim.now))
        assert done == []
        sim.run()
        assert len(done) == 1 and done[0] > 0

    def test_disk_fill_makes_reread_cached(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        iomgr.submit(iomgr.plan_read(file, 0, 4 * 4096), on_done=lambda: None)
        sim.run()
        assert iomgr.plan_read(file, 0, 4 * 4096).all_cached

    def test_outstanding_sync_tracking(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4096)
        observed = []
        iomgr.add_sync_observer(observed.append)
        iomgr.submit(iomgr.plan_read(file, 0, 4096), on_done=lambda: None, sync=True)
        assert iomgr.outstanding_sync == 1
        sim.run()
        assert iomgr.outstanding_sync == 0
        assert observed == [1, 0]

    def test_async_does_not_count_as_sync(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4096)
        iomgr.submit(iomgr.plan_read(file, 0, 4096), on_done=lambda: None, sync=False)
        assert iomgr.outstanding_sync == 0
        assert iomgr.pending_ops == 1
        sim.run()
        assert iomgr.pending_ops == 0

    def test_multi_request_plan_completes_once(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        fs_fat = FileSystem(total_blocks=100_000, kind="fat", fat_extent_blocks=2)
        file = fs_fat.create("frag", 8 * 4096)
        plan = iomgr.plan_read(file, 0, 8 * 4096)
        assert len(plan.requests) > 1
        done = []
        iomgr.submit(plan, on_done=lambda: done.append(True))
        sim.run()
        assert done == [True]


def _traced_sync_read(stall_ns=0):
    """One synchronous read through a fresh stack, optionally behind an
    injected disk stall, tracing every ``outstanding_sync`` change.

    Returns ``(iomgr, sync_spans, done_at_ns)`` where ``sync_spans`` is
    the [(start, end), ...] record a sync observer would feed the FSM.
    This mirrors exactly how the fault injector degrades the disk: a
    service-time modifier that holds requests until a deadline passes.
    """
    sim = Simulator()
    disk = Disk(sim, RngStreams(0))
    cache = BufferCache(64)
    iomgr = IoManager(disk, cache, PERSONALITY)
    disk.set_interrupt_sink(lambda vector, request: iomgr.on_disk_complete(request))
    fs = FileSystem(total_blocks=disk.geometry.total_blocks)
    if stall_ns:
        disk.add_service_time_modifier(
            lambda request, base_ns: max(0, stall_ns - sim.now)
        )

    transitions = []  # (time_ns, outstanding) pairs from the observer
    iomgr.add_sync_observer(lambda value: transitions.append((sim.now, value)))

    file = fs.create("probe", 4096)
    done = []
    iomgr.submit(iomgr.plan_read(file, 0, 4096), on_done=lambda: done.append(sim.now), sync=True)
    sim.run()
    assert len(done) == 1

    spans, open_since = [], None
    for time_ns, value in transitions:
        if value > 0 and open_since is None:
            open_since = time_ns
        elif value == 0 and open_since is not None:
            spans.append((open_since, time_ns))
            open_since = None
    assert open_since is None  # every sync window closed
    return iomgr, spans, done[0]


class TestInjectedStalls:
    """A stalled disk must surface as Figure 2 user *wait* time.

    The fault injector's only lever on the disk is a service-time
    modifier; these tests pin the whole causal chain from that modifier
    through ``outstanding_sync`` and ``sync_wait_ns`` into the
    wait/think FSM classification.
    """

    # Far past the 100 ms perception threshold, so the FSM has to call
    # the stall a *noticeable* wait rather than absorbing it.
    STALL_NS = ns_from_ms(150.0)

    def test_stall_extends_sync_window(self):
        _iomgr, healthy, done_healthy = _traced_sync_read()
        _iomgr, stalled, done_stalled = _traced_sync_read(self.STALL_NS)
        assert len(healthy) == len(stalled) == 1
        assert done_stalled >= done_healthy + self.STALL_NS - ns_from_ms(1.0)
        assert (stalled[0][1] - stalled[0][0]) > (healthy[0][1] - healthy[0][0])

    def test_stall_accumulates_sync_wait_ns(self):
        healthy_iomgr, _, _ = _traced_sync_read()
        stalled_iomgr, _, _ = _traced_sync_read(self.STALL_NS)
        assert healthy_iomgr.sync_wait_ns > 0
        extra = stalled_iomgr.sync_wait_ns - healthy_iomgr.sync_wait_ns
        # The full stall lands in sync-I/O wait (modulo sub-ms rounding
        # of where the request sat when the deadline was set).
        assert extra >= self.STALL_NS - ns_from_ms(1.0)
        assert stalled_iomgr.disk.injected_service_ns >= extra

    def test_fsm_classifies_stall_as_wait(self):
        _iomgr, spans, done_ns = _traced_sync_read(self.STALL_NS)
        transitions = spans_to_transitions(spans, StateInput.SYNC_IO)
        fsm_spans, summary = classify_timeline(transitions, 0, done_ns)
        wait = [s for s in fsm_spans if s.state == UserState.WAIT]
        assert len(wait) == 1
        assert summary.wait_ns >= self.STALL_NS
        # A 25 ms stall is far past the perception threshold: the FSM
        # must report it as *noticeable* wait, not absorbed think time.
        assert summary.noticeable_wait_ns == summary.wait_ns
        assert summary.unnoticeable_wait_ns == 0

    def test_healthy_read_can_be_unnoticeable(self):
        _iomgr, spans, done_ns = _traced_sync_read()
        transitions = spans_to_transitions(spans, StateInput.SYNC_IO)
        _fsm_spans, summary = classify_timeline(transitions, 0, done_ns)
        assert summary.wait_ns > 0
        assert summary.wait_ns < self.STALL_NS

    def test_modifier_removal_restores_baseline(self):
        sim = Simulator()
        disk = Disk(sim, RngStreams(0))
        cache = BufferCache(64)
        iomgr = IoManager(disk, cache, PERSONALITY)
        disk.set_interrupt_sink(
            lambda vector, request: iomgr.on_disk_complete(request)
        )
        fs = FileSystem(total_blocks=disk.geometry.total_blocks)
        file = fs.create("probe", 2 * 4096)

        modifier = lambda request, base_ns: self.STALL_NS
        disk.add_service_time_modifier(modifier)
        iomgr.submit(iomgr.plan_read(file, 0, 4096), on_done=lambda: None)
        sim.run()
        injected_during = disk.injected_service_ns
        assert injected_during >= self.STALL_NS

        disk.remove_service_time_modifier(modifier)
        iomgr.submit(iomgr.plan_read(file, 4096, 4096), on_done=lambda: None)
        sim.run()
        assert disk.injected_service_ns == injected_during  # no new charge
        # Removing an already-removed modifier is a no-op, as the
        # injector's window-end teardown relies on.
        disk.remove_service_time_modifier(modifier)
