"""Unit tests for the I/O manager."""

import pytest

from repro.sim.devices.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.winsys.filesystem import BufferCache, FileSystem
from repro.winsys.iomgr import IoManager
from repro.winsys.nt40 import PERSONALITY


@pytest.fixture
def io_setup(sim):
    disk = Disk(sim, RngStreams(0))
    cache = BufferCache(64)
    iomgr = IoManager(disk, cache, PERSONALITY)
    disk.set_interrupt_sink(lambda vector, request: iomgr.on_disk_complete(request))
    fs = FileSystem(total_blocks=disk.geometry.total_blocks)
    return sim, disk, cache, iomgr, fs


class TestPlanning:
    def test_cold_read_plans_requests(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 8 * 4096)
        plan = iomgr.plan_read(file, 0, 8 * 4096)
        assert not plan.all_cached
        assert sum(r.count for r in plan.requests) == 8

    def test_contiguous_misses_coalesce(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 8 * 4096)
        plan = iomgr.plan_read(file, 0, 8 * 4096)
        assert len(plan.requests) == 1  # one contiguous NTFS extent

    def test_warm_read_all_cached(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        cache.insert(file.blocks(0, 4 * 4096, 4096))
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        assert plan.all_cached
        assert plan.cpu_work.cycles > 0  # copies still cost CPU

    def test_partial_hit(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        blocks = file.blocks(0, 4 * 4096, 4096)
        cache.insert(blocks[:2])
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        assert sum(r.count for r in plan.requests) == 2

    def test_write_goes_to_disk(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        plan = iomgr.plan_write(file, 0, 2 * 4096)
        assert sum(r.count for r in plan.requests) == 2
        assert all(r.is_write for r in plan.requests)

    def test_write_populates_cache(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        iomgr.plan_write(file, 0, 4 * 4096)
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        assert plan.all_cached


class TestSubmission:
    def test_all_cached_completes_immediately(self, io_setup):
        sim, _disk, cache, iomgr, fs = io_setup
        file = fs.create("a", 4096)
        cache.insert(file.blocks(0, 4096, 4096))
        plan = iomgr.plan_read(file, 0, 4096)
        done = []
        iomgr.submit(plan, on_done=lambda: done.append(sim.now))
        assert done == [0]

    def test_completion_after_disk(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        plan = iomgr.plan_read(file, 0, 4 * 4096)
        done = []
        iomgr.submit(plan, on_done=lambda: done.append(sim.now))
        assert done == []
        sim.run()
        assert len(done) == 1 and done[0] > 0

    def test_disk_fill_makes_reread_cached(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4 * 4096)
        iomgr.submit(iomgr.plan_read(file, 0, 4 * 4096), on_done=lambda: None)
        sim.run()
        assert iomgr.plan_read(file, 0, 4 * 4096).all_cached

    def test_outstanding_sync_tracking(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4096)
        observed = []
        iomgr.add_sync_observer(observed.append)
        iomgr.submit(iomgr.plan_read(file, 0, 4096), on_done=lambda: None, sync=True)
        assert iomgr.outstanding_sync == 1
        sim.run()
        assert iomgr.outstanding_sync == 0
        assert observed == [1, 0]

    def test_async_does_not_count_as_sync(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        file = fs.create("a", 4096)
        iomgr.submit(iomgr.plan_read(file, 0, 4096), on_done=lambda: None, sync=False)
        assert iomgr.outstanding_sync == 0
        assert iomgr.pending_ops == 1
        sim.run()
        assert iomgr.pending_ops == 0

    def test_multi_request_plan_completes_once(self, io_setup):
        sim, _disk, _cache, iomgr, fs = io_setup
        fs_fat = FileSystem(total_blocks=100_000, kind="fat", fat_extent_blocks=2)
        file = fs_fat.create("frag", 8 * 4096)
        plan = iomgr.plan_read(file, 0, 8 * 4096)
        assert len(plan.requests) > 1
        done = []
        iomgr.submit(plan, on_done=lambda: done.append(True))
        sim.run()
        assert done == [True]
