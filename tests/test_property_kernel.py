"""Property-based tests for kernel scheduling invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.timebase import cycles_to_ns, ns_from_ms
from repro.winsys import Compute, boot

# Keep workloads small: each example boots a full system.
workloads = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),  # priority
        st.integers(min_value=10_000, max_value=2_000_000),  # cycles
    ),
    min_size=1,
    max_size=6,
)


def run_workload(threads):
    system = boot("nt40")
    completions = {}

    def make_program(tag, cycles):
        def program():
            yield Compute(system.personality.app_work(cycles))
            completions[tag] = system.now

        return program()

    for index, (priority, cycles) in enumerate(threads):
        system.spawn(f"t{index}", make_program(index, cycles), priority=priority)
    system.run_for(ns_from_ms(2000))
    return system, completions


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_all_threads_complete(threads):
    _system, completions = run_workload(threads)
    assert len(completions) == len(threads)


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_strictly_higher_priority_finishes_first(threads):
    """With all threads ready at boot, a higher-priority thread always
    completes before any strictly lower-priority one."""
    _system, completions = run_workload(threads)
    for i, (priority_i, _c) in enumerate(threads):
        for j, (priority_j, _c2) in enumerate(threads):
            if priority_i > priority_j:
                assert completions[i] < completions[j], (threads, completions)


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_busy_time_conserved(threads):
    """CPU busy time = requested work + bounded system overhead."""
    system, completions = run_workload(threads)
    requested_ns = sum(cycles_to_ns(cycles) for _p, cycles in threads)
    busy = system.machine.cpu.busy_ns
    assert busy >= requested_ns
    # Overhead: clock ISRs + tick/housekeeping DPCs over the 2 s window.
    overhead_budget = ns_from_ms(40)
    assert busy <= requested_ns + overhead_budget


@given(workloads)
@settings(max_examples=30, deadline=None)
def test_completion_time_lower_bound(threads):
    """No thread finishes before its own work could possibly complete."""
    _system, completions = run_workload(threads)
    for index, (_priority, cycles) in enumerate(threads):
        assert completions[index] >= cycles_to_ns(cycles)
