"""Observability must never change results (satellite of the obs layer).

Instrumentation only *reads* the simulated clock — it schedules no
events and draws no randomness — so archival payloads must be
byte-identical and golden digests unchanged with a session open.
"""

import json

import pytest

from repro.core.serialize import experiment_to_dict
from repro.experiments.registry import run_experiment
from repro.obs import observed
from repro.verify.golden import GOLDEN_SET, payload_digest


def _payload_bytes(experiment_id, seed):
    result = run_experiment(experiment_id, seed=seed)
    return json.dumps(
        experiment_to_dict(result), indent=2, sort_keys=True
    ).encode()


@pytest.mark.parametrize("experiment_id,seed", GOLDEN_SET)
def test_payloads_byte_identical_with_obs_on(experiment_id, seed):
    baseline = _payload_bytes(experiment_id, seed)
    with observed(trace=True, metrics=True):
        instrumented = _payload_bytes(experiment_id, seed)
    assert instrumented == baseline


def test_golden_digests_unchanged_under_observation():
    experiment_id, seed = GOLDEN_SET[0]
    plain = payload_digest(
        experiment_to_dict(run_experiment(experiment_id, seed=seed))
    )
    with observed(trace=True, metrics=True):
        observed_digest = payload_digest(
            experiment_to_dict(run_experiment(experiment_id, seed=seed))
        )
    assert observed_digest == plain


def test_instrumentation_actually_attached_while_observed():
    """Guard against vacuous determinism: the observed run above must
    really have been instrumented, not silently un-hooked."""
    experiment_id, seed = GOLDEN_SET[0]
    with observed(trace=True, metrics=True) as session:
        run_experiment(experiment_id, seed=seed)
        assert len(session.tracer.events()) > 0
        snapshot = session.metrics_snapshot()
    assert snapshot["counters"]
