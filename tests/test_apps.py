"""Unit tests for the application models (echo, notepad, word, shell)."""

import pytest

from repro.apps import EchoApp, NotepadApp, ShellApp, WordApp
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot


def settle(system, ms=200):
    system.run_for(ns_from_ms(ms))


class TestEchoApp:
    def test_echoes_and_timestamps(self, nt40):
        app = EchoApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        for _ in range(3):
            nt40.machine.keyboard.keystroke("a")
            settle(nt40, 100)
        assert app.chars_echoed == 3
        assert len(app.timestamp_latencies_ns) == 3
        # Timestamped latency covers the compute (~7 ms).
        assert all(5e6 < t < 10e6 for t in app.timestamp_latencies_ns)

    def test_timestamps_miss_input_path(self, nt40):
        """The Figure 1 argument: app-level timing < total busy time."""
        app = EchoApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("a")
        settle(nt40, 100)
        total_busy = nt40.machine.cpu.busy_ns - busy_before
        assert total_busy > app.timestamp_latencies_ns[0] + 1_000_000


class TestNotepadApp:
    def test_printable_char_updates_buffer(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        length_before = app.length
        nt40.machine.keyboard.keystroke("x")
        settle(nt40, 50)
        assert app.length == length_before + 1
        assert app.keystrokes >= 1

    def test_newline_refreshes_screen(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        nt40.machine.keyboard.keystroke("Enter")
        settle(nt40, 100)
        assert app.refreshes == 1

    def test_pagedown_refresh_is_long_event(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("PageDown")
        settle(nt40, 200)
        busy = nt40.machine.cpu.busy_ns - busy_before
        assert busy > ns_from_ms(20)  # the >= ~28 ms class

    def test_char_is_short_event(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("x")
        settle(nt40, 100)
        busy = nt40.machine.cpu.busy_ns - busy_before
        assert busy < ns_from_ms(10)

    def test_backspace(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        length_before = app.length
        nt40.machine.keyboard.keystroke("Backspace")
        settle(nt40, 50)
        assert app.length == length_before - 1


class TestWordApp:
    def test_char_queues_background_units(self, nt40):
        app = WordApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        nt40.machine.keyboard.keystroke("a")
        settle(nt40, 30)
        assert app.chars_typed == 1
        assert len(app._pending) >= 4

    def test_queuesync_drains_pending(self, nt40):
        app = WordApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        nt40.machine.keyboard.keystroke("a")
        settle(nt40, 60)
        assert len(app._pending) > 0
        nt40.post_queuesync()
        settle(nt40, 200)
        assert len(app._pending) == 0
        assert app.bg_units_run >= 4

    def test_timer_drains_lazily_on_nt(self, nt40):
        app = WordApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        nt40.machine.keyboard.keystroke("a")
        settle(nt40, 1500)  # several timer periods
        assert len(app._pending) == 0
        assert app.bg_units_run >= 4

    def test_carriage_return_forces_paragraph_work(self, nt40):
        app = WordApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("Enter")
        settle(nt40, 300)
        assert app.paragraphs == 1
        assert nt40.machine.cpu.busy_ns - busy_before > ns_from_ms(40)

    def test_win95_busy_polls_after_event(self, win95):
        app = WordApp(win95)
        app.start(foreground=True)
        settle(win95, 5)
        win95.machine.keyboard.keystroke("a")
        settle(win95, 1000)
        # One second later the system is still not idle (the Section
        # 5.4 breakage).
        assert not win95.quiescent()

    def test_nt_goes_idle_after_draining(self, nt40):
        app = WordApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        nt40.machine.keyboard.keystroke("a")
        settle(nt40, 2000)
        assert nt40.quiescent()


class TestShellApp:
    def test_maximize_runs_animation(self, nt40):
        app = ShellApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        nt40.post_command("maximize")
        settle(nt40, 1000)
        assert app.maximizes_completed == 1

    def test_animation_takes_several_hundred_ms(self, nt40):
        app = ShellApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        start = nt40.now
        nt40.post_command("maximize")
        nt40.run_until_quiescent(max_ns=nt40.now + ns_from_ms(3000))
        duration = nt40.now - start
        assert ns_from_ms(350) < duration < ns_from_ms(900)

    def test_unbound_key_uses_default_path(self, nt40):
        app = ShellApp(nt40)
        app.start(foreground=True)
        settle(nt40, 5)
        busy_before = nt40.machine.cpu.busy_ns
        nt40.machine.keyboard.keystroke("F5")
        settle(nt40, 50)
        busy = nt40.machine.cpu.busy_ns - busy_before
        assert ns_from_ms(0.5) < busy < ns_from_ms(8)
