"""Tests for input capture and exact replay."""

import pytest

from repro.apps import NotepadApp
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot
from repro.workload.mstest import MsTestDriver
from repro.workload.replay import Recording, ReplayDriver
from repro.workload.script import InputScript, Key
from repro.workload.typist import TypistDriver


def run_typist(seed=3):
    system = boot("nt40", seed=seed)
    app = NotepadApp(system)
    app.start(foreground=True)
    system.run_for(ns_from_ms(5))
    driver = TypistDriver(system, InputScript([Key(c) for c in "replay me"]))
    driver.run_to_completion()
    return system, app, driver


class TestRecording:
    def test_capture_from_typist(self):
        _system, _app, driver = run_typist()
        recording = Recording.from_driver(driver)
        assert len(recording) == len("replay me")
        assert recording.entries[0][0] == 0  # normalized to origin
        assert recording.duration_ns > 0

    def test_empty_recording(self):
        class FakeDriver:
            injection_times = []
            _injected_actions = []

        recording = Recording.from_driver(FakeDriver())
        assert len(recording) == 0
        assert recording.duration_ns == 0


class TestReplayDriver:
    def test_replay_preserves_exact_offsets(self):
        _system, _app, driver = run_typist()
        recording = Recording.from_driver(driver)
        original_gaps = [
            b - a
            for a, b in zip(driver.injection_times, driver.injection_times[1:])
        ]

        target = boot("nt351", seed=99)  # different OS, different seed
        app = NotepadApp(target)
        app.start(foreground=True)
        target.run_for(ns_from_ms(5))
        replay = ReplayDriver(target, recording)
        replay.run_to_completion()
        replay_gaps = [
            b - a
            for a, b in zip(replay.injection_times, replay.injection_times[1:])
        ]
        assert replay_gaps == original_gaps  # exact, to the nanosecond
        assert app.keystrokes >= len("replay me")

    def test_recorded_script_approximates_timing(self):
        system, _app, driver = run_typist()
        script = driver.recorded_script()
        assert script.key_count() == len("replay me")
        # Pauses reflect the observed gaps.
        pauses = [a.pause_ms for a in script if isinstance(a, Key)][:-1]
        gaps_ms = [
            (b - a) / 1e6
            for a, b in zip(driver.injection_times, driver.injection_times[1:])
        ]
        for pause, gap in zip(pauses, gaps_ms):
            assert pause == pytest.approx(gap)

    def test_replay_cross_os_same_input_different_latency(self):
        _system, _app, driver = run_typist()
        recording = Recording.from_driver(driver)

        def measure(os_name):
            from repro.core import EventExtractor, IdleLoopInstrument, MessageApiMonitor

            system = boot(os_name, seed=1)
            app = NotepadApp(system)
            app.start(foreground=True)
            instrument = IdleLoopInstrument(system)
            instrument.install()
            monitor = MessageApiMonitor(system, thread_name=app.name)
            monitor.attach()
            system.run_for(ns_from_ms(5))
            ReplayDriver(system, recording).run_to_completion()
            extraction = EventExtractor(
                monitor=monitor, merge_gap_ns=ns_from_ms(2)
            ).extract(instrument.trace())
            return extraction.profile.mean_ms()

        nt40_mean = measure("nt40")
        nt351_mean = measure("nt351")
        # Identical input stream, measurably different responsiveness.
        assert nt351_mean > nt40_mean

    def test_timeout(self):
        _system, _app, driver = run_typist()
        recording = Recording.from_driver(driver)
        target = boot("nt40", seed=5)
        NotepadApp(target).start(foreground=True)
        replay = ReplayDriver(target, recording)
        with pytest.raises(TimeoutError):
            replay.run_to_completion(max_seconds=0.05)
