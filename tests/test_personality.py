"""Unit tests for OS personalities and their paper-derived structure."""

import pytest

from repro.sim.work import HwEvent
from repro.winsys import PERSONALITIES
from repro.winsys.nt351 import PERSONALITY as NT351
from repro.winsys.nt40 import PERSONALITY as NT40
from repro.winsys.personality import (
    DATA_REFS_PER_CYCLE,
    INSTRUCTIONS_PER_CYCLE,
    annotate_proportional,
)
from repro.winsys.win95 import PERSONALITY as WIN95


class TestAnnotation:
    def test_instructions_proportional(self):
        work = annotate_proportional(10_000, {})
        assert work.count(HwEvent.INSTRUCTIONS) == round(
            10_000 * INSTRUCTIONS_PER_CYCLE
        )
        assert work.count(HwEvent.DATA_REFS) == round(10_000 * DATA_REFS_PER_CYCLE)

    def test_per_kcycle_rates(self):
        work = annotate_proportional(50_000, {HwEvent.ITLB_MISS: 2.0})
        assert work.count(HwEvent.ITLB_MISS) == 100

    def test_tiny_counts_round_away(self):
        work = annotate_proportional(100, {HwEvent.ITLB_MISS: 1.0})
        assert work.count(HwEvent.ITLB_MISS) == 0


class TestWorkConstructors:
    def test_app_work_identical_across_oses(self):
        """Pure computation is OS-independent (SPEC-style code)."""
        works = [p.app_work(1_000_000) for p in PERSONALITIES.values()]
        assert len({w.cycles for w in works}) == 1

    def test_gui_work_scales_by_factor(self):
        base = 1_000_000
        assert NT351.gui_work(base).cycles == round(base * 1.75)
        assert NT40.gui_work(base).cycles == base
        assert WIN95.gui_work(base).cycles == round(base * 1.45)

    def test_user_work_order(self):
        """16-bit USER slowest; NT 4.0 fastest."""
        costs = {name: p.user_work(100_000).cycles for name, p in PERSONALITIES.items()}
        assert costs["nt40"] < costs["nt351"] < costs["win95"]

    def test_gui_work_carries_tlb_annotations(self):
        work = NT351.gui_work(1_000_000)
        per_kcycle = (
            work.count(HwEvent.ITLB_MISS) + work.count(HwEvent.DTLB_MISS)
        ) / (work.cycles / 1000)
        assert per_kcycle == pytest.approx(7.9, rel=0.05)

    def test_win95_gui_work_segment_heavy(self):
        work = WIN95.gui_work(1_000_000)
        assert work.count(HwEvent.SEGMENT_LOADS) > 10 * NT40.gui_work(
            1_000_000
        ).count(HwEvent.SEGMENT_LOADS)


class TestPaperDerivedKnobs:
    def test_three_personalities(self):
        assert set(PERSONALITIES) == {"nt351", "nt40", "win95"}

    def test_nt40_clock_isr_400_cycles(self):
        assert NT40.clock_isr_cycles == 400  # Section 2.5

    def test_nt351_crossing_costs_highest(self):
        assert NT351.user_call_cycles > NT40.user_call_cycles
        assert NT351.gdi_flush_cycles > NT40.gdi_flush_cycles

    def test_win95_busywait_flag(self):
        assert WIN95.mouse_click_busywait
        assert not NT40.mouse_click_busywait
        assert not NT351.mouse_click_busywait

    def test_win95_queuesync_much_slower(self):
        assert WIN95.queuesync_cycles > 10 * NT40.queuesync_cycles

    def test_win95_idle_background(self):
        assert WIN95.idle_background_period_ns > 0
        assert NT40.idle_background_period_ns == 0

    def test_win95_breaks_word_idle_detection(self):
        assert not WIN95.app_idle_detection_reliable
        assert NT40.app_idle_detection_reliable

    def test_nt40_save_factor_inversion(self):
        assert NT40.save_write_factor > NT351.save_write_factor

    def test_filesystem_kinds(self):
        assert NT351.filesystem_kind == "ntfs"
        assert NT40.filesystem_kind == "ntfs"
        assert WIN95.filesystem_kind == "fat"

    def test_gui_generations(self):
        # NT 4.0 adopted the Win95-style GUI; NT 3.51 kept the classic.
        assert NT351.gui_generation == "classic"
        assert NT40.gui_generation == WIN95.gui_generation == "new"
