"""Healable chaos: the recovery machinery must restore byte-identity.

Acceptance bar (ISSUE 7): for every *healable* chaos schedule —
crashes, hangs, stragglers, torn transport, torn artifact writes, full
disks — retries, hedging and quarantine re-runs heal the sweep and the
merged fleet digest is **byte-identical** to the chaos-free run.
"""

import time

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosPlan,
    ChaosSpec,
    chaos_payload,
)
from repro.core.runcache import RunCache
from repro.experiments.parallel import run_specs
from repro.fleet.population import PopulationConfig
from repro.fleet.shards import batch_job_id, execute_fleet_batch, run_fleet

_CONFIG = dict(seed=7, size=18, chars_range=(3, 5))


def _config() -> PopulationConfig:
    return PopulationConfig(**_CONFIG)


@pytest.fixture(scope="module")
def clean():
    """The chaos-free reference sweep."""
    return run_fleet(_config(), shards=1, batch_size=5)


def _assert_healed(fleet, clean) -> None:
    assert fleet.digest == clean.digest  # byte-identical merge
    assert fleet.complete
    assert fleet.digest_scope == "complete"
    assert not fleet.failures
    assert (
        fleet.sessions_expected
        == fleet.sessions_completed
        + fleet.sessions_quarantined
        + fleet.sessions_skipped
    )


@pytest.mark.parametrize(
    "scenario", ["flaky-crash", "stragglers", "corrupt-results", "mayhem"]
)
def test_healable_scenarios_restore_digest(scenario, clean, tmp_path):
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=5,
        retries=2,
        cache=RunCache(tmp_path / "cache"),
        chaos=scenario,
        chaos_seed=3,
    )
    _assert_healed(fleet, clean)
    assert fleet.chaos == {
        "plan": scenario,
        "seed": 3,
        "kinds": fleet.chaos["kinds"],
    }


def test_hung_batches_heal_via_watchdog_and_recovery(clean):
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=5,
        timeout_s=0.8,
        chaos="hung-batches",
        chaos_seed=2,
    )
    _assert_healed(fleet, clean)
    # The hang fired somewhere (else this test is vacuous) and every
    # hung batch came back through the recovery channel.
    assert fleet.recovery is not None
    assert fleet.recovery["healed_sessions"] > 0
    assert all(
        entry["failure_kind"] == "timeout"
        for entry in fleet.recovery["observed_failures"]
    )


def test_torn_cache_yields_clean_results_and_degraded_cache(clean, tmp_path):
    cache = RunCache(tmp_path / "cache")
    first = run_fleet(
        _config(),
        shards=1,
        batch_size=5,
        cache=cache,
        chaos="torn-cache",
        chaos_seed=1,
    )
    _assert_healed(first, clean)
    # Every cache entry this run wrote is torn; a fresh chaos-free run
    # over the same cache must evict them as misses and still converge
    # on the identical digest.
    second = run_fleet(_config(), shards=1, batch_size=5, cache=cache)
    _assert_healed(second, clean)


def test_disk_full_degrades_writes_not_results(clean, tmp_path):
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=5,
        cache=RunCache(tmp_path / "cache"),
        chaos="disk-full",
        chaos_seed=1,
    )
    _assert_healed(fleet, clean)


def test_chaos_schedule_replays_identically(tmp_path):
    """Same (plan, seed): the same batches fail, the same sessions are
    quarantined — a chaos bug report is two integers and a name."""
    runs = [
        run_fleet(
            _config(),
            shards=1,
            batch_size=5,
            chaos="poison-sessions",
            chaos_seed=5,
        )
        for _ in range(2)
    ]
    assert runs[0].digest == runs[1].digest
    assert [e["index"] for e in runs[0].quarantined] == [
        e["index"] for e in runs[1].quarantined
    ]


def test_attempt_history_records_crash_then_heal():
    """A crash windowed to attempt 0 plus one retry: the job's attempt
    history must read ['pool', 'ok'] with both attempts counted."""
    config = PopulationConfig(seed=3, size=4, chars_range=(3, 4))
    plan = ChaosPlan(
        "crash-once",
        (ChaosSpec.make("c", "crash", probability=1.0, max_attempt=1),),
    )
    results = run_specs(
        [(batch_job_id(0, 4), 3)],
        jobs=1,
        retries=1,
        backoff_s=0.0,
        sleep=lambda seconds: None,
        run_kwargs={"population": config.to_dict()},
        executor=execute_fleet_batch,
        chaos=chaos_payload(plan, seed=0),
    )
    job = results[0]
    assert job.error is None
    assert job.attempts == 2
    assert job.attempt_history == ["pool", "ok"]


def test_retry_exhaustion_keeps_full_history():
    """An unwindowed crash burns every round; the history shows it."""
    config = PopulationConfig(seed=3, size=4, chars_range=(3, 4))
    plan = ChaosPlan(
        "crash-always", (ChaosSpec.make("c", "crash", probability=1.0),)
    )
    results = run_specs(
        [(batch_job_id(0, 4), 3)],
        jobs=1,
        retries=2,
        backoff_s=0.0,
        sleep=lambda seconds: None,
        run_kwargs={"population": config.to_dict()},
        executor=execute_fleet_batch,
        chaos=chaos_payload(plan, seed=0),
    )
    job = results[0]
    assert job.failure_kind == "pool"
    assert job.attempts == 3
    assert job.attempt_history == ["pool", "pool", "pool"]


def _straggler_seed(plan: ChaosPlan, job_ids, want: int = 1) -> int:
    """Find a chaos seed under which exactly ``want`` of ``job_ids``
    straggle on attempt 0 — pure engine computation, no processes."""
    for seed in range(200):
        engine = ChaosEngine(plan, seed=seed)
        if sum(bool(engine.active(j, 0)) for j in job_ids) == want:
            return seed
    raise AssertionError("no seed found (plan probability unsuitable)")


def test_hedging_beats_straggler_and_preserves_digest(clean):
    """Pool round with hedging: the straggler's duplicate (on the hedge
    attempt channel, where the windowed straggle cannot fire) finishes
    first and wins; the merged digest is untouched."""
    config = _config()
    batch_ids = [batch_job_id(s, t) for s, t in [(0, 5), (5, 10), (10, 15), (15, 18)]]
    plan = ChaosPlan(
        "one-straggler",
        (
            ChaosSpec.make(
                "slow",
                "straggle",
                probability=0.3,
                max_attempt=1,
                params={"seconds": 20.0},
            ),
        ),
    )
    seed = _straggler_seed(plan, batch_ids, want=1)
    started = time.perf_counter()
    fleet = run_fleet(
        config,
        shards=4,
        batch_size=5,
        chaos=ChaosPlan.from_dict(plan.to_dict()),
        chaos_seed=seed,
        hedge={"factor": 2.0, "min_completed": 2, "poll_s": 0.02},
    )
    elapsed = time.perf_counter() - started
    _assert_healed(fleet, clean)
    assert fleet.hedging is not None
    assert fleet.hedging["issued"] >= 1
    assert fleet.hedging["won"] >= 1
    # The 20s primary never gated the sweep: the hedge won the race.
    assert elapsed < 15.0
