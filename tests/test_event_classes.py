"""Tests for event-class grouping (per-class latency breakdowns)."""

import pytest

from repro.apps import NotepadApp
from repro.core import MeasurementSession, by_event_class, class_summary_table
from repro.core.analysis import default_event_class
from repro.core.latency import LatencyEvent, LatencyProfile
from repro.workload.script import InputScript, Key

MS = 1_000_000


def event(first_input, latency_ms=5, kinds=()):
    return LatencyEvent(
        start_ns=0,
        latency_ns=latency_ms * MS,
        first_input=first_input,
        message_kinds=kinds,
    )


class TestDefaultClassifier:
    def test_printables_collapse(self):
        assert default_event_class(event("a")) == "printable"
        assert default_event_class(event("z")) == "printable"

    def test_named_keys_kept(self):
        assert default_event_class(event("PageDown")) == "PageDown"
        assert default_event_class(event("Enter")) == "Enter"

    def test_timer_and_other(self):
        assert default_event_class(event(None, kinds=("WM_TIMER",))) == "timer"
        assert default_event_class(event(None)) == "other"

    def test_tuple_command(self):
        assert default_event_class(event(("ole_edit", 3))) == "ole_edit"


class TestGrouping:
    def test_groups_partition_profile(self):
        profile = LatencyProfile(
            [event("a"), event("b"), event("Enter"), event("PageDown")]
        )
        groups = by_event_class(profile)
        assert sum(len(g) for g in groups.values()) == len(profile)
        assert len(groups["printable"]) == 2

    def test_ordered_by_count(self):
        profile = LatencyProfile([event("a"), event("b"), event("Enter")])
        assert list(by_event_class(profile)) == ["printable", "Enter"]

    def test_table_renders(self):
        profile = LatencyProfile([event("a", 5), event("Enter", 30)])
        text = class_summary_table(profile).render()
        assert "printable" in text and "Enter" in text and "share" in text


class TestEndToEnd:
    def test_notepad_classes_match_paper_structure(self):
        script = InputScript(
            [Key(c, pause_ms=130.0) for c in "abcd"]
            + [Key("Enter", pause_ms=300.0), Key("PageDown", pause_ms=300.0)]
        )
        result = MeasurementSession("nt40", NotepadApp).run(
            script, remove_queuesync=True, max_seconds=60
        )
        groups = by_event_class(result.profile)
        assert len(groups["printable"]) == 4
        # The refresh classes are an order of magnitude slower.
        assert groups["Enter"].mean_ms() > 4 * groups["printable"].mean_ms()
        assert groups["PageDown"].mean_ms() > 4 * groups["printable"].mean_ms()
