"""Tests for the experiments framework itself."""

import pytest

from repro.experiments.common import (
    ALL_OS,
    Check,
    ExperimentResult,
    checks_table,
    inject_click,
    inject_keystroke,
    post_command,
)
from repro.winsys import boot


class TestCheck:
    def test_str_pass_fail(self):
        assert "[PASS]" in str(Check("x", True))
        assert "[FAIL]" in str(Check("x", False, "why"))
        assert "why" in str(Check("x", False, "why"))


class TestExperimentResult:
    def test_check_records(self):
        result = ExperimentResult(id="t", title="T")
        result.check("ok", True)
        result.check("bad", False, "detail")
        assert not result.all_passed
        assert len(result.failed_checks()) == 1

    def test_check_coerces_truthiness(self):
        result = ExperimentResult(id="t", title="T")
        check = result.check("numpy-ish", 1)
        assert check.passed is True

    def test_render_contains_everything(self):
        from repro.core.report import TextTable

        result = ExperimentResult(id="t", title="Title Here")
        table = TextTable(["a"], title="tbl")
        table.add_row(1)
        result.tables.append(table)
        result.figures.append("FIGURE-BLOCK")
        result.check("c1", True)
        text = result.render()
        assert "Title Here" in text
        assert "tbl" in text
        assert "FIGURE-BLOCK" in text
        assert "c1" in text

    def test_checks_table(self):
        result = ExperimentResult(id="t", title="T")
        result.check("one", True, "d")
        text = checks_table(result).render()
        assert "one" in text and "PASS" in text


class TestConstants:
    def test_os_order_matches_paper(self):
        assert ALL_OS == ("nt351", "nt40", "win95")


class TestInjectionHelpers:
    def test_inject_keystroke_settles(self, nt40):
        from repro.apps import NotepadApp

        app = NotepadApp(nt40)
        app.start(foreground=True)
        nt40.run_for(5_000_000)
        inject_keystroke(nt40, "a")
        # Handled before the helper returned: both WM_KEYDOWN and
        # WM_CHAR incremented the counter.
        assert app.keystrokes == 2

    def test_inject_click_settles(self, nt40):
        from repro.apps import ShellApp

        app = ShellApp(nt40)
        app.start(foreground=True)
        nt40.run_for(5_000_000)
        inject_click(nt40, hold_ms=20.0)
        assert app.events_handled >= 1  # down handled; up may trail the hold
        nt40.run_for(100_000_000)
        assert app.events_handled == 2

    def test_post_command_settles(self, nt40):
        from repro.apps import ShellApp

        app = ShellApp(nt40)
        app.start(foreground=True)
        nt40.run_for(5_000_000)
        post_command(nt40, "maximize")
        assert app.maximizes_completed == 1


class TestSharedRunCaches:
    def test_word_runs_cached_per_key(self):
        from repro.experiments.word_runs import word_session

        a = word_session("nt351", "mstest", chars=80, seed=0)
        b = word_session("nt351", "mstest", chars=80, seed=0)
        assert a is b  # same object: cache hit

    def test_word_runs_distinct_keys(self):
        from repro.experiments.word_runs import word_session

        a = word_session("nt351", "mstest", chars=80, seed=0)
        b = word_session("nt351", "typist", chars=80, seed=0)
        assert a is not b
