"""Unit tests for repro.sim.timebase."""

import pytest

from repro.sim import timebase as tb


class TestConversions:
    def test_ns_from_ms(self):
        assert tb.ns_from_ms(1) == 1_000_000
        assert tb.ns_from_ms(0.5) == 500_000

    def test_ns_from_us(self):
        assert tb.ns_from_us(1) == 1_000
        assert tb.ns_from_us(2.5) == 2_500

    def test_ns_from_sec(self):
        assert tb.ns_from_sec(1) == 1_000_000_000

    def test_roundtrip_ms(self):
        assert tb.ms_from_ns(tb.ns_from_ms(123.25)) == pytest.approx(123.25)

    def test_roundtrip_sec(self):
        assert tb.sec_from_ns(tb.ns_from_sec(7.5)) == pytest.approx(7.5)

    def test_us_from_ns(self):
        assert tb.us_from_ns(1_500) == pytest.approx(1.5)


class TestCycles:
    def test_one_cycle_is_10ns_at_100mhz(self):
        assert tb.cycles_to_ns(1) == 10

    def test_cycles_to_ns_scales(self):
        assert tb.cycles_to_ns(100_000) == 1_000_000  # 100k cycles = 1 ms

    def test_ns_to_cycles_inverse(self):
        assert tb.ns_to_cycles(tb.cycles_to_ns(123_456)) == 123_456

    def test_other_clock_rate(self):
        # 200 MHz: one cycle is 5 ns.
        assert tb.cycles_to_ns(2, hz=200_000_000) == 10
        assert tb.ns_to_cycles(10, hz=200_000_000) == 2

    def test_default_cpu_is_100mhz(self):
        assert tb.DEFAULT_CPU_HZ == 100_000_000


class TestFormatting:
    def test_format_ns_units(self):
        assert tb.format_ns(500) == "500 ns"
        assert "us" in tb.format_ns(5_000)
        assert "ms" in tb.format_ns(5_000_000)
        assert "s" in tb.format_ns(5_000_000_000)

    def test_format_negative(self):
        assert tb.format_ns(-1_000_000) == "-1.00 ms"

    def test_format_values(self):
        assert tb.format_ns(10_760_000) == "10.76 ms"
