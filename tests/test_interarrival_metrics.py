"""Unit tests for interarrival analysis and the perception metrics."""

import pytest

from repro.core.interarrival import interarrival_table
from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.metrics import (
    IMPERCEPTIBLE_MS,
    IRRITATION_MS,
    ProposedResponsivenessMetric,
    threshold_bands,
)

MS = 1_000_000
SEC = 1_000_000_000


def profile_of(events):
    return LatencyProfile(
        [
            LatencyEvent(start_ns=start_s * SEC, latency_ns=int(latency_ms * MS), label=label)
            for start_s, latency_ms, label in events
        ]
    )


class TestInterarrival:
    def test_counts_per_threshold(self):
        profile = profile_of(
            [(0, 150, ""), (10, 105, ""), (20, 95, ""), (30, 130, "")]
        )
        rows = interarrival_table(profile, [100, 120])
        assert rows[0].count == 3
        assert rows[1].count == 2

    def test_mean_and_std(self):
        # Events above threshold at t = 0, 10, 20 -> gaps of 10 s each.
        profile = profile_of([(0, 200, ""), (10, 200, ""), (20, 200, "")])
        row = interarrival_table(profile, [100])[0]
        assert row.mean_interarrival_s == pytest.approx(10.0)
        assert row.std_interarrival_s == pytest.approx(0.0)
        assert row.periodic  # zero spread = strongly periodic

    def test_aperiodic_detection(self):
        profile = profile_of(
            [(0, 200, ""), (1, 200, ""), (30, 200, ""), (31, 200, "")]
        )
        row = interarrival_table(profile, [100])[0]
        assert not row.periodic

    def test_too_few_events(self):
        profile = profile_of([(0, 200, "")])
        row = interarrival_table(profile, [100])[0]
        assert row.count == 1
        assert row.mean_interarrival_s == 0.0


class TestThresholdBands:
    def test_paper_constants(self):
        assert IMPERCEPTIBLE_MS == 100.0
        assert IRRITATION_MS == 2000.0

    def test_banding(self):
        profile = profile_of(
            [(0, 50, ""), (1, 99, ""), (2, 500, ""), (3, 3000, "")]
        )
        bands = threshold_bands(profile)
        assert bands.imperceptible == 2
        assert bands.perceptible == 1
        assert bands.irritating == 1
        assert bands.total == 4


class TestProposedMetric:
    def test_zero_when_all_fast(self):
        profile = profile_of([(0, 50, ""), (1, 80, "")])
        assert ProposedResponsivenessMetric().score(profile) == 0.0

    def test_linear_excess(self):
        profile = profile_of([(0, 150, "")])
        assert ProposedResponsivenessMetric().score(profile) == pytest.approx(50.0)

    def test_per_type_thresholds(self):
        """Users expect a print command to take longer (Section 3.1)."""
        profile = profile_of([(0, 900, "print"), (1, 900, "keystroke")])
        metric = ProposedResponsivenessMetric(
            thresholds_by_label={"print": 1000.0}
        )
        offenders = metric.offending_events(profile)
        assert len(offenders) == 1
        assert offenders[0].label == "keystroke"

    def test_custom_penalty(self):
        profile = profile_of([(0, 200, "")])
        metric = ProposedResponsivenessMetric(penalty=lambda excess: excess**2)
        assert metric.score(profile) == pytest.approx(100.0**2)
