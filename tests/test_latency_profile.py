"""Unit tests for LatencyEvent and LatencyProfile."""

import numpy as np
import pytest

from repro.core.latency import LatencyEvent, LatencyProfile

MS = 1_000_000


def event(start_ms, latency_ms, label=""):
    return LatencyEvent(
        start_ns=start_ms * MS, latency_ns=int(latency_ms * MS), label=label
    )


class TestLatencyEvent:
    def test_derived_fields(self):
        e = event(100, 25)
        assert e.end_ns == 125 * MS
        assert e.latency_ms == 25.0

    def test_repr_includes_label(self):
        assert "save" in repr(event(0, 1, label="save"))


class TestLatencyProfile:
    def test_sorted_by_start(self):
        profile = LatencyProfile([event(50, 1), event(10, 2)])
        assert profile[0].start_ns == 10 * MS

    def test_totals_and_stats(self):
        profile = LatencyProfile([event(0, 10), event(100, 30)])
        assert profile.total_latency_ns == 40 * MS
        assert profile.mean_ms() == 20.0
        assert profile.median_ms() == 20.0
        assert profile.max_ms() == 30.0
        assert profile.std_ms() == 10.0

    def test_empty_profile_stats(self):
        profile = LatencyProfile([])
        assert profile.mean_ms() == 0.0
        assert profile.total_latency_ns == 0
        assert len(profile) == 0

    def test_above_strict(self):
        profile = LatencyProfile([event(0, 100), event(1, 100.1), event(2, 150)])
        assert len(profile.above(100.0)) == 2

    def test_below_inclusive(self):
        profile = LatencyProfile([event(0, 100), event(1, 150)])
        assert len(profile.below(100.0)) == 1

    def test_fraction_of_latency_below(self):
        """The Figure 7 statistic."""
        events = [event(i, 5) for i in range(80)] + [event(100 + i, 40) for i in range(5)]
        profile = LatencyProfile(events)
        fraction = profile.fraction_of_latency_below(10.0)
        assert fraction == pytest.approx(400 / 600)

    def test_fraction_empty(self):
        assert LatencyProfile([]).fraction_of_latency_below(10) == 0.0

    def test_labelled(self):
        profile = LatencyProfile([event(0, 1, "a"), event(1, 2, "b"), event(2, 3, "a")])
        assert len(profile.labelled("a")) == 2

    def test_filter(self):
        profile = LatencyProfile([event(0, 1), event(1, 100)])
        assert len(profile.filter(lambda e: e.latency_ms > 50)) == 1

    def test_merged_with(self):
        a = LatencyProfile([event(0, 1)])
        b = LatencyProfile([event(1, 2)])
        assert len(a.merged_with(b)) == 2

    def test_arrays(self):
        profile = LatencyProfile([event(0, 1), event(5, 2)])
        assert list(profile.start_times_ns) == [0, 5 * MS]
        assert np.allclose(profile.latencies_ms, [1.0, 2.0])
