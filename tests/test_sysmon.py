"""Unit tests for the polled system-state sampler (Section 6 API)."""

import pytest

from repro.apps import NotepadApp, SlidesApp
from repro.core.sysmon import SystemStateSampler
from repro.sim.timebase import ns_from_ms
from repro.winsys import boot


class TestSampler:
    def test_period_validation(self, nt40):
        with pytest.raises(ValueError):
            SystemStateSampler(nt40, period_ns=0)

    def test_samples_at_period(self, nt40):
        sampler = SystemStateSampler(nt40, period_ns=ns_from_ms(1))
        sampler.start()
        nt40.run_for(ns_from_ms(50))
        sampler.stop()
        assert 48 <= len(sampler.samples) <= 52

    def test_double_start_rejected(self, nt40):
        sampler = SystemStateSampler(nt40)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_stop_halts_sampling(self, nt40):
        sampler = SystemStateSampler(nt40, period_ns=ns_from_ms(1))
        sampler.start()
        nt40.run_for(ns_from_ms(10))
        sampler.stop()
        count = len(sampler.samples)
        nt40.run_for(ns_from_ms(10))
        assert len(sampler.samples) == count

    def test_quiet_system_all_quiet_samples(self, nt40):
        sampler = SystemStateSampler(nt40, period_ns=ns_from_ms(1))
        sampler.start()
        nt40.run_for(ns_from_ms(30))
        assert sampler.max_queue_len() == 0
        assert sampler.sync_io_spans() == []

    def test_sees_queue_occupancy_during_typing(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        sampler = SystemStateSampler(nt40, period_ns=ns_from_ms(0.2))
        sampler.start()
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("a")
        nt40.run_for(ns_from_ms(50))
        assert sampler.max_queue_len() >= 1
        assert len(sampler.queue_nonempty_spans()) >= 1

    def test_sees_sync_io_and_disk_queue(self, nt40):
        app = SlidesApp(nt40)
        app.start(foreground=True)
        sampler = SystemStateSampler(nt40, period_ns=ns_from_ms(1))
        sampler.start()
        nt40.run_for(ns_from_ms(5))
        nt40.post_command("launch")
        nt40.run_for(ns_from_ms(500))
        assert sampler.sync_io_spans()
        assert sampler.max_disk_queue_depth() >= 1

    def test_cpu_busy_spans(self, nt40):
        app = NotepadApp(nt40)
        app.start(foreground=True)
        sampler = SystemStateSampler(nt40, period_ns=ns_from_ms(0.2))
        sampler.start()
        nt40.run_for(ns_from_ms(5))
        nt40.machine.keyboard.keystroke("Enter")  # long refresh event
        nt40.run_for(ns_from_ms(100))
        spans = sampler.cpu_busy_spans()
        assert spans
        longest = max(end - start for start, end in spans)
        assert longest > ns_from_ms(10)
