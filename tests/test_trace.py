"""Unit tests for the bounded trace buffer."""

from array import array

import pytest

from repro.sim.trace import IntTraceBuffer, TraceBuffer, TraceOverflow


class TestBasics:
    def test_append_and_read(self):
        buffer = TraceBuffer(10)
        buffer.append(1)
        buffer.append(2)
        assert buffer.records() == [1, 2]
        assert len(buffer) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceBuffer(0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TraceBuffer(1, on_full="bogus")

    def test_space_left(self):
        buffer = TraceBuffer(3)
        assert buffer.space_left == 3
        buffer.append(1)
        assert buffer.space_left == 2

    def test_last(self):
        buffer = TraceBuffer(3)
        assert buffer.last() is None
        buffer.append(5)
        buffer.append(6)
        assert buffer.last() == 6

    def test_clear(self):
        buffer = TraceBuffer(3)
        buffer.append(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.dropped == 0


class TestOverflowPolicies:
    def test_stop_drops_silently(self):
        buffer = TraceBuffer(2, on_full="stop")
        assert buffer.append(1)
        assert buffer.append(2)
        assert not buffer.append(3)
        assert buffer.records() == [1, 2]
        assert buffer.dropped == 1

    def test_raise_policy(self):
        buffer = TraceBuffer(1, on_full="raise")
        buffer.append(1)
        with pytest.raises(TraceOverflow):
            buffer.append(2)

    def test_wrap_policy_keeps_newest(self):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(6):
            buffer.append(value)
        assert buffer.records() == [3, 4, 5]

    def test_wrap_chronological_order(self):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(5):
            buffer.append(value)
        assert buffer.records() == [2, 3, 4]
        assert buffer.last() == 4

    def test_iteration(self):
        buffer = TraceBuffer(4)
        for value in (7, 8):
            buffer.append(value)
        assert list(buffer) == [7, 8]


class TestLastIsO1:
    """last() never materialises the unwrapped copy records() builds."""

    def test_wrap_last_at_every_cursor_position(self):
        for appended in range(1, 12):
            buffer = TraceBuffer(4, on_full="wrap")
            for value in range(appended):
                buffer.append(value)
            assert buffer.last() == appended - 1
            assert buffer.last() == buffer.records()[-1]

    def test_wrap_last_at_exact_boundary(self):
        # After exactly 2 full cycles the cursor is back at slot 0.
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(6):
            buffer.append(value)
        assert buffer._wrap_start == 0
        assert buffer.last() == 5

    def test_stop_full_buffer_last_is_newest_kept(self):
        buffer = TraceBuffer(2, on_full="stop")
        for value in range(5):
            buffer.append(value)
        assert buffer.last() == 1  # drops, never overwrites

    def test_last_does_not_copy(self, monkeypatch):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(5):
            buffer.append(value)

        def boom():  # records() is the O(n) path last() must avoid
            raise AssertionError("last() called records()")

        monkeypatch.setattr(buffer, "records", boom)
        assert buffer.last() == 4


class TestView:
    """view() is the zero-copy read path; records() returns a copy."""

    def test_view_matches_records(self):
        buffer = TraceBuffer(4)
        for value in (1, 2, 3):
            buffer.append(value)
        assert list(buffer.view()) == buffer.records() == [1, 2, 3]

    def test_unwrapped_view_is_not_a_copy(self):
        buffer = TraceBuffer(4)
        buffer.append(1)
        assert buffer.view() is buffer.view()

    def test_records_is_a_defensive_copy(self):
        buffer = TraceBuffer(4)
        buffer.append(1)
        copy = buffer.records()
        copy.append(99)
        assert buffer.records() == [1]

    def test_wrapped_view_is_chronological(self):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(5):
            buffer.append(value)
        assert list(buffer.view()) == [2, 3, 4]

    def test_iteration_uses_view(self):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(5):
            buffer.append(value)
        assert list(buffer) == [2, 3, 4]


class TestExtendRamp:
    def test_ramp_matches_appends(self):
        ramp = TraceBuffer(10)
        ramp.extend_ramp(100, 7, 4)
        loop = TraceBuffer(10)
        for i in range(4):
            loop.append(100 + 7 * i)
        assert ramp.records() == loop.records() == [100, 107, 114, 121]

    def test_ramp_zero_count_is_noop(self):
        buffer = TraceBuffer(2)
        buffer.extend_ramp(100, 7, 0)
        assert len(buffer) == 0

    def test_ramp_never_overflows(self):
        buffer = TraceBuffer(3)
        buffer.append(1)
        with pytest.raises(TraceOverflow):
            buffer.extend_ramp(100, 7, 3)
        assert buffer.records() == [1]  # nothing partially applied

    def test_ramp_exactly_fills(self):
        buffer = TraceBuffer(3)
        buffer.extend_ramp(0, 1, 3)
        assert buffer.space_left == 0
        assert buffer.records() == [0, 1, 2]


class TestIntTraceBuffer:
    def test_array_backed_storage(self):
        buffer = IntTraceBuffer(8)
        buffer.append(5)
        assert isinstance(buffer._records, array)

    def test_behaves_like_trace_buffer(self):
        buffer = IntTraceBuffer(3, on_full="stop")
        assert buffer.append(1)
        assert buffer.append(2)
        assert buffer.append(3)
        assert not buffer.append(4)
        assert buffer.records() == [1, 2, 3]
        assert buffer.last() == 3
        assert buffer.dropped == 1

    def test_fast_ramp_matches_generic(self):
        fast = IntTraceBuffer(100)
        fast.extend_ramp(10**9, 250_000, 50)
        generic = TraceBuffer(100)
        generic.extend_ramp(10**9, 250_000, 50)
        assert fast.records() == generic.records()

    def test_fast_ramp_zero_step(self):
        buffer = IntTraceBuffer(5)
        buffer.extend_ramp(42, 0, 3)
        assert buffer.records() == [42, 42, 42]

    def test_clear_keeps_array_type(self):
        buffer = IntTraceBuffer(4)
        buffer.append(1)
        buffer.clear()
        buffer.append(2)
        assert isinstance(buffer._records, array)
        assert buffer.records() == [2]

    def test_records_returns_plain_list(self):
        buffer = IntTraceBuffer(4)
        buffer.extend_ramp(0, 1, 3)
        records = buffer.records()
        assert type(records) is list
        assert records == [0, 1, 2]
