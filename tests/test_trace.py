"""Unit tests for the bounded trace buffer."""

import pytest

from repro.sim.trace import TraceBuffer, TraceOverflow


class TestBasics:
    def test_append_and_read(self):
        buffer = TraceBuffer(10)
        buffer.append(1)
        buffer.append(2)
        assert buffer.records() == [1, 2]
        assert len(buffer) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceBuffer(0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TraceBuffer(1, on_full="bogus")

    def test_space_left(self):
        buffer = TraceBuffer(3)
        assert buffer.space_left == 3
        buffer.append(1)
        assert buffer.space_left == 2

    def test_last(self):
        buffer = TraceBuffer(3)
        assert buffer.last() is None
        buffer.append(5)
        buffer.append(6)
        assert buffer.last() == 6

    def test_clear(self):
        buffer = TraceBuffer(3)
        buffer.append(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.dropped == 0


class TestOverflowPolicies:
    def test_stop_drops_silently(self):
        buffer = TraceBuffer(2, on_full="stop")
        assert buffer.append(1)
        assert buffer.append(2)
        assert not buffer.append(3)
        assert buffer.records() == [1, 2]
        assert buffer.dropped == 1

    def test_raise_policy(self):
        buffer = TraceBuffer(1, on_full="raise")
        buffer.append(1)
        with pytest.raises(TraceOverflow):
            buffer.append(2)

    def test_wrap_policy_keeps_newest(self):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(6):
            buffer.append(value)
        assert buffer.records() == [3, 4, 5]

    def test_wrap_chronological_order(self):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(5):
            buffer.append(value)
        assert buffer.records() == [2, 3, 4]
        assert buffer.last() == 4

    def test_iteration(self):
        buffer = TraceBuffer(4)
        for value in (7, 8):
            buffer.append(value)
        assert list(buffer) == [7, 8]


class TestLastIsO1:
    """last() never materialises the unwrapped copy records() builds."""

    def test_wrap_last_at_every_cursor_position(self):
        for appended in range(1, 12):
            buffer = TraceBuffer(4, on_full="wrap")
            for value in range(appended):
                buffer.append(value)
            assert buffer.last() == appended - 1
            assert buffer.last() == buffer.records()[-1]

    def test_wrap_last_at_exact_boundary(self):
        # After exactly 2 full cycles the cursor is back at slot 0.
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(6):
            buffer.append(value)
        assert buffer._wrap_start == 0
        assert buffer.last() == 5

    def test_stop_full_buffer_last_is_newest_kept(self):
        buffer = TraceBuffer(2, on_full="stop")
        for value in range(5):
            buffer.append(value)
        assert buffer.last() == 1  # drops, never overwrites

    def test_last_does_not_copy(self, monkeypatch):
        buffer = TraceBuffer(3, on_full="wrap")
        for value in range(5):
            buffer.append(value)

        def boom():  # records() is the O(n) path last() must avoid
            raise AssertionError("last() called records()")

        monkeypatch.setattr(buffer, "records", boom)
        assert buffer.last() == 4
