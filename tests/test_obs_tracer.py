"""Unit tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.obs import NULL_TRACER, Tracer


def fixed_wall():
    return 42


class TestRegistry:
    def test_process_pids_start_at_one(self):
        tracer = Tracer(wall_clock=fixed_wall)
        assert tracer.register_process("nt40") == 1
        assert tracer.register_process("win95") == 2
        assert tracer.processes() == {1: "nt40", 2: "win95"}

    def test_duplicate_process_names_get_suffix(self):
        tracer = Tracer(wall_clock=fixed_wall)
        tracer.register_process("nt40")
        tracer.register_process("nt40")
        tracer.register_process("nt40")
        assert sorted(tracer.processes().values()) == [
            "nt40",
            "nt40#2",
            "nt40#3",
        ]

    def test_thread_tids_allocate_and_pin(self):
        tracer = Tracer(wall_clock=fixed_wall)
        pid = tracer.register_process("nt40")
        assert tracer.register_thread(pid, "cpu", tid=1) == 1
        assert tracer.register_thread(pid, "pump") == 2
        # Pinning onto a taken tid slides to the next free one.
        assert tracer.register_thread(pid, "other", tid=1) == 3

    def test_unknown_pid_rejected(self):
        tracer = Tracer(wall_clock=fixed_wall)
        with pytest.raises(ValueError):
            tracer.register_thread(99, "ghost")


class TestRecording:
    def test_span_round_trip(self):
        tracer = Tracer(wall_clock=fixed_wall)
        pid = tracer.register_process("nt40")
        tid = tracer.register_thread(pid, "pump")
        tracer.begin("handle:CHAR", pid, tid, 100, args={"k": 1})
        tracer.end(pid, tid, 250)
        phases = [(e.phase, e.sim_ns) for e in tracer.events()]
        assert phases == [("B", 100), ("E", 250)]
        assert tracer.events()[0].wall_ns == 42

    def test_end_without_begin_is_noop(self):
        tracer = Tracer(wall_clock=fixed_wall)
        pid = tracer.register_process("nt40")
        tid = tracer.register_thread(pid, "pump")
        tracer.end(pid, tid, 100)
        assert tracer.events() == []
        assert tracer.open_spans(pid, tid) == 0

    def test_nesting_depth_tracked_per_track(self):
        tracer = Tracer(wall_clock=fixed_wall)
        pid = tracer.register_process("nt40")
        t1 = tracer.register_thread(pid, "a")
        t2 = tracer.register_thread(pid, "b")
        tracer.begin("outer", pid, t1, 0)
        tracer.begin("inner", pid, t1, 10)
        tracer.begin("other", pid, t2, 5)
        assert tracer.open_spans(pid, t1) == 2
        assert tracer.open_spans(pid, t2) == 1
        tracer.end(pid, t1, 20)
        assert tracer.open_spans(pid, t1) == 1

    def test_instants_record_track_and_args(self):
        tracer = Tracer(wall_clock=fixed_wall)
        pid = tracer.register_process("nt40")
        tracer.instant("irq:kbd", pid, 2, 500, args={"vector": "kbd"})
        (event,) = tracer.events()
        assert event.phase == "i"
        assert event.args == {"vector": "kbd"}

    def test_capacity_overflow_counts_dropped(self):
        tracer = Tracer(capacity=2, wall_clock=fixed_wall)
        pid = tracer.register_process("nt40")
        for stamp in range(5):
            tracer.instant("x", pid, 1, stamp)
        assert len(tracer.events()) == 2
        assert tracer.dropped == 3
        assert tracer.lossy


class TestNullTracer:
    def test_api_compatible_and_free(self):
        assert NULL_TRACER.enabled is False
        pid = NULL_TRACER.register_process("nt40")
        tid = NULL_TRACER.register_thread(pid, "pump")
        NULL_TRACER.begin("x", pid, tid, 0)
        NULL_TRACER.instant("y", pid, tid, 1)
        NULL_TRACER.end(pid, tid, 2)
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.lossy
