"""Unit tests for the counter-sampling harness."""

import pytest

from repro.core.counters import CounterProfile, CounterSampler
from repro.sim.timebase import ns_from_ms
from repro.sim.work import HwEvent
from repro.winsys import Compute, boot


def make_operation(system, cycles=100_000, events=None):
    def operation():
        work = system.personality.app_work(cycles)
        if events:
            from repro.sim.work import Work

            work = Work(cycles, dict(events))

        def program():
            yield Compute(work)

        system.spawn("op", program())
        system.run_until_quiescent(max_ns=system.now + 10**9)

    return operation


class TestCounterSampler:
    def test_cycles_measured(self, nt40):
        sampler = CounterSampler(nt40)
        profile = sampler.measure(
            "op",
            make_operation(nt40, cycles=100_000),
            [HwEvent.INSTRUCTIONS],
            trials_per_config=3,
        )
        # Operation wall time includes dispatch/quiescence overheads,
        # so cycles >= the pure compute.
        assert profile.mean_cycles >= 100_000
        assert len(profile.cycles_per_trial) == 3

    def test_event_counts_mean(self, nt40):
        sampler = CounterSampler(nt40)
        profile = sampler.measure(
            "op",
            make_operation(nt40, events={HwEvent.SEGMENT_LOADS: 42}),
            [HwEvent.SEGMENT_LOADS],
            trials_per_config=4,
        )
        assert profile.count(HwEvent.SEGMENT_LOADS) == pytest.approx(42, abs=1)

    def test_two_counters_at_a_time(self, nt40):
        """Four events require two configurations (Pentium limit)."""
        sampler = CounterSampler(nt40)
        calls = []
        operation = make_operation(nt40)

        def counted_operation():
            calls.append(1)
            operation()

        sampler.measure(
            "op",
            counted_operation,
            [
                HwEvent.ITLB_MISS,
                HwEvent.DTLB_MISS,
                HwEvent.SEGMENT_LOADS,
                HwEvent.UNALIGNED_ACCESS,
            ],
            trials_per_config=5,
            warmup=1,
        )
        # 1 warmup + 2 configs x 5 trials.
        assert len(calls) == 11

    def test_keep_first_policy(self, nt40):
        sampler = CounterSampler(nt40)
        profile = sampler.measure(
            "op",
            make_operation(nt40),
            [HwEvent.INSTRUCTIONS],
            trials_per_config=5,
            keep_trials="first",
        )
        assert len(profile.cycles_per_trial) == 1

    def test_invalid_policy_rejected(self, nt40):
        with pytest.raises(ValueError):
            CounterSampler(nt40).measure(
                "op", lambda: None, [HwEvent.INSTRUCTIONS], keep_trials="median"
            )

    def test_prepare_runs_outside_measurement(self, nt40):
        sampler = CounterSampler(nt40)
        prepared = []
        operation = make_operation(nt40)
        profile = sampler.measure(
            "op",
            operation,
            [HwEvent.INSTRUCTIONS],
            trials_per_config=2,
            warmup=1,
            prepare=lambda: prepared.append(nt40.now),
        )
        assert len(prepared) == 3  # warmup + 2 trials


class TestCounterProfile:
    def test_latency_from_cycles(self):
        profile = CounterProfile(name="x", cycles_per_trial=[100_000, 100_000])
        assert profile.latency_ns == 1_000_000
        assert profile.latency_ms == pytest.approx(1.0)

    def test_tlb_aggregate(self):
        profile = CounterProfile(
            name="x", means={HwEvent.ITLB_MISS: 10.0, HwEvent.DTLB_MISS: 5.0}
        )
        assert profile.tlb_misses() == 15.0

    def test_empty_profile(self):
        profile = CounterProfile(name="x")
        assert profile.mean_cycles == 0.0
        assert profile.std_cycles() == 0.0
        assert profile.count(HwEvent.ITLB_MISS) == 0.0
