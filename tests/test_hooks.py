"""Unit tests for the API hook registry."""

from repro.winsys.hooks import ApiCallRecord, HookManager


def record(api="GetMessage", time_ns=0):
    return ApiCallRecord(time_ns=time_ns, thread_name="app", api=api, queue_len=0)


class TestHookManager:
    def test_register_and_fire(self):
        hooks = HookManager()
        seen = []
        hooks.register("GetMessage", seen.append)
        hooks.fire(record())
        assert len(seen) == 1

    def test_unrelated_api_not_delivered(self):
        hooks = HookManager()
        seen = []
        hooks.register("PeekMessage", seen.append)
        hooks.fire(record("GetMessage"))
        assert seen == []

    def test_wildcard_hook(self):
        hooks = HookManager()
        seen = []
        hooks.register("*", seen.append)
        hooks.fire(record("GetMessage"))
        hooks.fire(record("PeekMessage"))
        assert len(seen) == 2

    def test_multiple_hooks_same_api(self):
        hooks = HookManager()
        a, b = [], []
        hooks.register("GetMessage", a.append)
        hooks.register("GetMessage", b.append)
        hooks.fire(record())
        assert len(a) == len(b) == 1

    def test_unregister(self):
        hooks = HookManager()
        seen = []
        hooks.register("GetMessage", seen.append)
        hooks.unregister("GetMessage", seen.append)
        hooks.fire(record())
        assert seen == []

    def test_unregister_missing_is_noop(self):
        HookManager().unregister("GetMessage", lambda r: None)

    def test_calls_seen_counts_all(self):
        hooks = HookManager()
        hooks.fire(record())
        hooks.fire(record("PeekMessage"))
        assert hooks.calls_seen == 2

    def test_has_hooks(self):
        hooks = HookManager()
        assert not hooks.has_hooks("GetMessage")
        hooks.register("GetMessage", lambda r: None)
        assert hooks.has_hooks("GetMessage")
        wild = HookManager()
        wild.register("*", lambda r: None)
        assert wild.has_hooks("anything")
