"""Tests for the repro-analyze CLI."""

import json

import pytest

from repro.analyze import main
from repro.core.latency import LatencyEvent, LatencyProfile
from repro.core.samples import SampleTrace
from repro.core.serialize import profile_to_dict, save_json, trace_to_dict

MS = 1_000_000


@pytest.fixture
def profile_path(tmp_path):
    profile = LatencyProfile(
        [
            LatencyEvent(start_ns=i * 200 * MS, latency_ns=(5 + i) * MS)
            for i in range(20)
        ]
        + [LatencyEvent(start_ns=50 * 200 * MS, latency_ns=150 * MS)],
        name="archived",
    )
    return save_json(profile_to_dict(profile), tmp_path / "profile.json")


@pytest.fixture
def trace_path(tmp_path):
    times = [i * MS for i in range(50)] + [60 * MS]
    return save_json(
        trace_to_dict(SampleTrace(times, loop_ns=MS)), tmp_path / "trace.json"
    )


class TestAnalyzeProfile:
    def test_summary_and_histogram(self, profile_path, capsys):
        assert main([str(profile_path)]) == 0
        out = capsys.readouterr().out
        assert "archived" in out
        assert "histogram" in out
        assert "count" in out

    def test_thresholds(self, profile_path, capsys):
        assert main([str(profile_path), "--thresholds", "10,100"]) == 0
        out = capsys.readouterr().out
        assert "interarrivals" in out
        assert "100" in out

    def test_timeline_and_refresh(self, profile_path, capsys):
        assert main([str(profile_path), "--timeline", "--refresh"]) == 0
        out = capsys.readouterr().out
        assert "refresh-adjusted" in out
        assert "threshold" in out  # timeline footer


class TestAnalyzeTrace:
    def test_trace_summary(self, trace_path, capsys):
        assert main([str(trace_path), "--windows", "5"]) == 0
        out = capsys.readouterr().out
        assert "idle-loop trace" in out
        assert "utilization" in out


class TestErrors:
    def test_unknown_kind(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        assert main([str(path)]) == 2
