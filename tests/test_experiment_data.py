"""Tests on experiment data payloads (the numbers behind the figures)."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9", seed=0)


@pytest.fixture(scope="module")
def fig6():
    return run_experiment("fig6", seed=0)


class TestFig9Data:
    def test_latency_ordering(self, fig9):
        latency = fig9.data["latency_ms"]
        assert latency["nt40"] < latency["win95"] < latency["nt351"]

    def test_tlb_share_band(self, fig9):
        assert 0.25 <= fig9.data["tlb_share_of_nt_gap"] <= 0.50

    def test_win95_tlb_ratio_near_paper(self, fig9):
        assert fig9.data["win95_tlb_ratio"] == pytest.approx(1.93, rel=0.15)

    def test_segment_loads_dominated_by_win95(self, fig9):
        seg = fig9.data["seg"]
        assert seg["win95"] > 10 * seg["nt40"]
        assert seg["win95"] > 10 * seg["nt351"]

    def test_ipc_uniform(self, fig9):
        ipc = fig9.data["ipc"]
        assert max(ipc.values()) / min(ipc.values()) < 1.1


class TestFig6Data:
    def test_keystroke_values_millisecond_scale(self, fig6):
        for os_name, stats in fig6.data.items():
            assert 0.5 <= stats["key_ms"] <= 10.0, os_name

    def test_win95_click_is_press_duration(self, fig6):
        assert fig6.data["win95"]["click_ms"] == pytest.approx(90.0, rel=0.1)

    def test_trial_counts(self, fig6):
        for stats in fig6.data.values():
            assert stats["key_trials"] >= 25
            assert stats["click_trials"] >= 25


class TestRunnerSave:
    def test_save_writes_json(self, tmp_path, capsys):
        from repro.experiments.runner import main

        code = main(["fig1", "--checks-only", "--save", str(tmp_path)])
        assert code == 0
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert names == ["fig1-seed0.json", "manifest.json"]
        import json

        payload = json.loads((tmp_path / "fig1-seed0.json").read_text())
        assert payload["id"] == "fig1"
        assert all(check["passed"] for check in payload["checks"])
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["kind"] == "run-manifest"
        assert manifest["failures"] == 0
