"""Unit tests for window messages and queues."""

from repro.winsys.messages import WM, Message, MessageQueue


class TestMessageQueue:
    def test_fifo(self):
        queue = MessageQueue()
        queue.post(Message(WM.KEYDOWN), 10)
        queue.post(Message(WM.CHAR), 20)
        assert queue.get(30).kind == WM.KEYDOWN
        assert queue.get(30).kind == WM.CHAR
        assert queue.get(30) is None

    def test_timestamps(self):
        queue = MessageQueue()
        message = Message(WM.CHAR)
        queue.post(message, 100)
        retrieved = queue.get(250)
        assert retrieved.posted_ns == 100
        assert retrieved.retrieved_ns == 250
        assert retrieved.queue_delay_ns == 150

    def test_queue_delay_none_until_retrieved(self):
        message = Message(WM.CHAR)
        assert message.queue_delay_ns is None

    def test_peek_does_not_remove(self):
        queue = MessageQueue()
        queue.post(Message(WM.CHAR, payload="a"), 0)
        assert queue.peek().payload == "a"
        assert len(queue) == 1

    def test_post_callback_fires(self):
        queue = MessageQueue()
        seen = []
        queue.add_post_callback(seen.append)
        message = Message(WM.TIMER)
        queue.post(message, 0)
        assert seen == [message]

    def test_observer_sees_transitions(self):
        queue = MessageQueue()
        log = []
        queue.add_observer(lambda action, msg, n: log.append((action, n)))
        queue.post(Message(WM.CHAR), 0)
        queue.post(Message(WM.CHAR), 0)
        queue.get(1)
        assert log == [("post", 1), ("post", 2), ("get", 1)]

    def test_counters(self):
        queue = MessageQueue()
        queue.post(Message(WM.CHAR), 0)
        queue.get(0)
        assert queue.posted_count == 1
        assert queue.retrieved_count == 1

    def test_snapshot_kinds(self):
        queue = MessageQueue()
        queue.post(Message(WM.KEYDOWN), 0)
        queue.post(Message(WM.QUEUESYNC), 0)
        assert queue.snapshot_kinds() == [WM.KEYDOWN, WM.QUEUESYNC]

    def test_empty_property(self):
        queue = MessageQueue()
        assert queue.empty
        queue.post(Message(WM.CHAR), 0)
        assert not queue.empty


class TestWM:
    def test_paper_message_vocabulary(self):
        values = {wm.value for wm in WM}
        assert "WM_QUEUESYNC" in values  # the MS Test artifact
        assert {"WM_KEYDOWN", "WM_CHAR", "WM_PAINT", "WM_TIMER"} <= values
