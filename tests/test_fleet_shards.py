"""Shard-scheduler tests: determinism, cache reuse, checkpoint resume.

The headline contract: a fixed ``(population seed, config)`` produces a
byte-identical merged sketch digest regardless of batch partition,
shard count, or work-stealing submission order.
"""

import pytest

from repro.core.runcache import RunCache
from repro.experiments.parallel import JobResult, run_specs
from repro.fleet.population import PopulationConfig, SessionPopulation
from repro.fleet.session import run_session
from repro.fleet.shards import (
    batch_job_id,
    execute_fleet_batch,
    run_fleet,
)
from repro.fleet.sketch import FleetAggregator
from repro.verify.checkpoint import Checkpointer

#: Small, fast population shared by the scheduler tests (~20 ms per
#: session; every run below stays well under a second).
CONFIG = PopulationConfig(seed=0, size=10, chars_range=(3, 5))


def test_batch_job_id_round_trip():
    from repro.fleet.shards import _parse_batch_id

    assert batch_job_id(0, 10) == "fleet:0-10"
    assert _parse_batch_id("fleet:5-9") == (5, 9)
    with pytest.raises(ValueError):
        _parse_batch_id("fleet:9-5")
    with pytest.raises(ValueError):
        _parse_batch_id("fig7")


def test_digest_invariant_under_partition_shards_and_order():
    runs = [
        run_fleet(CONFIG, shards=1, batch_size=10),            # one batch
        run_fleet(CONFIG, shards=1, batch_size=3),             # fine partition
        run_fleet(CONFIG, shards=2, batch_size=4),             # stolen shards
        run_fleet(CONFIG, shards=2, batch_size=3,
                  batch_order=[3, 1, 2, 0]),                   # permuted order
    ]
    digests = {fleet.digest for fleet in runs}
    assert len(digests) == 1, digests
    # And identical to an unbatched in-process fold.
    population = SessionPopulation(CONFIG)
    reference = FleetAggregator()
    for index in range(CONFIG.size):
        reference.add_session(run_session(population.spec(index)))
    assert reference.digest() in digests
    # Session/event totals carried through unchanged.
    assert runs[0].aggregate.sessions == CONFIG.size
    assert all(fleet.aggregate.events == runs[0].aggregate.events
               for fleet in runs)


def test_invalid_batch_order_rejected():
    with pytest.raises(ValueError, match="batch_order"):
        run_fleet(CONFIG, shards=1, batch_size=5, batch_order=[0, 0])


def test_cache_serves_repeat_fleet(tmp_path):
    cache = RunCache(tmp_path / "cache")
    first = run_fleet(CONFIG, shards=1, batch_size=4, cache=cache)
    assert all(batch["source"] == "run" for batch in first.batches)
    second = run_fleet(CONFIG, shards=1, batch_size=4, cache=cache)
    assert all(batch["source"] == "cache" for batch in second.batches)
    assert second.digest == first.digest
    assert second.provenance()["batches_from_cache"] == len(second.batches)
    # A different population never reuses these entries.
    other = run_fleet(
        PopulationConfig(seed=1, size=10, chars_range=(3, 5)),
        shards=1, batch_size=4, cache=cache,
    )
    assert all(batch["source"] == "run" for batch in other.batches)
    assert other.digest != first.digest


def test_checkpoint_restores_completed_batches(tmp_path):
    path = tmp_path / "fleet.ckpt.json"
    identity = {"population": CONFIG.fingerprint()}
    first = run_fleet(
        CONFIG, shards=1, batch_size=4,
        checkpoint=Checkpointer(path, identity),
    )
    assert path.exists()
    resumed = run_fleet(
        CONFIG, shards=1, batch_size=4,
        checkpoint=Checkpointer(path, identity),
    )
    assert all(batch["source"] == "checkpoint" for batch in resumed.batches)
    assert resumed.digest == first.digest
    assert resumed.provenance()["batches_from_checkpoint"] == len(
        resumed.batches
    )


def test_checkpoint_keys_namespaced_by_population(tmp_path):
    # Two different populations sharing one checkpoint file can never
    # serve each other's batches (same batch ids, different sessions).
    path = tmp_path / "fleet.ckpt.json"
    identity = {"shared": True}
    first = run_fleet(
        CONFIG, shards=1, batch_size=5,
        checkpoint=Checkpointer(path, identity),
    )
    other_config = PopulationConfig(seed=1, size=10, chars_range=(3, 5))
    other = run_fleet(
        other_config, shards=1, batch_size=5,
        checkpoint=Checkpointer(path, identity),
    )
    assert all(batch["source"] == "run" for batch in other.batches)
    assert other.digest != first.digest


def test_batch_executor_seed_mismatch_is_an_error_result():
    job = execute_fleet_batch(
        "fleet:0-2",
        seed=CONFIG.seed + 1,
        run_kwargs={"population": CONFIG.to_dict()},
    )
    assert job.failure_kind == "error"
    assert "population seed" in job.error


def test_batch_executor_bad_id_is_an_error_result():
    job = execute_fleet_batch(
        "fig7", seed=0, run_kwargs={"population": CONFIG.to_dict()}
    )
    assert job.failure_kind == "error"


def test_batch_executor_produces_mergeable_aggregate():
    job = execute_fleet_batch(
        "fleet:0-3", seed=0, run_kwargs={"population": CONFIG.to_dict()}
    )
    assert job.error is None and not job.cache_hit
    data = job.payload["data"]
    aggregate = FleetAggregator.from_dict(data["aggregate"])
    assert aggregate.sessions == 3
    assert data["digest"] == aggregate.digest()


def test_provenance_and_utilization_shape():
    fleet = run_fleet(CONFIG, shards=1, batch_size=5)
    provenance = fleet.provenance()
    assert provenance["sessions"] == CONFIG.size
    assert provenance["population_fingerprint"] == CONFIG.fingerprint()
    assert provenance["merge"] == "commutative-bucket-add"
    assert provenance["merged_digest"] == fleet.digest
    assert provenance["batches"] == 2
    assert 0.0 < fleet.shard_utilization() <= 1.0
    counters = fleet.metrics["counters"]
    assert counters["repro_fleet_sessions_total"]["samples"][0]["value"] == (
        CONFIG.size
    )
    assert "repro_fleet_batches_total" in counters
    assert "repro_fleet_shard_utilization" in fleet.metrics["gauges"]


def _echo_executor(experiment_id, seed, cache=None, refresh=False, **options):
    return JobResult(
        experiment_id=experiment_id,
        seed=seed,
        rendered=f"echo:{experiment_id}:{options.get('run_kwargs')}",
    )


def test_run_specs_executor_hook_replaces_execute_job():
    results = run_specs(
        [("a", 0), ("b", 1)],
        jobs=1,
        executor=_echo_executor,
        run_kwargs={"tag": "hook"},
    )
    assert [job.rendered for job in results] == [
        "echo:a:{'tag': 'hook'}",
        "echo:b:{'tag': 'hook'}",
    ]
