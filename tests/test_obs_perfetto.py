"""Perfetto/Chrome trace-event exporter tests (repro.obs.perfetto).

Covers the exporter contract the docs promise: the output is valid
trace-event JSON, timestamps are monotone per track, every simulated
thread maps to exactly one named track, and span nesting survives a
JSON round-trip.
"""

import json

from repro.obs import (
    Tracer,
    chrome_trace,
    merge_chrome_traces,
    observed,
    validate_chrome_trace,
)
from repro.experiments.registry import run_experiment


def _wall():
    return 7


def make_tracer():
    tracer = Tracer(wall_clock=_wall)
    pid = tracer.register_process("nt40")
    tid = tracer.register_thread(pid, "pump")
    return tracer, pid, tid


class TestChromeTrace:
    def test_valid_json_object_format(self):
        tracer, pid, tid = make_tracer()
        tracer.begin("outer", pid, tid, 1000)
        tracer.instant("mark", pid, tid, 1500)
        tracer.end(pid, tid, 2000)
        trace = chrome_trace(tracer, label="unit")
        assert validate_chrome_trace(trace) == []
        # Round-trips through real JSON (what --trace-out writes).
        parsed = json.loads(json.dumps(trace))
        assert parsed["displayTimeUnit"] == "ns"
        assert parsed["otherData"]["label"] == "unit"
        phases = [e["ph"] for e in parsed["traceEvents"]]
        assert phases.count("B") == phases.count("E") == 1

    def test_metadata_names_processes_and_threads(self):
        tracer, pid, tid = make_tracer()
        tracer.instant("x", pid, tid, 0)
        events = chrome_trace(tracer)["traceEvents"]
        meta = {
            (e["name"], e["pid"], e["tid"]): e["args"]
            for e in events
            if e["ph"] == "M"
        }
        assert meta[("process_name", pid, 0)] == {"name": "nt40"}
        assert meta[("thread_name", pid, tid)] == {"name": "pump"}
        assert meta[("thread_sort_index", pid, tid)] == {"sort_index": tid}

    def test_ts_is_sim_ns_in_microseconds(self):
        tracer, pid, tid = make_tracer()
        tracer.instant("x", pid, tid, 2500)
        (event,) = [
            e for e in chrome_trace(tracer)["traceEvents"] if e["ph"] == "i"
        ]
        assert event["ts"] == 2.5
        assert event["s"] == "t"
        assert event["args"]["wall_ns"] == 7

    def test_open_spans_auto_closed(self):
        tracer, pid, tid = make_tracer()
        tracer.begin("outer", pid, tid, 100)
        tracer.begin("inner", pid, tid, 200)
        tracer.instant("later", pid, tid, 900)
        trace = chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        closes = [e for e in trace["traceEvents"] if e["ph"] == "E"]
        assert len(closes) == 2
        assert all(e["args"].get("auto_closed") for e in closes)
        assert all(e["ts"] == 0.9 for e in closes)
        # LIFO: the inner span closes first.
        assert [e["name"] for e in closes] == ["inner", "outer"]

    def test_nesting_round_trip_through_json(self):
        tracer, pid, tid = make_tracer()
        tracer.begin("a", pid, tid, 0)
        tracer.begin("b", pid, tid, 10)
        tracer.end(pid, tid, 20)
        tracer.begin("c", pid, tid, 30)
        tracer.end(pid, tid, 40)
        tracer.end(pid, tid, 50)
        parsed = json.loads(json.dumps(chrome_trace(tracer)))
        depth = 0
        max_depth = 0
        for event in parsed["traceEvents"]:
            if event["ph"] == "B":
                depth += 1
                max_depth = max(max_depth, depth)
            elif event["ph"] == "E":
                depth -= 1
                assert depth >= 0
        assert depth == 0
        assert max_depth == 2


class TestMerge:
    def _trace(self, name):
        tracer = Tracer(wall_clock=_wall)
        pid = tracer.register_process(name)
        tid = tracer.register_thread(pid, "pump")
        tracer.instant("x", pid, tid, 0)
        return chrome_trace(tracer, label=f"job-{name}")

    def test_pids_remapped_and_labels_prefixed(self):
        merged = merge_chrome_traces([self._trace("a"), None, self._trace("b")])
        assert validate_chrome_trace(merged) == []
        names = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {1: "job-a/a", 2: "job-b/b"}

    def test_merge_of_nothing_is_valid_and_empty(self):
        merged = merge_chrome_traces([])
        assert validate_chrome_trace(merged) == []
        assert merged["traceEvents"] == []


class TestInstrumentedExperiment:
    """A real experiment through the full export path."""

    def test_fig1_trace_is_valid_and_complete(self):
        with observed(trace=True, metrics=False) as session:
            run_experiment("fig1", seed=0)
            trace = chrome_trace(session.tracer, label="fig1/seed0")
            threads = session.tracer.threads()
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        assert len(events) > 100

        # Every simulated thread registered exactly one named track.
        named_tracks = [
            (e["pid"], e["tid"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(named_tracks) == len(set(named_tracks))
        assert set(named_tracks) == set(threads)

        # Per-track timestamps are monotone non-decreasing.
        last_ts = {}
        for event in events:
            if event["ph"] == "M":
                continue
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last_ts.get(track, 0.0)
            last_ts[track] = event["ts"]

        # The export survives a real JSON round-trip intact.
        assert json.loads(json.dumps(trace)) == trace
