"""Unit tests for files, extents and the buffer cache."""

import pytest

from repro.winsys.filesystem import BufferCache, FileSystem, SimFile


class TestFileSystem:
    def test_ntfs_allocates_contiguously(self):
        fs = FileSystem(total_blocks=10_000, kind="ntfs")
        file = fs.create("a", 10 * 4096)
        assert len(file.extents) == 1
        assert file.block_count == 10

    def test_fat_fragments(self):
        fs = FileSystem(total_blocks=100_000, kind="fat", fat_extent_blocks=4)
        file = fs.create("a", 20 * 4096)
        assert len(file.extents) == 5
        # Extents are separated by gaps.
        starts = [start for start, _count in file.extents]
        assert starts == sorted(starts)
        for (s0, c0), (s1, _c1) in zip(file.extents, file.extents[1:]):
            assert s1 > s0 + c0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FileSystem(total_blocks=100, kind="ext4")

    def test_duplicate_name_rejected(self):
        fs = FileSystem(total_blocks=10_000)
        fs.create("a", 4096)
        with pytest.raises(ValueError):
            fs.create("a", 4096)

    def test_zero_size_rejected(self):
        fs = FileSystem(total_blocks=10_000)
        with pytest.raises(ValueError):
            fs.create("a", 0)

    def test_disk_full(self):
        fs = FileSystem(total_blocks=100)
        with pytest.raises(RuntimeError):
            fs.create("big", 200 * 4096)

    def test_lookup_and_exists(self):
        fs = FileSystem(total_blocks=10_000)
        file = fs.create("a", 4096)
        assert fs.lookup("a") is file
        assert fs.exists("a")
        assert not fs.exists("b")

    def test_ensure_idempotent(self):
        fs = FileSystem(total_blocks=10_000)
        a = fs.ensure("x", 4096)
        b = fs.ensure("x", 9999999)  # size ignored on re-ensure
        assert a is b

    def test_files_do_not_overlap(self):
        fs = FileSystem(total_blocks=10_000)
        a = fs.create("a", 10 * 4096)
        b = fs.create("b", 10 * 4096)
        blocks_a = set(a.blocks(0, a.size_bytes, 4096))
        blocks_b = set(b.blocks(0, b.size_bytes, 4096))
        assert not blocks_a & blocks_b


class TestSimFileBlocks:
    def test_block_range_for_offsets(self):
        fs = FileSystem(total_blocks=10_000)
        file = fs.create("a", 10 * 4096)
        start = file.extents[0][0]
        assert file.blocks(0, 1, 4096) == [start]
        assert file.blocks(4096, 4096, 4096) == [start + 1]
        assert file.blocks(4095, 2, 4096) == [start, start + 1]

    def test_zero_length(self):
        fs = FileSystem(total_blocks=10_000)
        file = fs.create("a", 4096)
        assert file.blocks(0, 0, 4096) == []

    def test_read_past_end_rejected(self):
        fs = FileSystem(total_blocks=10_000)
        file = fs.create("a", 4096)
        with pytest.raises(ValueError):
            file.blocks(0, 5 * 4096, 4096)

    def test_negative_rejected(self):
        file = SimFile("x", 4096, extents=[(0, 1)])
        with pytest.raises(ValueError):
            file.blocks(-1, 10, 4096)

    def test_fat_blocks_span_extents(self):
        fs = FileSystem(total_blocks=100_000, kind="fat", fat_extent_blocks=2)
        file = fs.create("a", 6 * 4096)
        blocks = file.blocks(0, 6 * 4096, 4096)
        assert len(blocks) == 6
        assert len(set(blocks)) == 6


class TestBufferCache:
    def test_probe_miss_then_hit(self):
        cache = BufferCache(10)
        hits, misses = cache.probe([1, 2, 3])
        assert hits == [] and misses == [1, 2, 3]
        cache.insert([1, 2, 3])
        hits, misses = cache.probe([1, 2, 3])
        assert hits == [1, 2, 3] and misses == []

    def test_lru_eviction(self):
        cache = BufferCache(2)
        cache.insert([1, 2])
        cache.insert([3])  # evicts 1
        assert 1 not in cache
        assert 2 in cache and 3 in cache

    def test_probe_refreshes_lru(self):
        cache = BufferCache(2)
        cache.insert([1, 2])
        cache.probe([1])  # 1 is now most recent
        cache.insert([3])  # evicts 2
        assert 1 in cache and 2 not in cache

    def test_hit_ratio(self):
        cache = BufferCache(4)
        cache.insert([1])
        cache.probe([1, 2])
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_flush(self):
        cache = BufferCache(4)
        cache.insert([1, 2])
        cache.flush()
        assert len(cache) == 0
        assert 1 not in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferCache(0)

    def test_reinsert_moves_to_end(self):
        cache = BufferCache(2)
        cache.insert([1, 2])
        cache.insert([1])  # refresh 1
        cache.insert([3])  # evicts 2
        assert 1 in cache and 2 not in cache
