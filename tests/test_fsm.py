"""Unit tests for the wait/think FSM (Figure 2)."""

import pytest

from repro.core.fsm import (
    StateInput,
    Transition,
    UserState,
    WaitThinkFSM,
    classify_timeline,
    spans_to_transitions,
)

MS = 1_000_000


class TestFSM:
    def test_initial_state_is_think(self):
        assert WaitThinkFSM().state == UserState.THINK

    def test_any_active_input_means_wait(self):
        for which in StateInput:
            fsm = WaitThinkFSM()
            fsm.apply(Transition(0, which, True))
            assert fsm.state == UserState.WAIT, which

    def test_all_quiet_means_think(self):
        fsm = WaitThinkFSM(cpu_busy=True, queue_nonempty=True, sync_io=True)
        assert fsm.state == UserState.WAIT
        for which in StateInput:
            fsm.apply(Transition(0, which, False))
        assert fsm.state == UserState.THINK

    def test_overlapping_inputs(self):
        """CPU going idle during sync I/O keeps the user waiting."""
        fsm = WaitThinkFSM()
        fsm.apply(Transition(0, StateInput.CPU, True))
        fsm.apply(Transition(1, StateInput.SYNC_IO, True))
        fsm.apply(Transition(2, StateInput.CPU, False))
        assert fsm.state == UserState.WAIT
        fsm.apply(Transition(3, StateInput.SYNC_IO, False))
        assert fsm.state == UserState.THINK

    def test_input_state_query(self):
        fsm = WaitThinkFSM(cpu_busy=True)
        assert fsm.input_state(StateInput.CPU)
        assert not fsm.input_state(StateInput.QUEUE)


class TestClassifyTimeline:
    def test_simple_busy_span(self):
        transitions = [
            Transition(10 * MS, StateInput.CPU, True),
            Transition(15 * MS, StateInput.CPU, False),
        ]
        spans, summary = classify_timeline(transitions, 0, 30 * MS)
        assert summary.wait_ns == 5 * MS
        assert summary.think_ns == 25 * MS
        assert [s.state for s in spans] == [
            UserState.THINK,
            UserState.WAIT,
            UserState.THINK,
        ]

    def test_full_coverage(self):
        transitions = [
            Transition(5 * MS, StateInput.QUEUE, True),
            Transition(9 * MS, StateInput.QUEUE, False),
        ]
        _spans, summary = classify_timeline(transitions, 0, 20 * MS)
        assert summary.total_ns == 20 * MS

    def test_unnoticeable_wait_counted(self):
        transitions = [
            Transition(1 * MS, StateInput.CPU, True),
            Transition(3 * MS, StateInput.CPU, False),  # 2 ms wait
            Transition(10 * MS, StateInput.CPU, True),
            Transition(210 * MS, StateInput.CPU, False),  # 200 ms wait
        ]
        _spans, summary = classify_timeline(transitions, 0, 300 * MS)
        assert summary.wait_ns == 202 * MS
        assert summary.unnoticeable_wait_ns == 2 * MS
        assert summary.noticeable_wait_ns == 200 * MS

    def test_transitions_outside_window_update_state(self):
        transitions = [Transition(0, StateInput.CPU, True)]
        _spans, summary = classify_timeline(transitions, 10 * MS, 20 * MS)
        assert summary.wait_ns == 10 * MS

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            classify_timeline([], 10, 5)

    def test_wait_fraction(self):
        transitions = [
            Transition(0, StateInput.CPU, True),
            Transition(25 * MS, StateInput.CPU, False),
        ]
        _spans, summary = classify_timeline(transitions, 0, 100 * MS)
        assert summary.wait_fraction == pytest.approx(0.25)

    def test_adjacent_same_state_spans_merge(self):
        transitions = [
            Transition(10 * MS, StateInput.CPU, True),
            Transition(12 * MS, StateInput.QUEUE, True),  # still WAIT
            Transition(14 * MS, StateInput.CPU, False),  # still WAIT (queue)
            Transition(20 * MS, StateInput.QUEUE, False),
        ]
        spans, summary = classify_timeline(transitions, 0, 30 * MS)
        wait_spans = [s for s in spans if s.state == UserState.WAIT]
        assert len(wait_spans) == 1
        assert wait_spans[0].duration_ns == 10 * MS


class TestSpansToTransitions:
    def test_pairs(self):
        transitions = spans_to_transitions([(5, 10), (20, 30)], StateInput.SYNC_IO)
        assert len(transitions) == 4
        assert transitions[0].active and not transitions[1].active

    def test_empty_spans_skipped(self):
        assert spans_to_transitions([(5, 5)], StateInput.CPU) == []

    def test_integration_with_classify(self):
        transitions = spans_to_transitions([(10 * MS, 20 * MS)], StateInput.CPU)
        _spans, summary = classify_timeline(transitions, 0, 30 * MS)
        assert summary.wait_ns == 10 * MS
