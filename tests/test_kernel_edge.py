"""Kernel edge cases: spin-waits, GDI flush, hooks, panics."""

import pytest

from repro.sim.timebase import ns_from_ms
from repro.winsys import (
    BusyWait,
    Compute,
    GdiFlush,
    GdiOp,
    GetMessage,
    Message,
    PeekMessage,
    UserCall,
    WM,
    boot,
)
from repro.winsys.kernel import KernelPanic
from repro.sim.work import Work


class TestBusyWaitSyscall:
    def test_spin_ends_when_message_arrives(self, nt40):
        log = []

        def program():
            yield BusyWait(reason="poll")
            log.append(("woke", nt40.now))
            message = yield PeekMessage(remove=True)
            log.append(("got", message.kind))

        thread = nt40.spawn("poller", program())
        nt40.run_for(ns_from_ms(50))
        assert log == []  # still spinning
        nt40.kernel.post_message(thread, Message(WM.USER))
        nt40.run_for(ns_from_ms(20))
        assert log[0][0] == "woke"
        assert log[1] == ("got", WM.USER)

    def test_cpu_fully_busy_while_spinning(self, nt40):
        def program():
            yield BusyWait()

        nt40.spawn("poller", program())
        nt40.run_for(ns_from_ms(5))
        busy_before = nt40.machine.cpu.busy_ns
        nt40.run_for(ns_from_ms(100))
        busy = nt40.machine.cpu.busy_ns - busy_before
        assert busy > ns_from_ms(95)

    def test_spin_returns_immediately_if_queued(self, nt40):
        log = []

        def program():
            yield Compute(nt40.personality.app_work(1000))
            yield BusyWait()
            log.append(nt40.now)

        thread = nt40.spawn("poller", program())
        nt40.kernel.post_message(thread, Message(WM.USER))
        nt40.run_for(ns_from_ms(10))
        assert log and log[0] < ns_from_ms(5)

    def test_spin_survives_preemption_by_dpc(self, nt40):
        """A clock tick mid-spin must not terminate the wait."""
        log = []

        def program():
            yield BusyWait()
            log.append(nt40.now)

        thread = nt40.spawn("poller", program())
        nt40.run_for(ns_from_ms(35))  # several ticks elapse
        assert log == []
        nt40.kernel.post_message(thread, Message(WM.USER))
        nt40.run_for(ns_from_ms(10))
        assert len(log) == 1


class TestGdiPath:
    def test_gdi_ops_accumulate_until_blocking_getmessage(self, nt40):
        def program():
            for _ in range(3):
                yield GdiOp(base=nt40.personality.app_work(10_000), pixels=100)
            yield GetMessage()  # queue empty -> flush happens here

        thread = nt40.spawn("painter", program())
        nt40.run_for(ns_from_ms(20))
        batch = nt40.kernel.gdi_batch(thread)
        assert batch.flushes == 1
        assert batch.ops_flushed == 3

    def test_explicit_gdi_flush(self, nt40):
        def program():
            yield GdiOp(base=nt40.personality.app_work(10_000))
            yield GdiFlush()
            yield GetMessage()

        thread = nt40.spawn("painter", program())
        nt40.run_for(ns_from_ms(20))
        assert nt40.kernel.gdi_batch(thread).flushes == 1

    def test_pixels_reach_display(self, nt40):
        def program():
            yield GdiOp(base=nt40.personality.app_work(1000), pixels=640)
            yield GdiFlush()

        nt40.spawn("painter", program())
        nt40.run_for(ns_from_ms(10))
        assert nt40.machine.display.pixels_painted == 640

    def test_empty_flush_is_free(self, nt40):
        done = []

        def program():
            yield GdiFlush()
            done.append(nt40.now)

        nt40.spawn("painter", program())
        nt40.run_for(ns_from_ms(5))
        assert done


class TestUserCall:
    def test_user_call_costs_scale_by_personality(self, nt351, nt40):
        def elapsed(system):
            done = []

            def program():
                yield UserCall("CreateWindow", system.personality.app_work(500_000))
                done.append(system.now)

            system.spawn("caller", program())
            system.run_for(ns_from_ms(50))
            return done[0]

        assert elapsed(nt351) > elapsed(nt40)


class TestHookRecords:
    def test_call_record_carries_queue_length(self, nt40):
        records = []
        nt40.hooks.register("GetMessage", records.append)

        def program():
            while True:
                yield GetMessage()

        thread = nt40.spawn("app", program(), foreground=True)
        nt40.run_for(ns_from_ms(5))
        nt40.kernel.post_message(thread, Message(WM.USER))
        nt40.kernel.post_message(thread, Message(WM.USER))
        nt40.run_for(ns_from_ms(10))
        call_records = [r for r in records if r.message is None]
        assert any(r.queue_len >= 1 for r in call_records)

    def test_blocked_call_marked(self, nt40):
        records = []
        nt40.hooks.register("GetMessage", records.append)

        def program():
            yield GetMessage()

        nt40.spawn("app", program())
        nt40.run_for(ns_from_ms(5))
        assert any(r.blocked for r in records if r.message is None)


class TestPanics:
    def test_unknown_syscall_panics(self, nt40):
        def program():
            yield object()

        nt40.spawn("bad", program())
        with pytest.raises(KernelPanic):
            nt40.run_for(ns_from_ms(5))

    def test_double_boot_panics(self, nt40):
        with pytest.raises(KernelPanic):
            nt40.kernel.boot()
