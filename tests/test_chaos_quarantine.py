"""Unhealable chaos: loss must be accounted exactly, never silently.

Acceptance bar (ISSUE 7): under a deterministic poison schedule the
quarantine machinery bisects failing batches down to session
granularity, pins the poison set in provenance, trips per-group circuit
breakers on systemic failure, and always satisfies ``expected ==
completed + quarantined + skipped`` — with the merged digest stamped
``partial``.
"""

import pytest

from repro.chaos import ChaosEngine, chaos_payload, get_chaos_scenario
from repro.fleet.population import PopulationConfig, SessionPopulation
from repro.fleet.shards import run_fleet

_CONFIG = dict(seed=7, size=24, chars_range=(4, 6))


def _config() -> PopulationConfig:
    return PopulationConfig(**_CONFIG)


def _poisoned_indices(scenario: str, chaos_seed: int, size: int) -> set:
    engine = ChaosEngine(get_chaos_scenario(scenario), seed=chaos_seed)
    return {i for i in range(size) if engine.poisoned(i)}


def _assert_accounted(fleet) -> None:
    assert (
        fleet.sessions_expected
        == fleet.sessions_completed
        + fleet.sessions_quarantined
        + fleet.sessions_skipped
    )


def test_bisection_quarantines_exactly_the_poisoned_sessions():
    expected_poison = _poisoned_indices("poison-sessions", 3, _CONFIG["size"])
    assert expected_poison  # schedule must actually poison something
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=6,
        chaos="poison-sessions",
        chaos_seed=3,
    )
    _assert_accounted(fleet)
    assert {e["index"] for e in fleet.quarantined} == expected_poison
    assert fleet.sessions_skipped == 0
    assert fleet.sessions_completed == _CONFIG["size"] - len(expected_poison)
    assert not fleet.complete
    assert fleet.digest_scope == "partial"
    # Every quarantine record carries its (os, scenario) group tag.
    population = SessionPopulation(_config())
    for entry in fleet.quarantined:
        spec = population.spec(entry["index"])
        assert entry["group"] == f"{spec.os_name}/{spec.scenario or 'healthy'}"
        assert entry["failure_kind"] == "error"


def test_provenance_pins_the_poison_set():
    fleet = run_fleet(
        _config(), shards=1, batch_size=6, chaos="poison-sessions", chaos_seed=3
    )
    record = fleet.provenance()
    assert record["digest_scope"] == "partial"
    assert record["sessions_expected"] == _CONFIG["size"]
    assert (
        record["sessions_completed"]
        + record["sessions_quarantined"]
        + record["sessions_skipped"]
        == record["sessions_expected"]
    )
    quarantine = record["quarantine"]
    assert quarantine["population_fingerprint"] == _config().fingerprint()
    assert quarantine["sessions"] == sorted(
        e["index"] for e in fleet.quarantined
    )
    assert record["chaos"]["plan"] == "poison-sessions"
    assert record["chaos"]["seed"] == 3


def test_group_coverage_sums_to_expected():
    fleet = run_fleet(
        _config(), shards=1, batch_size=6, chaos="poison-sessions", chaos_seed=3
    )
    coverage = fleet.group_coverage()
    total = sum(counts["expected"] for counts in coverage.values())
    assert total == _CONFIG["size"]
    for counts in coverage.values():
        assert (
            counts["expected"]
            == counts["completed"] + counts["quarantined"] + counts["skipped"]
        )
        assert 0.0 <= counts["coverage"] <= 1.0


def test_epidemic_trips_breaker_into_skips():
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=6,
        chaos="poison-epidemic",
        chaos_seed=3,
        breaker_threshold=2,
    )
    _assert_accounted(fleet)
    assert fleet.sessions_skipped > 0  # breaker opened somewhere
    breaker = fleet.recovery["breaker"]
    assert breaker["threshold"] == 2
    assert breaker["tripped"]  # at least one group's circuit opened
    for entry in fleet.skipped:
        assert entry["reason"] == "circuit-open"
        assert entry["group"] in breaker["tripped"]


def test_breaker_threshold_zero_investigates_everything():
    expected_poison = _poisoned_indices("poison-epidemic", 3, _CONFIG["size"])
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=6,
        chaos="poison-epidemic",
        chaos_seed=3,
        breaker_threshold=0,
    )
    _assert_accounted(fleet)
    assert fleet.sessions_skipped == 0
    assert {e["index"] for e in fleet.quarantined} == expected_poison


def test_quarantine_disabled_accounts_at_batch_granularity():
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=6,
        chaos="poison-sessions",
        chaos_seed=3,
        quarantine=False,
    )
    _assert_accounted(fleet)
    assert fleet.failures  # the failed batches stay on record
    assert fleet.sessions_quarantined == 0
    assert fleet.sessions_skipped > 0
    assert fleet.digest_scope == "partial"
    for entry in fleet.skipped:
        assert entry["reason"] == "failed-batch"
    # Whole failed batches were dropped: skip count is a multiple of
    # the losses' batch membership, and completed sessions came only
    # from clean batches.
    assert fleet.sessions_completed + fleet.sessions_skipped == _CONFIG["size"]


def test_corrupt_results_without_quarantine_are_classified_corrupt():
    """Transport corruption is caught by the fold's digest check and —
    with recovery off and no retries — lands in failures as 'corrupt',
    with every session accounted as skipped."""
    fleet = run_fleet(
        _config(),
        shards=1,
        batch_size=6,
        chaos="corrupt-results",
        chaos_seed=0,
        quarantine=False,
    )
    _assert_accounted(fleet)
    assert fleet.sessions_completed == 0
    assert fleet.sessions_skipped == _CONFIG["size"]
    assert fleet.failures
    for entry in fleet.failures:
        assert entry["failure_kind"] == "corrupt"
        assert "digest mismatch" in entry["error"]


def test_partial_digest_matches_clean_run_over_surviving_sessions():
    """The partial digest is not garbage: it equals the digest of a
    clean in-process fold over exactly the surviving sessions."""
    from repro.fleet.session import run_session
    from repro.fleet.sketch import DEFAULT_COMPRESSION, FleetAggregator

    fleet = run_fleet(
        _config(), shards=1, batch_size=6, chaos="poison-sessions", chaos_seed=3
    )
    lost = {e["index"] for e in fleet.quarantined}
    population = SessionPopulation(_config())
    reference = FleetAggregator(DEFAULT_COMPRESSION)
    for index in range(_CONFIG["size"]):
        if index not in lost:
            reference.add_session(run_session(population.spec(index)))
    assert fleet.digest == reference.digest()
