"""Resilient transport over the lossy link.

Three cooperating pieces, all deterministic in ``(seed, configs)``:

* :class:`RtoEstimator` — Jacobson/Karels adaptive retransmission
  timeout: ``SRTT``/``RTTVAR`` smoothing with a floor/ceiling clamp and
  a sticky exponential backoff multiplier that doubles on every timeout
  and resets on the next *clean* RTT sample.  Karn's algorithm: only
  never-retransmitted packets contribute RTT samples, so a retransmit
  ambiguity can never poison the estimate.
* :class:`InputChannel` — sequence-numbered input upstream with ARQ:
  every input is retransmitted under the current (backed-off) RTO until
  acked or the retry cap is exhausted, at which point the input is
  *abandoned* and an unreliable skip notice lets the server release the
  head-of-line hole early.
* :class:`TransportLog` — the flight recorder: every send, retransmit,
  ack, give-up, frame decision and prediction outcome is appended in
  simulated-time order, and :meth:`TransportLog.digest` collapses the
  whole schedule into one SHA-256 — the byte-identity proof the
  ``ext-remote`` golden checks pin.

The downstream frame pipeline lives with the server/session
(:mod:`repro.remote.session`); packets themselves are tiny frozen
dataclasses so they serialize into the log verbatim.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..sim.timebase import ns_from_ms

__all__ = [
    "AckPacket",
    "FramePacket",
    "InputChannel",
    "InputPacket",
    "RtoEstimator",
    "SkipPacket",
    "TransportConfig",
    "TransportLog",
]


@dataclass(frozen=True)
class TransportConfig:
    """Knobs of the resilient transport (pure data, round-trippable)."""

    input_bytes: int = 64            # upstream input-event packet size
    ack_bytes: int = 32              # downstream ack size
    frame_base_bytes: int = 1_400    # frame overhead
    frame_tick_bytes: int = 260      # extra bytes per coalesced dirty tick
    frame_interval_ms: float = 33.0  # server frame cadence
    jitter_buffer_ms: float = 12.0   # client playout delay
    degrade_backlog_ms: float = 25.0  # downlink backlog → degraded frames
    skip_backlog_ms: float = 70.0    # downlink backlog → skip (coalesce) tick
    rto_initial_ms: float = 150.0
    rto_min_ms: float = 60.0
    rto_max_ms: float = 1_200.0
    rto_margin_ms: float = 12.0
    retry_cap: int = 6               # transmissions before giving up
    hol_skip_ms: float = 450.0       # server head-of-line gap timeout
    prediction: bool = False         # client-side provisional echo
    predict_base_miss: float = 0.03  # baseline misprediction probability

    def __post_init__(self) -> None:
        for name in ("input_bytes", "ack_bytes", "frame_base_bytes",
                     "frame_tick_bytes", "retry_cap"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("frame_interval_ms", "rto_initial_ms", "rto_min_ms",
                     "rto_max_ms", "hol_skip_ms"):
            if float(getattr(self, name)) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("jitter_buffer_ms", "degrade_backlog_ms",
                     "skip_backlog_ms", "rto_margin_ms"):
            if float(getattr(self, name)) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.predict_base_miss < 1.0:
            raise ValueError("predict_base_miss must be in [0, 1)")
        if self.rto_min_ms > self.rto_max_ms:
            raise ValueError("rto_min_ms must be <= rto_max_ms")

    def to_dict(self) -> dict:
        return {
            "kind": "transport-config",
            "input_bytes": self.input_bytes,
            "ack_bytes": self.ack_bytes,
            "frame_base_bytes": self.frame_base_bytes,
            "frame_tick_bytes": self.frame_tick_bytes,
            "frame_interval_ms": self.frame_interval_ms,
            "jitter_buffer_ms": self.jitter_buffer_ms,
            "degrade_backlog_ms": self.degrade_backlog_ms,
            "skip_backlog_ms": self.skip_backlog_ms,
            "rto_initial_ms": self.rto_initial_ms,
            "rto_min_ms": self.rto_min_ms,
            "rto_max_ms": self.rto_max_ms,
            "rto_margin_ms": self.rto_margin_ms,
            "retry_cap": self.retry_cap,
            "hol_skip_ms": self.hol_skip_ms,
            "prediction": self.prediction,
            "predict_base_miss": self.predict_base_miss,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "TransportConfig":
        if data.get("kind") != "transport-config":
            raise ValueError(f"not a transport-config payload: {data.get('kind')!r}")
        fields = {k: v for k, v in data.items() if k != "kind"}
        return TransportConfig(**fields)

    def fingerprint(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class TransportLog:
    """Append-only schedule record with a canonical content digest."""

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def __call__(self, event: Tuple) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def digest(self) -> str:
        canonical = json.dumps(
            self.events, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def count(self, event: str) -> int:
        return sum(1 for entry in self.events if entry[0] == event)


@dataclass(frozen=True)
class InputPacket:
    seq: int
    char: str
    attempt: int
    sent_ns: int


@dataclass(frozen=True)
class AckPacket:
    seq: int


@dataclass(frozen=True)
class SkipPacket:
    """Unreliable notice: the client gave up on ``seq``."""

    seq: int


@dataclass(frozen=True)
class FramePacket:
    """One rendered frame travelling down to the client."""

    fseq: int
    covered: Tuple[int, ...]   # input seqs first displayed by this frame
    ticks: int                 # dirty ticks coalesced into it
    degraded: bool             # reduced-quality encode under backlog
    sent_ns: int


class RtoEstimator:
    """Jacobson SRTT/RTTVAR with clamped RTO and sticky backoff."""

    def __init__(self, config: TransportConfig) -> None:
        self._config = config
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: int = 0
        self.backoff: int = 1
        self.samples = 0

    def sample(self, rtt_ns: int) -> None:
        """Fold one clean (never-retransmitted) RTT sample in."""
        self.samples += 1
        self.backoff = 1  # a fresh sample ends the backed-off regime
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
            return
        delta = abs(self.srtt_ns - rtt_ns)
        self.rttvar_ns = (3 * self.rttvar_ns + delta) // 4
        self.srtt_ns = (7 * self.srtt_ns + rtt_ns) // 8

    def on_timeout(self) -> None:
        """Exponential backoff; capped so rto() stays <= rto_max."""
        self.backoff = min(self.backoff * 2, 64)

    def rto_ns(self) -> int:
        config = self._config
        if self.srtt_ns is None:
            base = ns_from_ms(config.rto_initial_ms)
        else:
            base = self.srtt_ns + 4 * self.rttvar_ns + ns_from_ms(config.rto_margin_ms)
        base = max(ns_from_ms(config.rto_min_ms), base) * self.backoff
        return min(ns_from_ms(config.rto_max_ms), base)


class InputChannel:
    """Client-side ARQ sender for sequence-numbered input events.

    ``on_ack`` is invoked by the link when the server's ack survives the
    downstream direction; ``deliver`` is the server's receive entry
    point.  All timers live on the shared simulator and are cancelled
    eagerly, so the retransmission schedule is replayable from
    ``(seed, link config, transport config)`` alone.
    """

    def __init__(
        self,
        link,
        config: TransportConfig,
        deliver: Callable[[InputPacket], None],
        log: TransportLog,
        on_acked: Optional[Callable[[int, int], None]] = None,
        on_abandoned: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.link = link
        self.sim = link.sim
        self.config = config
        self.estimator = RtoEstimator(config)
        self._deliver = deliver
        self._log = log
        self._on_acked = on_acked
        self._on_abandoned = on_abandoned
        self._next_seq = 1
        #: seq -> in-flight state.
        self._pending: Dict[int, dict] = {}
        self.acked: Dict[int, int] = {}       # seq -> transmissions used
        self.abandoned: List[int] = []
        self.retransmits = 0
        self.rto_backoffs = 0

    # ------------------------------------------------------------------
    def send(self, char: str) -> int:
        """Enqueue one input event; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        state = {
            "char": char,
            "first_sent_ns": self.sim.now,
            "attempts": 0,
            "rto_ns": self.estimator.rto_ns(),
            "timer": None,
        }
        self._pending[seq] = state
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int) -> None:
        state = self._pending[seq]
        state["attempts"] += 1
        now = self.sim.now
        packet = InputPacket(
            seq=seq, char=state["char"], attempt=state["attempts"], sent_ns=now
        )
        kind = "send" if state["attempts"] == 1 else "retransmit"
        self._log((kind, seq, now, state["attempts"], state["rto_ns"]))
        self.link.send(
            "up",
            self.config.input_bytes,
            lambda packet=packet: self._deliver(packet),
            label=f"input:{seq}",
        )
        state["timer"] = self.sim.schedule(
            state["rto_ns"], lambda: self._on_timeout(seq), label=f"rto:{seq}"
        )

    def _on_timeout(self, seq: int) -> None:
        state = self._pending.get(seq)
        if state is None:
            return
        obs = getattr(self.link.system, "obs", None)
        if state["attempts"] >= self.config.retry_cap:
            del self._pending[seq]
            self.abandoned.append(seq)
            self._log(("give-up", seq, self.sim.now, state["attempts"]))
            # Unreliable courtesy notice so the server can release the
            # head-of-line hole before its own gap timeout.
            self.link.send(
                "up",
                self.config.ack_bytes,
                lambda seq=seq: self._deliver(SkipPacket(seq)),
                label=f"skip:{seq}",
            )
            if obs is not None:
                obs.remote_give_up(seq)
            if self._on_abandoned is not None:
                self._on_abandoned(seq)
            return
        self.estimator.on_timeout()
        self.rto_backoffs += 1
        self.retransmits += 1
        state["rto_ns"] = self.estimator.rto_ns()
        if obs is not None:
            obs.remote_retransmit(seq, state["attempts"] + 1, state["rto_ns"])
        self._transmit(seq)

    def on_ack(self, ack: AckPacket) -> None:
        state = self._pending.pop(ack.seq, None)
        if state is None:
            return  # duplicate ack, or the input was already abandoned
        if state["timer"] is not None:
            state["timer"].cancel()
        now = self.sim.now
        transmissions = state["attempts"]
        if transmissions == 1:
            # Karn: only unambiguous (never-retransmitted) samples.
            self.estimator.sample(now - state["first_sent_ns"])
        self.acked[ack.seq] = transmissions
        self._log(("ack", ack.seq, now, transmissions))
        if self._on_acked is not None:
            self._on_acked(ack.seq, transmissions)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def counters(self) -> dict:
        return {
            "sent": self._next_seq - 1,
            "acked": len(self.acked),
            "abandoned": len(self.abandoned),
            "in_flight": len(self._pending),
            "retransmits": self.retransmits,
            "rto_backoffs": self.rto_backoffs,
            "rtt_samples": self.estimator.samples,
        }
