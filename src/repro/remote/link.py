"""Deterministic lossy-link model for remote interaction.

A :class:`LossyLink` connects the simulated client machine to an
abstract rendering server through two independent directions (input
events travel *up*, frames travel *down*).  Each direction has its own
bandwidth, propagation delay, jitter, loss and reorder parameters
(:class:`DirectionConfig`), and the whole link can *flap* — go dark for
a fixed window out of every period (:class:`LinkConfig`).

**The determinism contract.**  Every stochastic decision (loss
coin-flips, jitter draws, reorder draws) comes from a named RNG stream
per direction, forked from the client machine's master seed
(``rngs.fork("remote-link")``), and serialization queueing is integer
nanoseconds on the shared event calendar.  Two runs with the same
``(seed, LinkConfig)`` therefore drop, delay and deliver byte-identical
packet schedules — the property ``ext-remote`` pins with golden
digests.  Flap windows are a pure function of simulated time (no
draws), so degrading a link mid-run never perturbs unrelated streams.

Configs are frozen pure data with ``to_dict``/``from_dict`` round-trips
(property-tested with hypothesis) and a content ``fingerprint`` used in
schedule digests and cache variants.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..sim.timebase import ns_from_ms

__all__ = ["DirectionConfig", "LinkConfig", "LossyLink"]

#: The two directions of a remote-interaction link.
DIRECTIONS = ("up", "down")


@dataclass(frozen=True)
class DirectionConfig:
    """One direction of the link (client→server or server→client)."""

    bandwidth_kbps: float = 4_000.0   # serialization rate
    delay_ms: float = 20.0            # one-way propagation delay
    jitter_ms: float = 0.0            # uniform [0, jitter_ms) extra delay
    loss: float = 0.0                 # independent drop probability
    reorder: float = 0.0              # probability of a reorder excursion
    reorder_ms: float = 4.0           # extra delay of a reordered packet

    def __post_init__(self) -> None:
        if self.bandwidth_kbps <= 0:
            raise ValueError(f"bandwidth_kbps must be positive: {self.bandwidth_kbps}")
        for name, value in (
            ("delay_ms", self.delay_ms),
            ("jitter_ms", self.jitter_ms),
            ("reorder_ms", self.reorder_ms),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative: {value}")
        for name, value in (("loss", self.loss), ("reorder", self.reorder)):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1): {value}")

    def to_dict(self) -> dict:
        return {
            "bandwidth_kbps": self.bandwidth_kbps,
            "delay_ms": self.delay_ms,
            "jitter_ms": self.jitter_ms,
            "loss": self.loss,
            "reorder": self.reorder,
            "reorder_ms": self.reorder_ms,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "DirectionConfig":
        return DirectionConfig(
            bandwidth_kbps=float(data.get("bandwidth_kbps", 4_000.0)),
            delay_ms=float(data.get("delay_ms", 20.0)),
            jitter_ms=float(data.get("jitter_ms", 0.0)),
            loss=float(data.get("loss", 0.0)),
            reorder=float(data.get("reorder", 0.0)),
            reorder_ms=float(data.get("reorder_ms", 4.0)),
        )


@dataclass(frozen=True)
class LinkConfig:
    """A full bidirectional link, plus optional periodic flapping.

    ``flap_period_ms``/``flap_down_ms`` describe a link that goes dark
    for ``flap_down_ms`` out of every ``flap_period_ms`` (both zero =
    never flaps).  Flap windows are anchored at the link's creation
    time, deterministically.
    """

    name: str = "lan"
    up: DirectionConfig = field(default_factory=DirectionConfig)
    down: DirectionConfig = field(default_factory=DirectionConfig)
    flap_period_ms: float = 0.0
    flap_down_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.flap_period_ms < 0 or self.flap_down_ms < 0:
            raise ValueError("flap windows must be non-negative")
        if self.flap_down_ms and not self.flap_period_ms:
            raise ValueError("flap_down_ms without flap_period_ms")
        if self.flap_period_ms and self.flap_down_ms >= self.flap_period_ms:
            raise ValueError(
                f"flap_down_ms ({self.flap_down_ms}) must be shorter than "
                f"flap_period_ms ({self.flap_period_ms})"
            )

    @property
    def rtt_ms(self) -> float:
        return self.up.delay_ms + self.down.delay_ms

    def to_dict(self) -> dict:
        return {
            "kind": "link-config",
            "name": self.name,
            "up": self.up.to_dict(),
            "down": self.down.to_dict(),
            "flap_period_ms": self.flap_period_ms,
            "flap_down_ms": self.flap_down_ms,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "LinkConfig":
        if data.get("kind") != "link-config":
            raise ValueError(f"not a link-config payload: {data.get('kind')!r}")
        return LinkConfig(
            name=str(data.get("name", "lan")),
            up=DirectionConfig.from_dict(data.get("up") or {}),
            down=DirectionConfig.from_dict(data.get("down") or {}),
            flap_period_ms=float(data.get("flap_period_ms", 0.0)),
            flap_down_ms=float(data.get("flap_down_ms", 0.0)),
        )

    def fingerprint(self) -> str:
        """Stable content digest (schedule-digest and cache component)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @staticmethod
    def symmetric(
        name: str,
        rtt_ms: float,
        bandwidth_kbps: float = 4_000.0,
        jitter_ms: float = 0.0,
        loss: float = 0.0,
        reorder: float = 0.0,
        **flap,
    ) -> "LinkConfig":
        """Convenience: both directions share delay = rtt/2 and params."""
        direction = DirectionConfig(
            bandwidth_kbps=bandwidth_kbps,
            delay_ms=rtt_ms / 2.0,
            jitter_ms=jitter_ms,
            loss=loss,
            reorder=reorder,
        )
        return LinkConfig(name=name, up=direction, down=direction, **flap)


class LossyLink:
    """The two-directional lossy pipe between client and server.

    Packets are abstract: callers hand :meth:`send` a byte size and a
    delivery callback; the link decides drop/delay deterministically and
    schedules the callback on the shared simulator.  Registered on the
    system as ``system.remote_link`` so the fault injector's
    ``link-degrade`` kind can find (and degrade) it.
    """

    def __init__(self, system, config: LinkConfig, log: Optional[Callable] = None) -> None:
        self.system = system
        self.sim = system.sim
        self.config = config
        rngs = system.machine.rngs.fork("remote-link")
        self._streams = {d: rngs.stream(d) for d in DIRECTIONS}
        self._busy_until = {d: 0 for d in DIRECTIONS}
        self._log = log
        #: packet tallies per direction.
        self.sent = {d: 0 for d in DIRECTIONS}
        self.delivered = {d: 0 for d in DIRECTIONS}
        self.lost = {d: 0 for d in DIRECTIONS}
        self.flapped = {d: 0 for d in DIRECTIONS}
        self.bytes = {d: 0 for d in DIRECTIONS}
        # Mutable degradation state (driven by the link-degrade fault
        # kind; additive so overlapping windows compose).
        self._loss_add = {d: 0.0 for d in DIRECTIONS}
        self._jitter_add_ms = {d: 0.0 for d in DIRECTIONS}
        self._bandwidth_factor = {d: 1.0 for d in DIRECTIONS}
        #: (period_ns, down_ns, anchor_ns) or None — injected flapping.
        self._flap_override = None
        self._flap_anchor_ns = self.sim.now
        system.remote_link = self

    # ------------------------------------------------------------------
    # Degradation surface (fault injector)
    # ------------------------------------------------------------------
    def degrade(
        self,
        loss_add: float = 0.0,
        jitter_add_ms: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> dict:
        """Apply additive degradation to both directions; returns a
        token :meth:`restore` undoes (windows can overlap)."""
        if bandwidth_factor <= 0:
            raise ValueError(f"bandwidth_factor must be positive: {bandwidth_factor}")
        for d in DIRECTIONS:
            self._loss_add[d] += loss_add
            self._jitter_add_ms[d] += jitter_add_ms
            self._bandwidth_factor[d] *= bandwidth_factor
        return {
            "loss_add": loss_add,
            "jitter_add_ms": jitter_add_ms,
            "bandwidth_factor": bandwidth_factor,
        }

    def restore(self, token: dict) -> None:
        for d in DIRECTIONS:
            self._loss_add[d] -= token["loss_add"]
            self._jitter_add_ms[d] -= token["jitter_add_ms"]
            self._bandwidth_factor[d] /= token["bandwidth_factor"]

    def set_flap(self, period_ms: float, down_ms: float) -> None:
        """Override flapping (injected ``link-flap`` faults)."""
        if down_ms >= period_ms or period_ms <= 0:
            raise ValueError(f"invalid flap override: {period_ms}/{down_ms}")
        self._flap_override = (ns_from_ms(period_ms), ns_from_ms(down_ms), self.sim.now)

    def clear_flap(self) -> None:
        self._flap_override = None

    # ------------------------------------------------------------------
    # The pipe
    # ------------------------------------------------------------------
    def is_down(self, at_ns: int) -> bool:
        """Is the link dark at ``at_ns``?  Pure function of time."""
        if self._flap_override is not None:
            period_ns, down_ns, anchor_ns = self._flap_override
        elif self.config.flap_period_ms:
            period_ns = ns_from_ms(self.config.flap_period_ms)
            down_ns = ns_from_ms(self.config.flap_down_ms)
            anchor_ns = self._flap_anchor_ns
        else:
            return False
        return (at_ns - anchor_ns) % period_ns < down_ns

    def effective(self, direction: str) -> DirectionConfig:
        """The direction's config with current degradation folded in."""
        config = getattr(self.config, direction)
        return DirectionConfig(
            bandwidth_kbps=config.bandwidth_kbps * self._bandwidth_factor[direction],
            delay_ms=config.delay_ms,
            jitter_ms=config.jitter_ms + self._jitter_add_ms[direction],
            loss=min(0.99, config.loss + self._loss_add[direction]),
            reorder=config.reorder,
            reorder_ms=config.reorder_ms,
        )

    def backlog_ns(self, direction: str) -> int:
        """Serialization backlog: how far behind real time the
        direction's transmit queue is (the degradation signal)."""
        return max(0, self._busy_until[direction] - self.sim.now)

    def send(
        self,
        direction: str,
        size_bytes: int,
        deliver: Callable[[], None],
        label: str = "pkt",
    ):
        """Offer one packet; returns the delivery event or None if lost.

        Drop decisions (flap window, then loss coin-flip) happen at send
        time; surviving packets serialize behind the direction's queue,
        then cross propagation + jitter (+ a reorder excursion).
        """
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.sim.now
        stream = self._streams[direction]
        config = getattr(self.config, direction)
        self.sent[direction] += 1
        self.bytes[direction] += size_bytes
        obs = getattr(self.system, "obs", None)

        if self.is_down(now):
            self.flapped[direction] += 1
            self._note("flap", direction, label, now)
            if obs is not None:
                obs.remote_packet(direction, "flap", size_bytes)
            return None
        loss = min(0.99, config.loss + self._loss_add[direction])
        if loss > 0.0 and stream.random() < loss:
            self.lost[direction] += 1
            self._note("loss", direction, label, now)
            if obs is not None:
                obs.remote_packet(direction, "loss", size_bytes)
            return None

        kbps = config.bandwidth_kbps * self._bandwidth_factor[direction]
        # size_bytes*8 bits at kbps kilobits/second, in integer ns.
        serialize_ns = max(1, round(size_bytes * 8 * 1e6 / kbps))
        start_ns = max(now, self._busy_until[direction])
        end_ns = start_ns + serialize_ns
        self._busy_until[direction] = end_ns

        extra_ns = 0
        jitter_ms = config.jitter_ms + self._jitter_add_ms[direction]
        if jitter_ms > 0.0:
            extra_ns += round(stream.uniform(0.0, jitter_ms) * 1e6)
        if config.reorder > 0.0 and stream.random() < config.reorder:
            extra_ns += ns_from_ms(config.reorder_ms)
        at_ns = end_ns + ns_from_ms(config.delay_ms) + extra_ns

        self.delivered[direction] += 1
        self._note("tx", direction, label, now, at_ns, size_bytes)
        if obs is not None:
            obs.remote_packet(direction, "delivered", size_bytes)
            obs.remote_link_busy(direction, start_ns, end_ns)
            obs.remote_backlog(direction, self.backlog_ns(direction))
        return self.sim.schedule_at(
            at_ns, deliver, label=f"net:{direction}:{label}"
        )

    def _note(self, event: str, *fields) -> None:
        if self._log is not None:
            self._log((event, *fields))

    def counters(self) -> dict:
        return {
            "sent": dict(self.sent),
            "delivered": dict(self.delivered),
            "lost": dict(self.lost),
            "flapped": dict(self.flapped),
            "bytes": dict(self.bytes),
        }
