"""Remote interaction over a lossy link (ROADMAP item 3).

Deterministic lossy-link model, resilient ARQ transport with adaptive
RTO, frame pipeline with graceful degradation, and the client/server
session harness that measures remote wait time with the paper's
methodology.  See ``docs/remote-interaction.md``.
"""

from .link import DIRECTIONS, DirectionConfig, LinkConfig, LossyLink
from .session import (
    RemoteServer,
    RemoteSession,
    RemoteSessionResult,
    RemoteViewerApp,
    run_remote_session,
)
from .transport import (
    AckPacket,
    FramePacket,
    InputChannel,
    InputPacket,
    RtoEstimator,
    SkipPacket,
    TransportConfig,
    TransportLog,
)

__all__ = [
    "DIRECTIONS",
    "DirectionConfig",
    "LinkConfig",
    "LossyLink",
    "AckPacket",
    "FramePacket",
    "InputChannel",
    "InputPacket",
    "RtoEstimator",
    "SkipPacket",
    "TransportConfig",
    "TransportLog",
    "RemoteServer",
    "RemoteSession",
    "RemoteSessionResult",
    "RemoteViewerApp",
    "run_remote_session",
]
