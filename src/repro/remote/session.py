"""Client/server remote-interaction session.

The client is a real simulated OS personality: keystrokes enter through
the keyboard interrupt path, the viewer app captures them in its message
pump and hands them to the ARQ :class:`~repro.remote.transport.InputChannel`;
frames come back through the NIC interrupt path as ``WM_SOCKET``
messages, so frame presentation pays the same USER/GDI costs every other
measured application pays.  The server is an event-level model on the
far side of the :class:`~repro.remote.link.LossyLink`: it applies inputs
in order (head-of-line blocking with a gap-skip timeout), acks each one,
and emits frames on a fixed cadence with a backlog-driven degradation
ladder (full → degraded encode → coalesce).

**Wait semantics** (the paper's metric, stretched across a network):

* prediction OFF — a keystroke's wait ends when the first frame whose
  cumulative ``covered`` set includes its sequence number finishes
  drawing on the client.  Inputs the transport abandons resolve at
  give-up time (the moment the user knows the character is lost).
* prediction ON — the wait ends when the provisional local echo
  finishes drawing (a few ms, loss-independent); the price is the
  *correction* count: echoes invalidated by retransmitted, abandoned or
  base-rate-mispredicted inputs.

Every decision in a session — drops, retransmit timers, backoff, frame
degradation, prediction outcomes — lands in one :class:`TransportLog`
whose SHA-256 digest is byte-identical across runs of the same
``(os, seed, LinkConfig, TransportConfig)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..apps.base import InteractiveApp
from ..faults import FaultInjector, get_scenario
from ..sim.timebase import ns_from_ms
from ..winsys import boot
from ..winsys.syscalls import Syscall
from .link import LinkConfig, LossyLink
from .transport import (
    AckPacket,
    FramePacket,
    InputChannel,
    InputPacket,
    SkipPacket,
    TransportConfig,
    TransportLog,
)

__all__ = ["RemoteServer", "RemoteSession", "RemoteSessionResult", "RemoteViewerApp"]

#: Trailing repeat frames after the last dirty tick, so a lossy downlink
#: still converges on the final screen state.
_REPEAT_FRAMES = 8
#: Client warm-up / post-typing drain (ms of simulated time).
_WARMUP_MS = 150.0
_DRAIN_MS = 2_500.0


class RemoteServer:
    """Far-side input applier and frame producer (event-level model)."""

    def __init__(
        self,
        link: LossyLink,
        config: TransportConfig,
        log: TransportLog,
        on_ack,
    ) -> None:
        self.link = link
        self.sim = link.sim
        self.config = config
        self._log = log
        self._on_ack = on_ack
        self.next_apply = 1
        self._buffer: Dict[int, InputPacket] = {}
        self._skipped = set()
        self.applied: Dict[int, int] = {}   # seq -> apply time (ns)
        self.late_applies = 0               # applied after a HOL skip-past
        self.dup_inputs = 0
        self.hol_skips = 0
        self.fseq = 0
        self.frames_sent = 0
        self.frames_degraded = 0
        self.frames_coalesced = 0
        self._dirty = False
        self._repeats_left = 0
        self._coalesced_run = 0
        self._hol_timer = None
        self._tick_event = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self._tick_event = self.sim.schedule(
            ns_from_ms(self.config.frame_interval_ms), self._tick, label="frame-tick"
        )

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if self._hol_timer is not None:
            self._hol_timer.cancel()
            self._hol_timer = None

    # ------------------------------------------------------------------
    # Upstream receive
    # ------------------------------------------------------------------
    def deliver(self, packet) -> None:
        if isinstance(packet, SkipPacket):
            if packet.seq >= self.next_apply and packet.seq not in self.applied:
                self._skipped.add(packet.seq)
                self._log(("srv-skip", packet.seq, self.sim.now))
            self._drain()
            return
        assert isinstance(packet, InputPacket)
        seq = packet.seq
        # Always ack — a duplicate means our previous ack was lost.
        self._send_ack(seq)
        if seq in self.applied or seq in self._skipped or seq in self._buffer:
            self.dup_inputs += 1
            return
        if seq < self.next_apply:
            # HOL-skipped earlier, arrived after all: out-of-order apply.
            self._apply(seq, late=True)
            return
        self._buffer[seq] = packet
        self._drain()

    def _send_ack(self, seq: int) -> None:
        self.link.send(
            "down",
            self.config.ack_bytes,
            lambda seq=seq: self._on_ack(AckPacket(seq)),
            label=f"ack:{seq}",
        )

    def _apply(self, seq: int, late: bool = False) -> None:
        self.applied[seq] = self.sim.now
        self._dirty = True
        self._repeats_left = _REPEAT_FRAMES
        if late:
            self.late_applies += 1
            self._log(("apply-late", seq, self.sim.now))
        else:
            self._log(("apply", seq, self.sim.now))

    def _drain(self) -> None:
        advanced = False
        while True:
            if self.next_apply in self._buffer:
                self._buffer.pop(self.next_apply)
                self._apply(self.next_apply)
                self.next_apply += 1
                advanced = True
            elif self.next_apply in self._skipped:
                self._skipped.discard(self.next_apply)
                self.next_apply += 1
                advanced = True
            else:
                break
        if advanced and self._hol_timer is not None:
            self._hol_timer.cancel()
            self._hol_timer = None
        if self._buffer and self._hol_timer is None and self._running:
            # A gap is blocking buffered input: arm the skip-past timer.
            self._hol_timer = self.sim.schedule(
                ns_from_ms(self.config.hol_skip_ms),
                self._hol_skip,
                label="hol-skip",
            )

    def _hol_skip(self) -> None:
        self._hol_timer = None
        if not self._buffer:
            return
        # Skip past the gap up to the first buffered seq; if the missing
        # input arrives later it applies out of order (consistency damage).
        gap_end = min(self._buffer)
        for seq in range(self.next_apply, gap_end):
            self._skipped.discard(seq)
            self.hol_skips += 1
            self._log(("hol-skip", seq, self.sim.now))
        self.next_apply = gap_end
        self._drain()

    # ------------------------------------------------------------------
    # Downstream frames
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        self._tick_event = self.sim.schedule(
            ns_from_ms(self.config.frame_interval_ms), self._tick, label="frame-tick"
        )
        if not self._dirty and self._repeats_left <= 0:
            return  # idle tick: nothing on screen changed
        obs = getattr(self.link.system, "obs", None)
        backlog_ns = self.link.backlog_ns("down")
        if backlog_ns > ns_from_ms(self.config.skip_backlog_ms):
            # The downlink is badly behind: coalesce (send nothing, the
            # next frame covers this tick's damage too).
            self.frames_coalesced += 1
            self._coalesced_run += 1
            self._log(("frame-coalesce", self.fseq + 1, self.sim.now, backlog_ns))
            if obs is not None:
                obs.remote_frame("coalesced")
            return
        degraded = backlog_ns > ns_from_ms(self.config.degrade_backlog_ms)
        self.fseq += 1
        if not self._dirty:
            self._repeats_left -= 1
        self._dirty = False
        covered = tuple(sorted(self.applied))
        frame = FramePacket(
            fseq=self.fseq,
            covered=covered,
            ticks=1 + self._coalesced_run,
            degraded=degraded,
            sent_ns=self.sim.now,
        )
        self._coalesced_run = 0
        size = self.config.frame_base_bytes + self.config.frame_tick_bytes
        if degraded:
            size = max(64, size // 3)
            self.frames_degraded += 1
        self.frames_sent += 1
        self._log(
            ("frame", frame.fseq, self.sim.now, len(covered), int(degraded), size)
        )
        if obs is not None:
            obs.remote_frame("degraded" if degraded else "full")
        self.link.send(
            "down", size, lambda frame=frame: self._frame_out(frame),
            label=f"frame:{frame.fseq}",
        )

    def _frame_out(self, frame: FramePacket) -> None:
        """Set by the session: delivery callback into the jitter buffer."""
        raise NotImplementedError  # pragma: no cover - rebound in session

    def counters(self) -> dict:
        return {
            "applied": len(self.applied),
            "late_applies": self.late_applies,
            "dup_inputs": self.dup_inputs,
            "hol_skips": self.hol_skips,
            "frames_sent": self.frames_sent,
            "frames_degraded": self.frames_degraded,
            "frames_coalesced": self.frames_coalesced,
        }


class RemoteViewerApp(InteractiveApp):
    """Thin-client viewer: captures keystrokes, presents frames."""

    name = "remoteview"

    def __init__(self, system, session: "RemoteSession") -> None:
        super().__init__(system)
        self.remote = session
        self.frames_presented = 0

    def start(self, foreground: bool = True, **kwargs):
        thread = super().start(foreground=foreground, **kwargs)
        self.system.bind_socket(thread)
        return thread

    def on_char(self, char: str) -> Iterator[Syscall]:
        session = self.remote
        yield self.app_compute(6_000, label="remote-capture")
        seq = session.channel.send(char)
        session.note_inject(seq)
        if session.transport.prediction:
            # Provisional local echo: respond now, reconcile later.
            yield self.draw(8_000, pixels=400, label="predict-echo")
            session.note_echo(seq, self.system.now)

    def on_key(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(8_000, label="remote-keydown")

    def on_keyup(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(4_000, label="remote-keyup")

    def on_socket(self, packet) -> Iterator[Syscall]:
        frame = packet.payload
        if not isinstance(frame, FramePacket):  # stray traffic
            yield self.app_compute(5_000, label="remote-noise")
            return
        if frame.degraded:
            yield self.gui_compute(16_000, label="frame-decode-lo")
            yield self.draw(9_000, pixels=700, label="frame-present-lo")
        else:
            yield self.gui_compute(40_000, label="frame-decode")
            yield self.draw(14_000, pixels=2_000, label="frame-present")
        self.frames_presented += 1
        self.remote.note_frame_displayed(frame, self.system.now)


@dataclass
class RemoteSessionResult:
    """Everything one remote session contributes upstream."""

    os_name: str
    link_name: str
    prediction: bool
    scenario: Optional[str]
    #: Per-keystroke wait (ms): frame-echo wait (prediction OFF) or
    #: provisional-echo wait (prediction ON).
    wait_ms: List[float] = field(default_factory=list)
    #: Keystrokes never resolved in-session (drain-censored).
    unresolved: int = 0
    #: Prediction corrections (echoes that later proved wrong).
    corrections: int = 0
    predictions: int = 0
    abandoned: int = 0
    span_ms: float = 0.0
    schedule_digest: str = ""
    channel: dict = field(default_factory=dict)
    server: dict = field(default_factory=dict)
    link: dict = field(default_factory=dict)
    frames_stale: int = 0

    @property
    def consistency_cost(self) -> float:
        """Corrections + server-side out-of-order applies, per keystroke."""
        chars = max(1, len(self.wait_ms) + self.unresolved)
        damage = self.corrections + self.server.get("late_applies", 0) + self.abandoned
        return damage / chars

    def to_dict(self) -> dict:
        return {
            "os": self.os_name,
            "link": self.link_name,
            "prediction": self.prediction,
            "scenario": self.scenario,
            "wait_ms": [round(float(w), 6) for w in self.wait_ms],
            "unresolved": self.unresolved,
            "corrections": self.corrections,
            "predictions": self.predictions,
            "abandoned": self.abandoned,
            "span_ms": round(float(self.span_ms), 6),
            "schedule_digest": self.schedule_digest,
            "channel": dict(self.channel),
            "server": dict(self.server),
            "link": self.link,
            "frames_stale": self.frames_stale,
            "consistency_cost": round(self.consistency_cost, 6),
        }


class RemoteSession:
    """Glue: one client system + link + server, driven to completion."""

    def __init__(
        self,
        system,
        link_config: LinkConfig,
        transport: Optional[TransportConfig] = None,
        scenario: Optional[str] = None,
    ) -> None:
        self.system = system
        self.sim = system.sim
        self.transport = transport or TransportConfig()
        self.log = TransportLog()
        self.link = LossyLink(system, link_config, log=self.log)
        self.server = RemoteServer(
            self.link, self.transport, self.log, on_ack=self._ack_arrived
        )
        self.server._frame_out = self._frame_arrived
        self.channel = InputChannel(
            self.link,
            self.transport,
            deliver=self.server.deliver,
            log=self.log,
            on_acked=self._input_acked,
            on_abandoned=self._input_abandoned,
        )
        self.app = RemoteViewerApp(system, self)
        self._predict_stream = system.machine.rngs.stream("remote-predict")
        #: Stage-envelope recorder (attached at boot when an obs session
        #: is active); remote envelopes anchor at the hardware keystroke
        #: time and spend their round trip in the ``network`` stage.
        self._recorder = getattr(
            getattr(system, "obs", None), "envelopes", None
        )
        self._envs: Dict[int, object] = {}
        #: FIFO of keyboard-injection times; ``note_inject`` pairs each
        #: captured char with its true hardware inject time so waits
        #: include the local input path, as the paper's waits do.
        self._key_times: List[int] = []
        self._inject_ns: Dict[int, int] = {}
        self._pending: Dict[int, int] = {}   # seq -> inject (awaiting display)
        self._wait_ns: Dict[int, int] = {}
        self._echo_pending: Dict[int, int] = {}
        self.corrections = 0
        self.predictions = 0
        self.frames_stale = 0
        self._last_played_fseq = 0
        self.injector = None
        if scenario is not None:
            self.injector = FaultInjector(
                system, get_scenario(scenario)
            ).install()
            if self._recorder is not None:
                self._recorder.scenario = scenario
        self.scenario = scenario

    # ------------------------------------------------------------------
    # Client-side bookkeeping
    # ------------------------------------------------------------------
    def note_inject(self, seq: int) -> None:
        now = self._key_times.pop(0) if self._key_times else self.sim.now
        self._inject_ns[seq] = now
        if not self.transport.prediction:
            self._pending[seq] = now
        if self._recorder is not None:
            # span=False: the inject time is in the past (the hardware
            # keystroke), so trace spans start at the first live advance.
            env = self._recorder.begin("remote", now, span=False)
            if env is not None:
                env.app = "remote"
                # input stage = the local client pipeline up to the
                # transport send; prediction resolves via the local
                # echo (render), transport via the network round trip.
                stage = "render" if self.transport.prediction else "network"
                self._recorder.advance(env, stage, self.sim.now)
                self._envs[seq] = env

    def note_echo(self, seq: int, end_ns: int) -> None:
        self._wait_ns[seq] = end_ns - self._inject_ns[seq]
        self.predictions += 1
        self._echo_pending[seq] = self._inject_ns[seq]
        self.log(("echo", seq, end_ns))
        env = self._envs.pop(seq, None)
        if env is not None:
            self._recorder.finalize(env, end_ns)

    def _input_acked(self, seq: int, transmissions: int) -> None:
        if not self.transport.prediction:
            return
        self._echo_pending.pop(seq, None)
        # A clean first-attempt ack can still be a semantic mispredict
        # (IME, selection state, ...) at the base rate; a retransmitted
        # input is ambiguous and always needs reconciliation.
        miss = transmissions > 1 or (
            self.transport.predict_base_miss > 0.0
            and self._predict_stream.random() < self.transport.predict_base_miss
        )
        if miss:
            self._correct(seq)
        else:
            obs = self.system.obs
            if obs is not None:
                obs.remote_prediction(hit=True)

    def _input_abandoned(self, seq: int) -> None:
        if self.transport.prediction:
            self._echo_pending.pop(seq, None)
            self._correct(seq)  # the echoed char never happened
        else:
            # The user now knows the keystroke was lost: the wait ends
            # here unless an ack-lost copy still shows up in a frame.
            self._pending.setdefault(seq, self._inject_ns[seq])
            self._wait_ns.setdefault(seq, self.sim.now - self._inject_ns[seq])
            env = self._envs.pop(seq, None)
            if env is not None:
                if env.stage == "network":
                    self._recorder.advance(env, "render")
                self._recorder.finalize(env, outcome="abandoned")

    def _correct(self, seq: int) -> None:
        self.corrections += 1
        self.log(("correct", seq, self.sim.now))
        obs = self.system.obs
        if obs is not None:
            obs.remote_prediction(hit=False)

    def _ack_arrived(self, ack: AckPacket) -> None:
        self.channel.on_ack(ack)

    # ------------------------------------------------------------------
    # Downstream frames: jitter buffer → NIC → message pump
    # ------------------------------------------------------------------
    def _frame_arrived(self, frame: FramePacket) -> None:
        if frame.fseq <= self._last_played_fseq:
            self.frames_stale += 1
            self.log(("frame-stale", frame.fseq, self.sim.now))
            obs = self.system.obs
            if obs is not None:
                obs.remote_frame("stale")
            return
        # Hold for the playout delay; in-order release happens because
        # play() ignores anything at or below the high-water mark.
        self.sim.schedule(
            ns_from_ms(self.transport.jitter_buffer_ms),
            lambda frame=frame: self._play(frame),
            label=f"jbuf:{frame.fseq}",
        )

    def _play(self, frame: FramePacket) -> None:
        if frame.fseq <= self._last_played_fseq:
            self.frames_stale += 1
            self.log(("frame-stale", frame.fseq, self.sim.now))
            return
        self._last_played_fseq = frame.fseq
        if self._envs:
            # The network stage ends when the covering frame starts to
            # play; what follows (decode + present) is render.  Marked
            # here — a live moment — so stage spans stay list-order
            # monotone for the trace validator.
            covered = set(frame.covered)
            for seq, env in self._envs.items():
                if seq in covered and env.stage == "network":
                    self._recorder.advance(env, "render")
        self.system.machine.nic.deliver(payload=frame, size_bytes=64)

    def note_frame_displayed(self, frame: FramePacket, end_ns: int) -> None:
        self.log(("display", frame.fseq, end_ns))
        covered = set(frame.covered)
        for seq in sorted(self._pending):
            if seq in covered:
                inject = self._pending.pop(seq)
                self._wait_ns[seq] = end_ns - inject
                env = self._envs.pop(seq, None)
                if env is not None:
                    if env.stage == "network":
                        self._recorder.advance(env, "render", end_ns)
                    self._recorder.finalize(env, end_ns)

    # ------------------------------------------------------------------
    def run(self, chars: int = 36, cadence_ms: float = 120.0) -> RemoteSessionResult:
        system = self.system
        self.app.start(foreground=True)
        system.run_for(ns_from_ms(_WARMUP_MS))
        self.server.start()
        cadence = system.machine.rngs.stream("remote-typist")
        started_ns = system.now
        for position in range(chars):
            self._key_times.append(system.now)
            system.machine.keyboard.keystroke(chr(ord("a") + position % 26))
            gap_ms = cadence_ms * cadence.uniform(0.85, 1.15)
            system.run_for(ns_from_ms(gap_ms))
        system.run_for(ns_from_ms(_DRAIN_MS))
        self.server.stop()
        system.run_for(ns_from_ms(100.0))
        span_ms = (system.now - started_ns) / 1e6

        # Drain-censored keystrokes: resolve at session end.
        unresolved = 0
        for seq, inject in list(self._pending.items()):
            if seq not in self._wait_ns:
                self._wait_ns[seq] = system.now - inject
                unresolved += 1
        for seq, env in list(self._envs.items()):
            if env.stage == "network":
                self._recorder.advance(env, "render")
            self._recorder.finalize(env, outcome="censored")
        self._envs.clear()
        wait_ms = [
            self._wait_ns[seq] / 1e6 for seq in sorted(self._wait_ns)
        ]
        return RemoteSessionResult(
            os_name=system.personality.name,
            link_name=self.link.config.name,
            prediction=self.transport.prediction,
            scenario=self.scenario,
            wait_ms=wait_ms,
            unresolved=unresolved,
            corrections=self.corrections,
            predictions=self.predictions,
            abandoned=len(self.channel.abandoned),
            span_ms=span_ms,
            schedule_digest=self.log.digest(),
            channel=self.channel.counters(),
            server=self.server.counters(),
            link=self.link.counters(),
            frames_stale=self.frames_stale,
        )


def run_remote_session(
    os_name: str,
    seed: int,
    link_config: LinkConfig,
    transport: Optional[TransportConfig] = None,
    chars: int = 36,
    cadence_ms: float = 120.0,
    scenario: Optional[str] = None,
) -> RemoteSessionResult:
    """Boot, run and measure one remote session (pure in its arguments)."""
    system = boot(os_name, seed=seed)
    session = RemoteSession(
        system, link_config, transport=transport, scenario=scenario
    )
    return session.run(chars=chars, cadence_ms=cadence_ms)
