"""Documentation linter: ``python -m repro.docscheck``.

The docs rot in three characteristic ways, and this module gates all of
them in CI (``make docs-check``, part of ``make verify``):

1. **Broken intra-repo links.**  Every relative markdown link — file
   target and ``#anchor`` fragment alike — must resolve.  Anchors are
   checked against GitHub-style heading slugs of the target file.
2. **Stale CLI flags.**  Every ``--flag`` a doc mentions (in inline
   code or fenced code blocks) must exist in the ``--help`` output of
   at least one of the repo's CLIs, or be on the short whitelist of
   external tools' flags (pytest-benchmark).  A flag renamed in code
   but not in prose fails here.
3. **Index coverage.**  ``docs/index.md`` must link every page under
   ``docs/`` so nothing is published without a way to find it.

Only maintained documentation is linted; source-material files carried
with the repo (the paper abstract, related-work dump, snippets, the
issue text) are exempt.
"""

import io
import re
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Set, Tuple

__all__ = [
    "check_flags",
    "check_index_coverage",
    "check_links",
    "github_slug",
    "harvest_cli_flags",
    "lint_docs",
    "main",
]

#: Root-level pages that are maintained documentation (linted).  Files
#: not listed here and not under docs/ are source material, not docs.
ROOT_DOC_PAGES = (
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "ROADMAP.md",
    "CHANGES.md",
)

#: Flags that belong to external tools the docs legitimately mention
#: (pytest / pytest-benchmark invocations in run instructions).
EXTERNAL_FLAG_WHITELIST = frozenset({
    "--benchmark-only",
    "--benchmark-json",
    "--benchmark-autosave",
})

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^(```|~~~)")
_INLINE_CODE_RE = re.compile(r"`[^`]*`")
_FLAG_RE = re.compile(r"(?<![\w\-#])--[a-z][a-z0-9]*(?:-[a-z0-9]+)*")


def _strip_fences(text: str) -> Tuple[str, str]:
    """Split ``text`` into (prose, code): fenced blocks go to code."""
    prose: List[str] = []
    code: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        (code if in_fence else prose).append(line)
    return "\n".join(prose), "\n".join(code)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading.

    Lowercase, inline-code markers dropped, punctuation removed,
    spaces become hyphens (so ``## Hardening: --timeout`` yields
    ``hardening---timeout`` — the double hyphen is real).
    """
    text = heading.replace("`", "").lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _heading_slugs(text: str) -> Set[str]:
    prose, _ = _strip_fences(text)
    slugs: Set[str] = set()
    for line in prose.splitlines():
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(2)))
    return slugs


def _doc_pages(root: Path) -> List[Path]:
    pages = [root / name for name in ROOT_DOC_PAGES if (root / name).exists()]
    pages.extend(sorted((root / "docs").glob("*.md")))
    return pages


def check_links(root: Path, pages: Iterable[Path]) -> List[str]:
    """Every relative link must hit an existing file; every ``#anchor``
    on a markdown target must match a heading slug in that file."""
    problems: List[str] = []
    for page in pages:
        text = page.read_text(encoding="utf-8")
        prose, _ = _strip_fences(text)
        prose = _INLINE_CODE_RE.sub("", prose)
        for match in _LINK_RE.finditer(prose):
            target = match.group(1).strip("<>")
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{page.relative_to(root)}"
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (page.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{where}: broken link target {path_part!r}"
                    )
                    continue
            else:
                resolved = page
            if anchor:
                if resolved.suffix != ".md" or resolved.is_dir():
                    continue
                if anchor not in _heading_slugs(
                    resolved.read_text(encoding="utf-8")
                ):
                    problems.append(
                        f"{where}: stale anchor #{anchor} "
                        f"(no such heading in {resolved.name})"
                    )
    return problems


def _help_text(
    entry: Callable[[List[str]], int], prefix: Tuple[str, ...] = ()
) -> str:
    out = io.StringIO()
    try:
        with redirect_stdout(out), redirect_stderr(out):
            entry([*prefix, "--help"])
    except SystemExit:
        pass
    return out.getvalue()


def harvest_cli_flags() -> Set[str]:
    """Union of ``--flags`` accepted by every CLI in the repo, read
    from their live ``--help`` output so renames surface immediately."""
    from .analyze import main as analyze_main
    from .chaos.stress import main as chaos_stress_main
    from .experiments.runner import main as runner_main
    from .experiments.stats import stats_main
    from .fleet.report import fleet_report_main
    from .perfgate import main as perfgate_main
    from .verify.golden import main as golden_main
    from .verify.integrity import main as integrity_main

    entries = (
        (runner_main, ()),
        (stats_main, ()),
        (fleet_report_main, ()),
        (analyze_main, ()),
        (chaos_stress_main, ()),
        (perfgate_main, ()),          # subcommand flags live one level down:
        (perfgate_main, ("collect",)),
        (perfgate_main, ("check",)),
        (integrity_main, ()),
        (golden_main, ()),
    )
    flags: Set[str] = set()
    for entry, prefix in entries:
        flags.update(_FLAG_RE.findall(_help_text(entry, prefix)))
    return flags


def _doc_flags(text: str) -> Set[str]:
    """Flags a doc page mentions: scan inline code and fenced blocks
    (where CLI examples live), never link targets or prose anchors."""
    prose, code = _strip_fences(text)
    spans = _INLINE_CODE_RE.findall(prose)
    haystack = "\n".join(spans) + "\n" + code
    return set(_FLAG_RE.findall(haystack))


def check_flags(root: Path, pages: Iterable[Path]) -> List[str]:
    valid = harvest_cli_flags() | EXTERNAL_FLAG_WHITELIST
    problems: List[str] = []
    for page in pages:
        text = page.read_text(encoding="utf-8")
        stale = sorted(_doc_flags(text) - valid)
        for flag in stale:
            problems.append(
                f"{page.relative_to(root)}: mentions {flag}, which no "
                f"repo CLI accepts (renamed or removed?)"
            )
    return problems


def check_index_coverage(root: Path) -> List[str]:
    """docs/index.md must link every sibling page under docs/."""
    index = root / "docs" / "index.md"
    if not index.exists():
        return ["docs/index.md is missing"]
    prose, _ = _strip_fences(index.read_text(encoding="utf-8"))
    linked = set()
    for match in _LINK_RE.finditer(prose):
        target = match.group(1).strip("<>").partition("#")[0]
        if target:
            linked.add((index.parent / target).resolve())
    problems = []
    for page in sorted((root / "docs").glob("*.md")):
        if page.name == "index.md":
            continue
        if page.resolve() not in linked:
            problems.append(f"docs/index.md does not link docs/{page.name}")
    return problems


def lint_docs(root: Path) -> Dict[str, List[str]]:
    pages = _doc_pages(root)
    return {
        "links": check_links(root, pages),
        "flags": check_flags(root, pages),
        "index": check_index_coverage(root),
    }


def _find_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "README.md").exists() and (parent / "docs").is_dir():
            return parent
    raise SystemExit("docscheck: cannot locate the repository root")


def main(argv: List[str] = None) -> int:
    root = _find_root() if not argv else Path(argv[0])
    results = lint_docs(root)
    total = sum(len(problems) for problems in results.values())
    pages = _doc_pages(root)
    if total:
        for section, problems in sorted(results.items()):
            for problem in problems:
                print(f"docs-check [{section}]: {problem}")
        print(f"docs-check: {total} problem(s) across {len(pages)} page(s)")
        return 1
    print(
        f"docs-check ok: {len(pages)} page(s), links resolve, "
        f"flags current, index complete"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
