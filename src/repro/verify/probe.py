"""Integrity probes: short, fully instrumented runs that yield evidence.

A probe run boots one personality, installs the whole measurement
stack (idle-loop instrument, message-API monitor, queue and sync-I/O
probes, hardware-counter baseline), optionally arms a named fault
scenario, types a few characters through a small editor-like app, and
returns :class:`~repro.verify.evidence.RunEvidence` for the invariant
checker.  One probe takes a few hundredths of a second, so the full
``personality x scenario`` matrix is cheap enough for
``--strict-invariants`` sweeps and CI (``make verify-integrity``).

The probe app autosaves through *synchronous* write-through I/O so that
disk faults land in the outstanding-sync-I/O FSM input — the same
design as the ``ext-faults`` experiment's probe, kept separate here so
the verify layer never imports the experiments package.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..apps.base import InteractiveApp
from ..core.extract import EventExtractor
from ..core.idleloop import IdleLoopInstrument
from ..core.msgmon import MessageApiMonitor
from ..core.probes import QueueProbe, SyncIoProbe
from ..faults import FaultInjector, get_scenario
from ..sim.timebase import ns_from_ms
from ..winsys import boot
from ..winsys.syscalls import SyncWrite, Syscall
from .evidence import RunEvidence, build_evidence

__all__ = ["PERSONALITIES", "IntegrityProbeApp", "gather_probe_evidence"]

#: The three measured personalities (kept local: verify must not import
#: the experiments package, which imports this one through the runner).
PERSONALITIES = ("nt351", "nt40", "win95")

KEY_PERIOD_MS = 50.0
DRAIN_MS = 300.0


class IntegrityProbeApp(InteractiveApp):
    """Minimal editor: compute + draw per keystroke, periodic sync save."""

    name = "integrity-probe"
    AUTOSAVE_EVERY = 3
    AUTOSAVE_BYTES = 4 * 1024

    def __init__(self, system) -> None:
        super().__init__(system)
        self.chars_handled = 0
        self.autosaves = 0
        self.scratch = system.filesystem.ensure(
            "integrity-probe.tmp", 512 * 1024
        )

    def on_char(self, char: str) -> Iterator[Syscall]:
        self.chars_handled += 1
        yield self.app_compute(40_000, label="probe-edit")
        yield self.draw(18_000, pixels=600, label="probe-echo")
        if self.chars_handled % self.AUTOSAVE_EVERY == 0:
            self.autosaves += 1
            offset = (self.autosaves * 7 * self.AUTOSAVE_BYTES) % max(
                self.scratch.size_bytes - self.AUTOSAVE_BYTES, self.AUTOSAVE_BYTES
            )
            yield SyncWrite(self.scratch, offset, self.AUTOSAVE_BYTES)


def gather_probe_evidence(
    os_name: str,
    seed: int = 0,
    scenario: Optional[str] = None,
    chars: int = 8,
    buffer_capacity: int = 2_000_000,
) -> RunEvidence:
    """One instrumented probe run; ``scenario=None`` means healthy.

    Deterministic in ``(os_name, seed, scenario, chars)`` like every
    other simulated run.  ``buffer_capacity`` is exposed so tests can
    force a lossy (overflowing) trace.
    """
    system = boot(os_name, seed=seed)
    app = IntegrityProbeApp(system)
    app.start(foreground=True)
    instrument = IdleLoopInstrument(system, buffer_capacity=buffer_capacity)
    instrument.install()
    monitor = MessageApiMonitor(system, thread_name=app.name)
    monitor.attach()
    io_probe = SyncIoProbe(system)
    io_probe.attach()
    queue_probe = QueueProbe(system, app.thread)
    queue_probe.attach()
    counters_before = dict(system.perf.snapshot())

    system.run_for(ns_from_ms(150.0))
    start_ns = system.now
    if scenario is not None:
        FaultInjector(system, get_scenario(scenario)).install()
    for index in range(chars):
        system.machine.keyboard.keystroke(chr(ord("a") + index % 26))
        system.run_for(ns_from_ms(KEY_PERIOD_MS))
    system.run_for(ns_from_ms(DRAIN_MS))
    end_ns = system.now

    trace = instrument.trace().slice(start_ns, end_ns)
    # Clip I/O spans to the accounted window so every extracted episode
    # lies inside [start, end] — the window the invariants reconcile.
    io_spans = [
        (max(lo, start_ns), min(hi, end_ns))
        for lo, hi in io_probe.busy_spans(until_ns=end_ns)
        if min(hi, end_ns) > max(lo, start_ns)
    ]
    extraction = EventExtractor(
        monitor=monitor,
        merge_gap_ns=ns_from_ms(2),
        io_wait_spans=io_spans,
        name=f"{os_name}:integrity-probe",
    ).extract(trace)

    # A full 'stop' buffer means the instrument halted mid-run (the
    # paper's while-space_left loop): the tail of the window is simply
    # unobserved, which is as lossy as wrapped/dropped records.
    buffer = instrument.buffer
    trace_lossy = buffer.lossy or buffer.full

    cpu_spans: List[Tuple[int, int]] = [
        (span_start, span_end) for span_start, span_end, _busy in trace.elongated()
    ]
    return build_evidence(
        os_name=os_name,
        seed=seed,
        start_ns=start_ns,
        end_ns=end_ns,
        loop_ns=trace.loop_ns,
        record_times_ns=list(trace.times),
        extraction=extraction,
        cpu_spans=cpu_spans,
        queue_spans=queue_probe.nonempty_spans(until_ns=end_ns),
        io_spans=io_spans,
        queue=app.thread.queue,
        trace_lossy=trace_lossy,
        counters_before=counters_before,
        counters_after=system.perf.snapshot(),
        meta={
            "scenario": scenario or "",
            "chars": chars,
            "autosaves": app.autosaves,
        },
    )
