"""Measurement-integrity subsystem: invariants, golden traces, checkpoints.

The paper's methodology only works because the authors *validated*
their instruments before trusting them — Section 3 / Figure 1
calibrates the idle loop against workloads of known length before any
cross-OS comparison is made.  This package is the reproduction's
equivalent layer, applied continuously instead of once:

* :mod:`repro.verify.invariants` — a registry of named runtime
  invariants (time conservation, FSM legality, sample-sum
  reconciliation, queue conservation, counter sanity) evaluated over
  the evidence of a completed run; violations are structured records
  that surface into run manifests and the ``--strict-invariants``
  runner flag (exit code 3).
* :mod:`repro.verify.evidence` — :class:`RunEvidence`, the bundle of
  measurement artifacts the invariants consume, plus builders from a
  :class:`~repro.core.session.SessionResult` or raw components.
* :mod:`repro.verify.probe` — a small instrumented typing run per
  personality/fault-scenario that produces full evidence cheaply (the
  integrity probes behind ``--strict-invariants`` and
  ``make verify-integrity``).
* :mod:`repro.verify.golden` — content-addressed digests of canonical
  experiment runs under ``tests/golden/``; ``make golden-check``
  catches semantic drift in the simulator or analysis stack, not just
  crashes.
* :mod:`repro.verify.checkpoint` — crash-safe unit-level
  checkpoint/resume for long simulations (atomic temp-file+rename
  snapshots), wired into the runner's ``--checkpoint-dir`` /
  ``--resume`` path.

See ``docs/measurement-integrity.md`` for the invariant catalog and
the paper section each invariant derives from.
"""

from .checkpoint import Checkpointer
from .evidence import EventRecord, RunEvidence, evidence_from_session
from .invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    check_payload,
    invariant_names,
    summarize_reports,
)
from .probe import gather_probe_evidence

__all__ = [
    "Checkpointer",
    "EventRecord",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "RunEvidence",
    "check_payload",
    "evidence_from_session",
    "gather_probe_evidence",
    "invariant_names",
    "summarize_reports",
]
