"""Run evidence: the raw material measurement invariants check.

A :class:`RunEvidence` bundles, for one completed instrumented run,
every artifact the measurement pipeline produced *plus* the primary
sources it produced them from: the idle-loop record timestamps, the
merged FSM transition stream, the classified wait/think spans, the
extracted latency events, the message-queue accounting and the
hardware-counter deltas.  Invariants (:mod:`repro.verify.invariants`)
cross-check the artifacts against the sources — they re-derive, they
do not trust.

Fields are deliberately plain (lists of ints, small dataclasses, string
dicts) so that test fixtures can corrupt evidence surgically — shuffle
timestamps, drop a dequeue — and assert that exactly the matching
invariant trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.fsm import Span, Transition, WaitThinkSummary

__all__ = ["EventRecord", "RunEvidence", "evidence_from_session"]


@dataclass
class EventRecord:
    """One extracted latency episode, flattened for integrity checking.

    ``source`` records which extraction bucket the episode landed in:
    ``"input"`` (the user-event profile), ``"background"`` (timer-only
    activity) or ``"system"`` (no retrievals at all).
    """

    start_ns: int
    latency_ns: int
    busy_ns: int
    source: str = "input"


@dataclass
class RunEvidence:
    """Everything one instrumented run produced, sources and artifacts.

    ``start_ns``/``end_ns`` bound the accounted measurement window;
    spans, summaries and events are checked against that window.
    ``record_times_ns`` is the raw idle-loop record stream (possibly
    unsliced); ``trace_lossy`` is True when the trace buffer dropped or
    overwrote records, in which case invariants that need the full
    history report ``skipped`` rather than ``passed``.
    """

    os_name: str
    seed: int
    start_ns: int
    end_ns: int
    loop_ns: int
    #: Raw idle-loop record timestamps, in the order the buffer holds them.
    record_times_ns: List[int] = field(default_factory=list)
    #: True when the trace buffer dropped or overwrote records.
    trace_lossy: bool = False
    #: Classified wait/think spans (the Figure 2 output).
    spans: List[Span] = field(default_factory=list)
    #: The merged FSM input stream the spans were classified from.
    transitions: List[Transition] = field(default_factory=list)
    #: The classifier's totals, cross-checked against the spans.
    summary: Optional[WaitThinkSummary] = None
    #: Extracted latency episodes across all three extraction buckets.
    events: List[EventRecord] = field(default_factory=list)
    #: Message-queue accounting: posted, retrieved, residual, dropped.
    queue_stats: Dict[str, int] = field(default_factory=dict)
    #: Hardware-counter deltas over the run (event name -> delta).
    counter_deltas: Dict[str, int] = field(default_factory=dict)
    #: Free-form context carried into violation records (scenario, app...).
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def span_ns(self) -> int:
        return self.end_ns - self.start_ns


def _events_from_extraction(extraction) -> List[EventRecord]:
    """Flatten an :class:`~repro.core.extract.ExtractionResult`."""
    records: List[EventRecord] = []
    for source, profile in (
        ("input", extraction.profile),
        ("background", extraction.background),
        ("system", extraction.system_activity),
    ):
        for event in profile:
            records.append(
                EventRecord(
                    start_ns=int(event.start_ns),
                    latency_ns=int(event.latency_ns),
                    busy_ns=int(event.busy_ns),
                    source=source,
                )
            )
    records.sort(key=lambda r: (r.start_ns, r.latency_ns))
    return records


def build_evidence(
    *,
    os_name: str,
    seed: int,
    start_ns: int,
    end_ns: int,
    loop_ns: int,
    record_times_ns,
    trace_lossy: bool,
    extraction,
    cpu_spans: List[Tuple[int, int]],
    queue_spans: List[Tuple[int, int]],
    io_spans: List[Tuple[int, int]],
    queue,
    counters_before: Optional[Dict[object, int]] = None,
    counters_after: Optional[Dict[object, int]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> RunEvidence:
    """Assemble evidence from pipeline components.

    The three span sources feed one FSM exactly as the measurement
    stack does (Figure 2); the resulting spans and summary are part of
    the evidence so invariants can check the classification against
    the transition stream it came from.
    """
    from ..core.fsm import StateInput, classify_timeline, spans_to_transitions

    transitions: List[Transition] = []
    transitions += spans_to_transitions(cpu_spans, StateInput.CPU)
    transitions += spans_to_transitions(queue_spans, StateInput.QUEUE)
    transitions += spans_to_transitions(io_spans, StateInput.SYNC_IO)
    transitions.sort(key=lambda t: t.time_ns)
    spans, summary = classify_timeline(transitions, start_ns, end_ns)

    before = dict(counters_before or {})
    after = dict(counters_after or {})
    deltas = {
        _counter_name(key): int(after[key]) - int(before.get(key, 0))
        for key in after
    }

    queue_stats = {
        "posted": int(queue.posted_count),
        "retrieved": int(queue.retrieved_count),
        "residual": len(queue),
        "dropped": int(queue.dropped_count),
    }

    return RunEvidence(
        os_name=os_name,
        seed=seed,
        start_ns=start_ns,
        end_ns=end_ns,
        loop_ns=loop_ns,
        record_times_ns=[int(t) for t in record_times_ns],
        trace_lossy=bool(trace_lossy),
        spans=spans,
        transitions=transitions,
        summary=summary,
        events=_events_from_extraction(extraction),
        queue_stats=queue_stats,
        counter_deltas=deltas,
        meta=dict(meta or {}),
    )


def _counter_name(key) -> str:
    """HwEvent members stringify to their value; 'cycles' stays as is."""
    value = getattr(key, "value", key)
    return str(value)


def evidence_from_session(session, seed: int = 0) -> RunEvidence:
    """Build evidence from a completed
    :class:`~repro.core.session.SessionResult`.

    Uses the session's own probes and trace — the evidence describes
    the pipeline *as it ran*, not a re-measurement.  Counter baselines
    are boot-time zero, so deltas equal totals.
    """
    trace = session.trace
    cpu_spans = [(s, e) for s, e, _busy in trace.elongated()]
    instrument_buffer = session.instrument.buffer
    # A full 'stop' buffer halted the instrument mid-run: partial history.
    trace_lossy = instrument_buffer.lossy or instrument_buffer.full
    return build_evidence(
        os_name=session.system.personality.name,
        seed=seed,
        start_ns=session.start_ns,
        end_ns=max(session.end_ns, session.start_ns),
        loop_ns=trace.loop_ns,
        record_times_ns=list(trace.times),
        trace_lossy=trace_lossy,
        extraction=session.extraction,
        cpu_spans=cpu_spans,
        queue_spans=session.queue_probe.nonempty_spans(),
        io_spans=session.io_probe.busy_spans(),
        queue=session.app.thread.queue,
        counters_after=session.system.perf.snapshot(),
        meta={"app": getattr(session.app, "name", "")},
    )
