"""Golden-trace regression: content-addressed digests of canonical runs.

The seed contract makes every experiment a pure function of
``(code, experiment_id, seed)``, so the serialized result of a canonical
run has exactly one correct byte sequence.  This module pins that: a
*golden record* under ``tests/golden/`` stores the SHA-256 digest of the
canonical JSON serialization of one ``(experiment_id, seed)`` run, plus
a small summary for humans reading the diff.  ``make golden-check``
re-runs the golden set and fails on any digest drift; an *intentional*
behaviour change is blessed with ``python -m repro.verify.golden
--update`` (or the runner's ``--update-golden``), which makes the change
reviewable as a one-line digest bump in the PR.

Digests are computed over canonical JSON (sorted keys, fixed
separators) so they are independent of dict ordering and whitespace,
and the golden set is chosen from the fastest paper figures so a full
check adds well under a second to CI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.atomicio import atomic_write_text

__all__ = [
    "GOLDEN_SET",
    "canonical_json",
    "payload_digest",
    "golden_dir",
    "golden_path",
    "check_golden",
    "update_golden",
    "main",
]

#: Canonical (experiment_id, seed) pairs pinned by the golden check —
#: cheap experiments, one per major pipeline path (idle-loop
#: elongation, wait/think FSM, event extraction, NIC event class, and
#: the remote lossy-link transport schedule).
GOLDEN_SET: Tuple[Tuple[str, int], ...] = (
    ("fig1", 0),
    ("fig2", 0),
    ("fig4", 0),
    ("ext-network", 0),
    ("ext-remote", 0),
)

_FORMAT_VERSION = 1


def canonical_json(payload: dict) -> str:
    """One byte sequence per value: sorted keys, fixed separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: dict) -> str:
    """Content address of a serialized run."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return f"sha256:{digest.hexdigest()}"


def golden_dir() -> Path:
    """The in-repo golden store, ``tests/golden/``."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_path(experiment_id: str, seed: int, directory: Optional[Path] = None) -> Path:
    return Path(directory or golden_dir()) / f"{experiment_id}-seed{seed}.json"


def _run_payload(experiment_id: str, seed: int) -> dict:
    # Imported lazily: experiments -> runner -> verify would otherwise
    # be a circular import at module load.
    from ..core.serialize import experiment_to_dict
    from ..experiments.registry import run_experiment

    return experiment_to_dict(run_experiment(experiment_id, seed=seed))


def _record_from_payload(experiment_id: str, seed: int, payload: dict) -> dict:
    return {
        "format": _FORMAT_VERSION,
        "kind": "golden-record",
        "experiment_id": experiment_id,
        "seed": seed,
        "digest": payload_digest(payload),
        # Human-oriented summary: lets a reviewer see *what* drifted
        # from the git diff of this file, not just that something did.
        "summary": {
            "title": payload.get("title", ""),
            "checks": [
                {"name": c["name"], "passed": c["passed"]}
                for c in payload.get("checks", [])
            ],
            "figures": payload.get("figures", []),
        },
    }


def check_golden(
    pairs: Optional[Sequence[Tuple[str, int]]] = None,
    directory: Optional[Path] = None,
) -> List[Dict[str, object]]:
    """Re-run the golden set and compare digests.

    Returns one dict per pair with ``status`` in ``"matched"``,
    ``"drifted"`` (digest mismatch) or ``"missing"`` (no record yet).
    """
    results: List[Dict[str, object]] = []
    for experiment_id, seed in pairs or GOLDEN_SET:
        path = golden_path(experiment_id, seed, directory)
        payload = _run_payload(experiment_id, seed)
        actual = payload_digest(payload)
        entry: Dict[str, object] = {
            "experiment_id": experiment_id,
            "seed": seed,
            "path": str(path),
            "actual": actual,
        }
        try:
            record = json.loads(path.read_text())
            expected = record.get("digest")
        except (OSError, ValueError):
            expected = None
        entry["expected"] = expected
        if expected is None:
            entry["status"] = "missing"
        elif expected == actual:
            entry["status"] = "matched"
        else:
            entry["status"] = "drifted"
        results.append(entry)
    return results


def update_golden(
    pairs: Optional[Sequence[Tuple[str, int]]] = None,
    directory: Optional[Path] = None,
) -> List[Path]:
    """Re-run the golden set and (re)write the records."""
    written: List[Path] = []
    for experiment_id, seed in pairs or GOLDEN_SET:
        payload = _run_payload(experiment_id, seed)
        record = _record_from_payload(experiment_id, seed, payload)
        path = golden_path(experiment_id, seed, directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        written.append(path)
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.golden",
        description="Check (default) or update the golden-run digests.",
    )
    parser.add_argument(
        "--update",
        "--update-golden",
        action="store_true",
        help="bless current outputs as golden",
    )
    parser.add_argument(
        "--dir", type=Path, default=None, help="golden store (default tests/golden/)"
    )
    args = parser.parse_args(argv)

    if args.update:
        for path in update_golden(directory=args.dir):
            print(f"golden: wrote {path}")
        return 0

    failed = False
    for entry in check_golden(directory=args.dir):
        status = entry["status"]
        label = f"{entry['experiment_id']} seed={entry['seed']}"
        if status == "matched":
            print(f"golden: ok      {label}")
        elif status == "missing":
            failed = True
            print(f"golden: MISSING {label} (run with --update to create)")
        else:
            failed = True
            print(
                f"golden: DRIFT   {label}\n"
                f"  expected {entry['expected']}\n"
                f"  actual   {entry['actual']}\n"
                f"  If intentional, re-bless with --update and commit the diff."
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
