"""``make verify-integrity``: the full measurement-integrity sweep.

Four stages, cheapest-first:

1. **Probe matrix** — run the instrumented integrity probe on every
   personality under the empty fault plan *and* every named fault
   scenario, and require every catalog invariant to pass (``skipped``
   is only acceptable for full-history invariants over a lossy trace,
   which the standard probe never produces).
2. **Corruption self-test** — apply every seeded corruption fixture to
   healthy evidence and require that *exactly* the matching invariant
   trips.  A checker that cannot catch a planted defect, or that lights
   up unrelated invariants, is itself the bug.
3. **Payload invariants** — run the golden-set experiments and check
   the archived payload invariants over their serialized results.
4. **Golden digests** — compare the same payloads against the
   content-addressed records under ``tests/golden/``.

Exit status: 3 when any invariant fails (stages 1-3, matching the
runner's reserved invariant-failure exit code), 1 when only golden
digests drifted, 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .corruptions import CORRUPTIONS, corrupt
from .golden import GOLDEN_SET, golden_path, payload_digest
from .invariants import InvariantChecker, check_payload
from .probe import PERSONALITIES, gather_probe_evidence

__all__ = ["run_probe_matrix", "run_corruption_selftest", "main"]


def run_probe_matrix(seed: int = 0, verbose: bool = True) -> List[str]:
    """Stage 1.  Returns a list of human-readable failure lines."""
    from ..faults import scenario_names

    checker = InvariantChecker()
    failures: List[str] = []
    for os_name in PERSONALITIES:
        for scenario in (None, *scenario_names()):
            evidence = gather_probe_evidence(os_name, seed=seed, scenario=scenario)
            reports = checker.check(evidence)
            label = f"{os_name}/{scenario or 'healthy'}"
            bad = [r for r in reports if r.status != "passed"]
            if bad:
                for report in bad:
                    failures.append(
                        f"probe {label}: {report.name} {report.status}"
                        + (f" — {report.detail}" if report.detail else "")
                    )
            elif verbose:
                print(f"integrity: ok      probe {label} ({len(reports)} invariants)")
    return failures


def run_corruption_selftest(seed: int = 0, verbose: bool = True) -> List[str]:
    """Stage 2.  Returns a list of human-readable failure lines."""
    checker = InvariantChecker()
    evidence = gather_probe_evidence(PERSONALITIES[1], seed=seed)
    failures: List[str] = []
    for name, spec in CORRUPTIONS.items():
        reports = checker.check(corrupt(evidence, name))
        tripped = [r.name for r in reports if r.status == "failed"]
        if tripped == [spec.trips]:
            if verbose:
                print(f"integrity: ok      corruption {name} -> {spec.trips}")
        else:
            failures.append(
                f"corruption {name}: expected exactly [{spec.trips}] "
                f"to trip, got {tripped}"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.integrity",
        description="Run the full measurement-integrity sweep.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quiet", action="store_true", help="print failures only"
    )
    parser.add_argument(
        "--skip-golden", action="store_true", help="skip the golden-digest stage"
    )
    args = parser.parse_args(argv)
    verbose = not args.quiet

    invariant_failures: List[str] = []
    invariant_failures += run_probe_matrix(seed=args.seed, verbose=verbose)
    invariant_failures += run_corruption_selftest(seed=args.seed, verbose=verbose)

    # Stages 3 + 4 share one run per golden pair.
    from ..core.serialize import experiment_to_dict
    from ..experiments.registry import run_experiment

    golden_failures: List[str] = []
    for experiment_id, seed in GOLDEN_SET:
        payload = experiment_to_dict(run_experiment(experiment_id, seed=seed))
        label = f"{experiment_id} seed={seed}"
        bad = [r for r in check_payload(payload) if r.status == "failed"]
        if bad:
            for report in bad:
                invariant_failures.append(
                    f"payload {label}: {report.name} — {report.detail}"
                )
        elif verbose:
            print(f"integrity: ok      payload {label}")
        if args.skip_golden:
            continue
        path = golden_path(experiment_id, seed)
        try:
            import json

            expected = json.loads(path.read_text()).get("digest")
        except (OSError, ValueError):
            expected = None
        actual = payload_digest(payload)
        if expected == actual:
            if verbose:
                print(f"integrity: ok      golden {label}")
        elif expected is None:
            golden_failures.append(
                f"golden {label}: record missing "
                f"(python -m repro.verify.golden --update)"
            )
        else:
            golden_failures.append(
                f"golden {label}: digest drift (expected {expected}, "
                f"got {actual}); re-bless with --update if intentional"
            )

    for line in invariant_failures + golden_failures:
        print(f"integrity: FAIL    {line}")
    if invariant_failures:
        return 3  # reserved: invariant failure (matches the runner)
    if golden_failures:
        return 1
    print("integrity: all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
