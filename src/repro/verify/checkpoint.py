"""Crash-safe checkpoint/resume for long simulations.

A long experiment is a sequence of deterministic *units* — one
measurement run per (OS, workload, fault-plan) combination, each a pure
function of ``(code, seed, unit key)``.  A :class:`Checkpointer`
snapshots each completed unit's serialized result to disk atomically
(temp file + :func:`os.replace`), so a run killed by SIGKILL, a
watchdog timeout or a power failure resumes from the last snapshot
instead of restarting: completed units are served from the checkpoint,
and because units are deterministic the resumed run's final artifact is
byte-identical to an uninterrupted run (the property
``tests/test_verify_checkpoint.py`` kills a real process to verify).

Identity discipline: a checkpoint records the ``(experiment_id, seed,
code_version, variant)`` identity it was written under.  A checkpoint
whose identity does not match the resuming run — a different seed, a
code change, a different fault plan — is *ignored entirely*; stale
state can slow a run down (it restarts) but can never contaminate it.

The snapshot cadence is ``interval`` units per write (the runner's
``--checkpoint-interval``): a crash loses at most the last ``interval``
completed units, never the whole run.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from ..core.atomicio import atomic_write_json

__all__ = ["Checkpointer", "checkpoint_path"]

_FORMAT_VERSION = 1


def checkpoint_path(
    directory: Union[str, Path],
    experiment_id: str,
    seed: int,
    variant: str = "",
) -> Path:
    """Canonical checkpoint filename for one job."""
    suffix = f"-v{variant}" if variant else ""
    return Path(directory) / f"{experiment_id}-seed{seed}{suffix}.ckpt.json"


class Checkpointer:
    """Unit-level snapshot store for one long run.

    ``identity`` pins the checkpoint to one exact computation; any
    existing file with a different identity (or any unreadable or
    malformed file) is treated as absent.  Unit payloads must be
    JSON-serializable; they are deep-copied on the way in and out so
    simulation state can never leak between runs through the cache.
    """

    def __init__(
        self,
        path: Union[str, Path],
        identity: Mapping[str, object],
        interval: int = 1,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.path = Path(path)
        self.identity: Dict[str, object] = dict(identity)
        self.interval = int(interval)
        self._units: Dict[str, object] = {}
        self._order: List[str] = []
        self._pending = 0
        #: Successful snapshot writes (observability: the runner folds
        #: this into its checkpoint-write metrics).
        self.writes = 0
        #: Unit keys served from a pre-existing snapshot (resume audit).
        self.resumed_units: List[str] = []
        self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("kind") != "sim-checkpoint"
            or data.get("identity") != self.identity
            or not isinstance(data.get("units"), dict)
            or not isinstance(data.get("completed"), list)
        ):
            return  # stale or corrupt: ignore, never contaminate
        completed = [key for key in data["completed"] if key in data["units"]]
        self._units = {key: data["units"][key] for key in completed}
        self._order = completed
        self.resumed_units = list(completed)

    def flush(self) -> Optional[Path]:
        """Atomically persist the snapshot; ``None`` if unwritable."""
        payload = {
            "format": _FORMAT_VERSION,
            "kind": "sim-checkpoint",
            "identity": self.identity,
            "completed": list(self._order),
            "units": self._units,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self.path, payload)
        except OSError:
            return None
        self._pending = 0
        self.writes += 1
        return self.path

    def discard(self) -> None:
        """Remove the snapshot file (a finished run consumes it)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Units
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._units

    def __len__(self) -> int:
        return len(self._units)

    @property
    def completed(self) -> List[str]:
        """Completed unit keys, in completion order."""
        return list(self._order)

    def get(self, key: str):
        """The stored payload for ``key``, or ``None`` if not completed."""
        if key not in self._units:
            return None
        return copy.deepcopy(self._units[key])

    def record(self, key: str, payload) -> None:
        """Mark ``key`` complete with ``payload``; snapshot per the cadence.

        Re-recording an existing key overwrites it (last write wins) —
        the deterministic-unit contract makes that a no-op in practice.
        """
        payload = copy.deepcopy(payload)
        json.dumps(payload)  # fail fast on unserializable state
        if key not in self._units:
            self._order.append(key)
        self._units[key] = payload
        self._pending += 1
        if self._pending >= self.interval:
            self.flush()
