"""Runtime invariant checking over completed runs.

The paper trusts its numbers because the pipeline that produced them
was validated (Section 3, Figure 1).  This module makes that validation
continuous: a registry of named invariants, each re-deriving one
accounting property from the evidence of a completed run
(:class:`~repro.verify.evidence.RunEvidence`) and reporting structured
:class:`InvariantViolation` records when the property fails to hold.

Each invariant checks exactly one property, and normalizes away
properties owned by its siblings (e.g. sample-sum reconciliation sorts
timestamps first, because ordering is ``monotonic-timestamps``' job).
That separation is what lets a seeded corruption trip *exactly* its
matching invariant — the contract the corruption-fixture tests assert.

Invariants marked ``needs_full_history`` are meaningless over a lossy
trace (a wrapped ring buffer or one that dropped records): over such
evidence they report ``skipped``, never ``passed``.

The catalog (paper anchor in parentheses):

* ``time-conservation`` (§2.3/Fig. 2) — wait+think spans tile the
  session exactly: no gaps, no overlaps, no negative durations, totals
  conserved.
* ``fsm-transition-legality`` (Fig. 2) — only legal FSM edges occur:
  spans alternate states, the state sequence re-derived from the input
  transitions matches, per-state totals agree with the summary.
* ``monotonic-timestamps`` (§2.3) — the idle-loop record stream and
  transition stream are time-ordered; events are ordered with
  non-negative durations.
* ``sample-sum-consistency`` (§3/Fig. 1) — busy time attributed to
  extracted events reconciles with the idle-loop elongation totals
  within a stated tolerance.
* ``queue-conservation`` (§2.4) — messages are conserved:
  posted == retrieved + residual, all counts non-negative.
* ``counter-sanity`` (§2.2) — Pentium counter deltas are non-negative
  and total attributed event latency never exceeds the measured
  session span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.fsm import StateInput, Transition, UserState, WaitThinkFSM
from .evidence import RunEvidence

__all__ = [
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "SAMPLE_SUM_TOLERANCE",
    "check_payload",
    "invariant",
    "invariant_names",
    "summarize_reports",
]

#: Stated relative tolerance for the Figure-1 style reconciliation of
#: attributed busy time against idle-loop elongation totals.
SAMPLE_SUM_TOLERANCE = 1e-3


@dataclass(frozen=True)
class InvariantViolation:
    """One structured violation record, with enough context to debug."""

    invariant: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "context": {str(k): _plain(v) for k, v in self.context.items()},
        }


@dataclass
class InvariantReport:
    """Outcome of one invariant over one run's evidence."""

    name: str
    status: str  # 'passed' | 'failed' | 'skipped'
    violations: List[InvariantViolation] = field(default_factory=list)
    detail: str = ""
    paper: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "passed"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "paper": self.paper,
            "detail": self.detail,
            "violations": [v.to_dict() for v in self.violations],
        }


def _plain(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


@dataclass(frozen=True)
class _InvariantSpec:
    name: str
    fn: Callable[[RunEvidence], Iterator[InvariantViolation]]
    paper: str
    needs_full_history: bool


_REGISTRY: Dict[str, _InvariantSpec] = {}


def invariant(name: str, paper: str = "", needs_full_history: bool = False):
    """Register an invariant: a generator of violations over evidence."""

    def register(fn):
        if name in _REGISTRY:
            raise ValueError(f"duplicate invariant name {name!r}")
        _REGISTRY[name] = _InvariantSpec(
            name=name, fn=fn, paper=paper, needs_full_history=needs_full_history
        )
        return fn

    return register


def invariant_names() -> List[str]:
    """All registered invariant names, in registration order."""
    return list(_REGISTRY)


class InvariantChecker:
    """Evaluates registered invariants over completed-run evidence."""

    def __init__(self, names: Optional[Sequence[str]] = None) -> None:
        if names is None:
            self.names = invariant_names()
        else:
            unknown = [n for n in names if n not in _REGISTRY]
            if unknown:
                raise ValueError(
                    f"unknown invariants: {unknown}; known: {invariant_names()}"
                )
            self.names = list(names)

    def check(self, evidence: RunEvidence) -> List[InvariantReport]:
        """One report per selected invariant, in catalog order."""
        reports: List[InvariantReport] = []
        for name in self.names:
            spec = _REGISTRY[name]
            if spec.needs_full_history and evidence.trace_lossy:
                reports.append(
                    InvariantReport(
                        name=name,
                        status="skipped",
                        detail="trace is lossy (wrapped or dropped records); "
                        "full-history invariant not evaluable",
                        paper=spec.paper,
                    )
                )
                continue
            violations = list(spec.fn(evidence))
            reports.append(
                InvariantReport(
                    name=name,
                    status="failed" if violations else "passed",
                    violations=violations,
                    detail=violations[0].message if violations else "",
                    paper=spec.paper,
                )
            )
        return reports


def summarize_reports(reports: Iterable[InvariantReport]) -> dict:
    """Manifest-friendly summary: names bucketed by status."""
    summary = {"passed": [], "failed": [], "skipped": []}
    for report in reports:
        summary.setdefault(report.status, []).append(report.name)
    return summary


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
@invariant("time-conservation", paper="S2.3/Fig.2")
def _time_conservation(ev: RunEvidence) -> Iterator[InvariantViolation]:
    """Spans tile [start, end] exactly: no gaps, overlaps or negatives."""
    window = ev.span_ns
    if window < 0:
        yield InvariantViolation(
            "time-conservation",
            f"negative session window: start {ev.start_ns} > end {ev.end_ns}",
            {"start_ns": ev.start_ns, "end_ns": ev.end_ns},
        )
        return
    if not ev.spans:
        if window > 0:
            yield InvariantViolation(
                "time-conservation",
                f"no spans cover a {window} ns session window",
                {"window_ns": window},
            )
        return
    for index, span in enumerate(ev.spans):
        if span.duration_ns <= 0:
            yield InvariantViolation(
                "time-conservation",
                f"span {index} has non-positive duration {span.duration_ns} ns",
                {"index": index, "start_ns": span.start_ns, "end_ns": span.end_ns},
            )
    if ev.spans[0].start_ns != ev.start_ns:
        yield InvariantViolation(
            "time-conservation",
            f"first span starts at {ev.spans[0].start_ns} ns, "
            f"session starts at {ev.start_ns} ns",
            {"span_start_ns": ev.spans[0].start_ns, "start_ns": ev.start_ns},
        )
    if ev.spans[-1].end_ns != ev.end_ns:
        yield InvariantViolation(
            "time-conservation",
            f"last span ends at {ev.spans[-1].end_ns} ns, "
            f"session ends at {ev.end_ns} ns",
            {"span_end_ns": ev.spans[-1].end_ns, "end_ns": ev.end_ns},
        )
    for index in range(len(ev.spans) - 1):
        left, right = ev.spans[index], ev.spans[index + 1]
        if right.start_ns > left.end_ns:
            yield InvariantViolation(
                "time-conservation",
                f"gap of {right.start_ns - left.end_ns} ns between spans "
                f"{index} and {index + 1}",
                {"index": index, "gap_ns": right.start_ns - left.end_ns},
            )
        elif right.start_ns < left.end_ns:
            yield InvariantViolation(
                "time-conservation",
                f"overlap of {left.end_ns - right.start_ns} ns between spans "
                f"{index} and {index + 1}",
                {"index": index, "overlap_ns": left.end_ns - right.start_ns},
            )
    total = sum(span.duration_ns for span in ev.spans)
    if total != window:
        yield InvariantViolation(
            "time-conservation",
            f"span durations sum to {total} ns, session window is {window} ns",
            {"total_ns": total, "window_ns": window},
        )
    if ev.summary is not None and ev.summary.total_ns != window:
        yield InvariantViolation(
            "time-conservation",
            f"summary accounts {ev.summary.total_ns} ns, "
            f"session window is {window} ns",
            {"summary_total_ns": ev.summary.total_ns, "window_ns": window},
        )


@invariant("fsm-transition-legality", paper="Fig.2")
def _fsm_transition_legality(ev: RunEvidence) -> Iterator[InvariantViolation]:
    """Only Figure 2 edges occur, and span states match the inputs.

    The state sequence is re-derived from the transition stream with a
    fresh :class:`WaitThinkFSM` and compared with the classified spans'
    state sequence; per-state totals are cross-checked against the
    summary.  Only state identity is examined here — exact boundary
    times belong to ``time-conservation``.
    """
    for index, transition in enumerate(ev.transitions):
        if not isinstance(transition.which, StateInput):
            yield InvariantViolation(
                "fsm-transition-legality",
                f"transition {index} drives unknown FSM input "
                f"{transition.which!r}",
                {"index": index, "which": transition.which},
            )
            return
    for index in range(len(ev.spans) - 1):
        if ev.spans[index].state == ev.spans[index + 1].state:
            yield InvariantViolation(
                "fsm-transition-legality",
                f"adjacent spans {index} and {index + 1} share state "
                f"{ev.spans[index].state.value!r} (illegal self-edge)",
                {"index": index, "state": ev.spans[index].state.value},
            )
    # Re-derive the state sequence from the inputs (Figure 2 edges only:
    # the state is WAIT iff any input is active, and can change only at
    # an input transition).
    fsm = WaitThinkFSM()
    derived: List[UserState] = []
    state = fsm.state
    ordered = sorted(ev.transitions, key=lambda t: t.time_ns)
    index = 0
    while index < len(ordered):
        time_ns = ordered[index].time_ns
        if time_ns >= ev.end_ns:
            break
        # Apply every transition sharing this timestamp before sampling
        # the state: simultaneous flips that cancel out produce no edge.
        while index < len(ordered) and ordered[index].time_ns == time_ns:
            fsm.apply(ordered[index])
            index += 1
        new_state = fsm.state
        if time_ns <= ev.start_ns:
            state = new_state
        elif new_state != state:
            if not derived:
                derived.append(state)
            derived.append(new_state)
            state = new_state
    if not derived and ev.span_ns > 0:
        derived.append(state)
    observed = []
    for span in ev.spans:
        if not observed or observed[-1] != span.state:
            observed.append(span.state)
    if derived and observed != derived:
        yield InvariantViolation(
            "fsm-transition-legality",
            "classified span states disagree with the state sequence "
            "re-derived from the FSM inputs",
            {
                "observed": [s.value for s in observed],
                "derived": [s.value for s in derived],
            },
        )
    if ev.summary is not None:
        wait_total = sum(
            s.duration_ns for s in ev.spans if s.state == UserState.WAIT
        )
        think_total = sum(
            s.duration_ns for s in ev.spans if s.state == UserState.THINK
        )
        if wait_total != ev.summary.wait_ns or think_total != ev.summary.think_ns:
            yield InvariantViolation(
                "fsm-transition-legality",
                f"per-state span totals (wait {wait_total}, think "
                f"{think_total}) disagree with the summary (wait "
                f"{ev.summary.wait_ns}, think {ev.summary.think_ns})",
                {
                    "span_wait_ns": wait_total,
                    "span_think_ns": think_total,
                    "summary_wait_ns": ev.summary.wait_ns,
                    "summary_think_ns": ev.summary.think_ns,
                },
            )


@invariant("monotonic-timestamps", paper="S2.3", needs_full_history=True)
def _monotonic_timestamps(ev: RunEvidence) -> Iterator[InvariantViolation]:
    """Record, transition and event streams are time-ordered."""
    times = ev.record_times_ns
    for index in range(len(times) - 1):
        if times[index + 1] < times[index]:
            yield InvariantViolation(
                "monotonic-timestamps",
                f"idle-loop record {index + 1} at {times[index + 1]} ns "
                f"precedes record {index} at {times[index]} ns",
                {"index": index, "t0": times[index], "t1": times[index + 1]},
            )
            break
    for index in range(len(ev.transitions) - 1):
        if ev.transitions[index + 1].time_ns < ev.transitions[index].time_ns:
            yield InvariantViolation(
                "monotonic-timestamps",
                f"FSM transition stream out of order at index {index + 1}",
                {
                    "index": index,
                    "t0": ev.transitions[index].time_ns,
                    "t1": ev.transitions[index + 1].time_ns,
                },
            )
            break
    previous = None
    for index, event in enumerate(ev.events):
        if event.latency_ns < 0 or event.busy_ns < 0:
            yield InvariantViolation(
                "monotonic-timestamps",
                f"event {index} has negative duration "
                f"(latency {event.latency_ns} ns, busy {event.busy_ns} ns)",
                {
                    "index": index,
                    "latency_ns": event.latency_ns,
                    "busy_ns": event.busy_ns,
                },
            )
        if previous is not None and event.start_ns < previous:
            yield InvariantViolation(
                "monotonic-timestamps",
                f"event {index} starts before its predecessor",
                {"index": index, "start_ns": event.start_ns, "previous": previous},
            )
        previous = event.start_ns


@invariant("sample-sum-consistency", paper="S3/Fig.1", needs_full_history=True)
def _sample_sum_consistency(ev: RunEvidence) -> Iterator[InvariantViolation]:
    """Attributed event busy time reconciles with elongation totals.

    Every nanosecond of busy time the extractor attributes to an event
    came from an elongated idle-loop interval, and each interval is
    consumed at most once — so the attributed sum can never exceed the
    instrument's elongation total beyond the stated tolerance.
    Timestamps are sorted first: order violations are
    ``monotonic-timestamps``' finding, not a reconciliation failure.
    """
    times = sorted(ev.record_times_ns)
    measured_busy = 0
    for index in range(len(times) - 1):
        interval = times[index + 1] - times[index]
        busy = interval - ev.loop_ns
        if busy > 0:
            measured_busy += busy
    attributed_busy = sum(event.busy_ns for event in ev.events)
    allowance = measured_busy * SAMPLE_SUM_TOLERANCE + ev.loop_ns
    if attributed_busy > measured_busy + allowance:
        yield InvariantViolation(
            "sample-sum-consistency",
            f"events claim {attributed_busy} ns of busy time but the "
            f"idle-loop elongation total is {measured_busy} ns "
            f"(tolerance {SAMPLE_SUM_TOLERANCE:g} + one loop)",
            {
                "attributed_busy_ns": attributed_busy,
                "measured_busy_ns": measured_busy,
                "tolerance": SAMPLE_SUM_TOLERANCE,
            },
        )


@invariant("queue-conservation", paper="S2.4")
def _queue_conservation(ev: RunEvidence) -> Iterator[InvariantViolation]:
    """Messages are conserved: enqueued == dequeued + residual."""
    stats = ev.queue_stats
    if not stats:
        return
    posted = stats.get("posted", 0)
    retrieved = stats.get("retrieved", 0)
    residual = stats.get("residual", 0)
    dropped = stats.get("dropped", 0)
    for name, value in stats.items():
        if value < 0:
            yield InvariantViolation(
                "queue-conservation",
                f"negative queue counter {name} = {value}",
                {"counter": name, "value": value},
            )
    if posted != retrieved + residual:
        yield InvariantViolation(
            "queue-conservation",
            f"queue accounting broken: posted {posted} != retrieved "
            f"{retrieved} + residual {residual} (dropped {dropped} "
            f"tracked separately)",
            {
                "posted": posted,
                "retrieved": retrieved,
                "residual": residual,
                "dropped": dropped,
            },
        )


@invariant("counter-sanity", paper="S2.2")
def _counter_sanity(ev: RunEvidence) -> Iterator[InvariantViolation]:
    """Counter deltas are non-negative; attributed <= measured latency."""
    for name, delta in sorted(ev.counter_deltas.items()):
        if delta < 0:
            yield InvariantViolation(
                "counter-sanity",
                f"hardware counter {name!r} delta is negative ({delta})",
                {"counter": name, "delta": delta},
            )
    attributed_latency = sum(event.latency_ns for event in ev.events)
    if ev.span_ns >= 0 and attributed_latency > ev.span_ns:
        yield InvariantViolation(
            "counter-sanity",
            f"events claim {attributed_latency} ns of latency inside a "
            f"{ev.span_ns} ns session (attributed > measured)",
            {"attributed_ns": attributed_latency, "session_ns": ev.span_ns},
        )


# ----------------------------------------------------------------------
# Payload invariants: archived experiment results
# ----------------------------------------------------------------------
#: Data keys (by suffix) whose numeric values must be non-negative in
#: archived payloads — durations and latencies only; keys mentioning
#: deltas/differences are exempt (they may legitimately go negative).
_NONNEGATIVE_SUFFIXES = ("_ms", "_ns")
_EXEMPT_FRAGMENTS = ("delta", "diff", "skew", "error", "slope")


def _walk_nonnegative(value, path: str) -> Iterator[InvariantViolation]:
    if isinstance(value, dict):
        for key, item in value.items():
            yield from _walk_nonnegative(item, f"{path}.{key}" if path else str(key))
        return
    if isinstance(value, (list, tuple)):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith(_NONNEGATIVE_SUFFIXES) and not any(
            frag in leaf for frag in _EXEMPT_FRAGMENTS
        ):
            for index, item in enumerate(value):
                if isinstance(item, (int, float)) and item < 0:
                    yield InvariantViolation(
                        "payload-nonnegative-durations",
                        f"negative duration at {path}[{index}]: {item}",
                        {"path": f"{path}[{index}]", "value": item},
                    )
        else:
            for index, item in enumerate(value):
                yield from _walk_nonnegative(item, f"{path}[{index}]")
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return
    leaf = path.rsplit(".", 1)[-1].split("[", 1)[0]
    if leaf.endswith(_NONNEGATIVE_SUFFIXES) and not any(
        frag in leaf for frag in _EXEMPT_FRAGMENTS
    ):
        if value < 0:
            yield InvariantViolation(
                "payload-nonnegative-durations",
                f"negative duration at {path}: {value}",
                {"path": path, "value": value},
            )


def check_payload(payload: dict) -> List[InvariantReport]:
    """Invariants over one archived experiment payload.

    These run on every job in every sweep (they are cheap): the payload
    must be a well-formed experiment-result record, its shape checks
    must be well-formed booleans, and every duration/latency field in
    its data must be non-negative.
    """
    reports: List[InvariantReport] = []

    violations: List[InvariantViolation] = []
    if payload.get("kind") != "experiment-result":
        violations.append(
            InvariantViolation(
                "payload-well-formed",
                f"not an experiment-result payload: {payload.get('kind')!r}",
                {"kind": payload.get("kind")},
            )
        )
    else:
        for key in ("id", "checks", "data"):
            if key not in payload:
                violations.append(
                    InvariantViolation(
                        "payload-well-formed",
                        f"payload missing key {key!r}",
                        {"missing": key},
                    )
                )
        for index, check in enumerate(payload.get("checks", ())):
            if (
                not isinstance(check, dict)
                or not isinstance(check.get("name"), str)
                or not isinstance(check.get("passed"), bool)
            ):
                violations.append(
                    InvariantViolation(
                        "payload-well-formed",
                        f"malformed shape-check record at index {index}",
                        {"index": index},
                    )
                )
    reports.append(
        InvariantReport(
            name="payload-well-formed",
            status="failed" if violations else "passed",
            violations=violations,
            detail=violations[0].message if violations else "",
            paper="S5",
        )
    )

    violations = list(_walk_nonnegative(payload.get("data", {}), "data"))
    reports.append(
        InvariantReport(
            name="payload-nonnegative-durations",
            status="failed" if violations else "passed",
            violations=violations,
            detail=violations[0].message if violations else "",
            paper="S2",
        )
    )
    return reports
