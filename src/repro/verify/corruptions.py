"""Seeded evidence corruptions: one named defect per invariant.

Each corruption takes healthy :class:`~repro.verify.evidence.RunEvidence`
and plants exactly one class of measurement defect — a shuffled
timestamp, a lost dequeue, a span gap — chosen so that *exactly* the
matching invariant trips and every other invariant still passes.  That
second half is the important one: it proves the catalog's invariants
are independent (each really checks its own property, normalizing away
its siblings'), so a real violation in a real run points at one cause
instead of lighting the whole board.

Used by ``make verify-integrity`` as a self-test of the checker and by
the property-based tests, which apply every corruption to evidence from
every personality x fault-scenario combination.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, NamedTuple

from ..core.fsm import UserState
from .evidence import RunEvidence

__all__ = ["CORRUPTIONS", "Corruption", "corrupt"]


class Corruption(NamedTuple):
    """A named seeded defect and the invariant it must trip."""

    description: str
    trips: str
    apply: Callable[[RunEvidence], None]


def _shuffled_timestamps(ev: RunEvidence) -> None:
    times = ev.record_times_ns
    if len(times) < 2:
        raise ValueError("need at least two records to shuffle")
    # Swap the two most distant records: maximally out of order, while
    # the *sorted* stream (sample-sum's view) is untouched.
    times[0], times[-1] = times[-1], times[0]


def _dropped_dequeue(ev: RunEvidence) -> None:
    if ev.queue_stats.get("retrieved", 0) < 1:
        raise ValueError("need at least one retrieval to drop")
    ev.queue_stats["retrieved"] -= 1


def _span_gap_and_overlap(ev: RunEvidence) -> None:
    """Open a gap in one span and an equal overlap in a same-state span.

    Shifting time between two spans of the *same* state keeps the state
    sequence and the per-state totals intact (so ``fsm-transition-
    legality`` stays green) while breaking exact tiling — the property
    ``time-conservation`` owns.
    """
    spans = ev.spans
    candidates = [
        index
        for index in range(len(spans) - 1)
        if spans[index].duration_ns >= 2
    ]
    pair = None
    for position, left in enumerate(candidates):
        for right in candidates[position + 1 :]:
            if spans[left].state == spans[right].state:
                pair = (left, right)
                break
        if pair:
            break
    if pair is None:
        raise ValueError("need two same-state spans with successors")
    shrink, grow = pair
    delta = max(1, min(spans[shrink].duration_ns - 1, 1_000))
    spans[shrink].end_ns -= delta  # gap before the next span
    spans[grow].end_ns += delta  # equal overlap with its successor


def _illegal_self_edge(ev: RunEvidence) -> None:
    if len(ev.spans) < 2:
        raise ValueError("need at least two spans to forge a self-edge")
    # Flip one interior span's state to match its neighbour: an edge
    # Figure 2 does not have.  Boundary times are untouched, so
    # time-conservation still holds.
    span = ev.spans[1]
    span.state = (
        UserState.WAIT if span.state == UserState.THINK else UserState.THINK
    )


def _negative_counter(ev: RunEvidence) -> None:
    ev.counter_deltas["cycles"] = -5


def _inflated_busy(ev: RunEvidence) -> None:
    if not ev.events:
        raise ValueError("need at least one event to inflate")
    # Claim ~17 minutes of busy time nothing measured.  Latency is left
    # alone so counter-sanity's attributed-latency bound still holds.
    ev.events[0].busy_ns += 10**12


#: The fixture catalog: corruption name -> (description, invariant, fn).
CORRUPTIONS: Dict[str, Corruption] = {
    "shuffled-timestamps": Corruption(
        "two idle-loop records swapped out of order",
        "monotonic-timestamps",
        _shuffled_timestamps,
    ),
    "dropped-dequeue": Corruption(
        "one message retrieval lost from the queue accounting",
        "queue-conservation",
        _dropped_dequeue,
    ),
    "span-gap": Corruption(
        "a gap and an equal same-state overlap planted in the timeline",
        "time-conservation",
        _span_gap_and_overlap,
    ),
    "illegal-self-edge": Corruption(
        "an interior span's state flipped to match its neighbour",
        "fsm-transition-legality",
        _illegal_self_edge,
    ),
    "negative-counter": Corruption(
        "a hardware counter delta driven negative",
        "counter-sanity",
        _negative_counter,
    ),
    "inflated-busy": Corruption(
        "busy time attributed far beyond the elongation total",
        "sample-sum-consistency",
        _inflated_busy,
    ),
}


def corrupt(evidence: RunEvidence, name: str) -> RunEvidence:
    """A deep copy of ``evidence`` with the named corruption applied."""
    if name not in CORRUPTIONS:
        raise KeyError(f"unknown corruption {name!r}; known: {sorted(CORRUPTIONS)}")
    corrupted = copy.deepcopy(evidence)
    CORRUPTIONS[name].apply(corrupted)
    return corrupted
