"""Population-scale session fleets with streaming latency aggregation.

The paper's deliverable is a *distribution* of per-event wait times; a
"million users" reproduction needs that distribution over a fleet of
simulated sessions without ever materializing a fleet's worth of
traces.  This package provides the three layers that make such sweeps
affordable:

* :mod:`repro.fleet.population` — a seeded generator of per-session
  parameters (typist speed, app profile, think-time, OS personality,
  fault scenario), deterministic per session index and independent of
  how sessions are batched or scheduled;
* :mod:`repro.fleet.sketch` — deterministically mergeable streaming
  percentile sketches (:class:`~repro.fleet.sketch.QuantileSketch`) and
  per-stage fixed-bucket histograms
  (:class:`~repro.fleet.sketch.StageHistogram`), so aggregate state is
  O(sketch size), never O(sessions);
* :mod:`repro.fleet.shards` — a work-stealing shard scheduler layered
  on :func:`repro.experiments.parallel.run_specs` (idle shards pull the
  next session batch from the shared pending deque), reusing the
  existing result cache, checkpointing, retry/timeout hardening and
  observability metrics.

:mod:`repro.fleet.report` renders fleet-level p50/p95/p99.9 tables and
the capacity-planning output (``p95 -> max concurrent sessions under a
latency budget``); the ``ext-fleet`` experiment and the
``repro-experiments fleet-report`` verb are the user-facing surfaces.
See ``docs/fleet-scale.md``.

Execution is chaos-hardened: :func:`run_fleet` accepts a deterministic
harness-fault plan (:mod:`repro.chaos`), hedges stragglers, bisects
failing batches down to quarantined sessions, and accounts every
session exactly — ``expected == completed + quarantined + skipped`` —
stamping partial aggregates as such (see ``docs/chaos.md``).
"""

from .population import PopulationConfig, SessionPopulation, SessionSpec
from .report import (
    capacity_plan,
    coverage_table,
    fleet_data,
    render_fleet_report,
)
from .session import SessionResult, run_session
from .shards import FleetResult, batch_job_id, execute_fleet_batch, run_fleet
from .sketch import FleetAggregator, QuantileSketch, StageHistogram

__all__ = [
    "FleetAggregator",
    "FleetResult",
    "PopulationConfig",
    "QuantileSketch",
    "SessionPopulation",
    "SessionResult",
    "SessionSpec",
    "StageHistogram",
    "batch_job_id",
    "capacity_plan",
    "coverage_table",
    "execute_fleet_batch",
    "fleet_data",
    "render_fleet_report",
    "run_fleet",
    "run_session",
]
