"""Streaming, deterministically mergeable latency sketches.

A fleet sweep folds millions of per-event wait times into a few
kilobytes of aggregate state per shard.  Two structures carry that
state:

* :class:`QuantileSketch` — a bounded-size percentile sketch in the
  t-digest tradition (a set of weighted centroids covering the value
  range, fine where the distribution is dense).  Unlike a classic
  t-digest, whose centroid positions depend on insertion and merge
  *order*, centroids here sit on a fixed geometric grid (log-bucketed,
  DDSketch-style): ``compression`` buckets per decade of latency, each
  holding an integer count.  Inserts and merges are therefore exactly
  commutative and associative — integer bucket counts add — which is
  what makes the fleet determinism contract possible at all: the merged
  sketch is *byte-identical* for a fixed population regardless of how a
  work-stealing scheduler interleaved the shards that built it.

* :class:`StageHistogram` — fixed-bucket (linear-bound) histograms per
  pipeline stage, the cheap "where did the time go" view that
  complements the sketch's accurate quantiles.

Accuracy model: a value ``x`` lands in bucket ``ceil(log_g(x/x0))``
with ``g = 10**(1/compression)``; reporting the geometric bucket
midpoint bounds the *relative value error* of any reported quantile by
``(g - 1) / (g + 1)`` (~``ln(10)/(2*compression)``).  Rank error is
zero at bucket boundaries — counts are exact — so the reported p95 is
the true quantile of a value within that relative bound.  See
``docs/fleet-scale.md`` for the bounds-vs-compression table and
``tests/test_fleet_sketch.py`` for the empirical verification.

All floating-point state that a merge touches is either an integer
(counts, nanosecond sums) or combined through order-independent
operations (min / max), so float non-associativity can never leak into
the merged digest.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_COMPRESSION",
    "FleetAggregator",
    "QuantileSketch",
    "StageHistogram",
    "relative_error_bound",
]

#: Default buckets-per-decade.  128 gives ~0.9% relative value error on
#: every quantile while a sketch spanning 1 us .. 1000 s stays under
#: ~1200 occupied buckets.
DEFAULT_COMPRESSION = 128

#: Smallest value (ms) the sketch resolves; anything at or below lands
#: in the underflow bucket and reports as ``min_value_ms``.
_MIN_VALUE_MS = 1e-3


def relative_error_bound(compression: int) -> float:
    """Worst-case relative value error of a quantile estimate.

    With ``g = 10**(1/compression)`` and geometric-midpoint reporting,
    ``|estimate - true| / true <= (g - 1) / (g + 1)``.
    """
    gamma = 10.0 ** (1.0 / compression)
    return (gamma - 1.0) / (gamma + 1.0)


class QuantileSketch:
    """Bounded-memory percentile sketch with order-independent merges.

    ``add``/``merge``/``to_dict``/``digest`` are the whole lifecycle: a
    shard ``add``s every observed latency, ships the dict form home,
    and the collector ``merge``s shard sketches in *any* order — the
    result, including its :meth:`digest`, is identical for identical
    observation multisets.
    """

    __slots__ = ("compression", "_counts", "count", "sum_ns", "min_ms", "max_ms")

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        if compression < 1:
            raise ValueError(f"compression must be >= 1, got {compression}")
        self.compression = int(compression)
        #: bucket index -> integer count.  Index 0 is the underflow
        #: bucket (values <= _MIN_VALUE_MS); index i >= 1 covers
        #: (x0 * g**(i-1), x0 * g**i].
        self._counts: Dict[int, int] = {}
        self.count = 0
        #: Exact sum of observations in integer nanoseconds — integers
        #: add associatively, so the merged sum never depends on order.
        self.sum_ns = 0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None

    # -- observation ---------------------------------------------------
    def _bucket(self, value_ms: float) -> int:
        if value_ms <= _MIN_VALUE_MS:
            return 0
        return max(
            1,
            math.ceil(
                math.log10(value_ms / _MIN_VALUE_MS) * self.compression
                # Nudge values sitting exactly on a bucket boundary into
                # that bucket despite float log jitter.
                - 1e-9
            ),
        )

    def add(self, value_ms: float, weight: int = 1) -> None:
        """Fold one observation (``weight`` repeats) into the sketch."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        value_ms = float(value_ms)
        if math.isnan(value_ms) or value_ms < 0:
            raise ValueError(f"latency must be a non-negative number: {value_ms!r}")
        bucket = self._bucket(value_ms)
        self._counts[bucket] = self._counts.get(bucket, 0) + weight
        self.count += weight
        self.sum_ns += int(round(value_ms * 1e6)) * weight
        if self.min_ms is None or value_ms < self.min_ms:
            self.min_ms = value_ms
        if self.max_ms is None or value_ms > self.max_ms:
            self.max_ms = value_ms

    def extend(self, values_ms: Iterable[float]) -> None:
        for value in values_ms:
            self.add(value)

    # -- merging -------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in (in place).  Commutative and associative."""
        if other.compression != self.compression:
            raise ValueError(
                "cannot merge sketches with different compression: "
                f"{self.compression} != {other.compression}"
            )
        for bucket, weight in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + weight
        self.count += other.count
        self.sum_ns += other.sum_ns
        if other.min_ms is not None:
            self.min_ms = (
                other.min_ms if self.min_ms is None
                else min(self.min_ms, other.min_ms)
            )
        if other.max_ms is not None:
            self.max_ms = (
                other.max_ms if self.max_ms is None
                else max(self.max_ms, other.max_ms)
            )
        return self

    # -- queries -------------------------------------------------------
    def _bucket_value(self, bucket: int) -> float:
        if bucket == 0:
            return _MIN_VALUE_MS
        gamma = 10.0 ** (1.0 / self.compression)
        # Geometric midpoint of (x0 * g**(b-1), x0 * g**b].
        return _MIN_VALUE_MS * gamma ** (bucket - 0.5)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (ms); 0 for an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        # Nearest-rank on the exact counts: rank error comes only from
        # within-bucket position, value error from midpoint reporting.
        target = q * (self.count - 1)
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen > target:
                estimate = self._bucket_value(bucket)
                # Exact observed extremes beat bucket midpoints at the
                # edges (and keep estimates inside [min, max]).
                if self.min_ms is not None:
                    estimate = max(estimate, self.min_ms)
                if self.max_ms is not None:
                    estimate = min(estimate, self.max_ms)
                return estimate
        return self.max_ms if self.max_ms is not None else 0.0

    @property
    def mean_ms(self) -> float:
        return (self.sum_ns / 1e6) / self.count if self.count else 0.0

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the sketch's actual size."""
        return len(self._counts)

    def summary(self) -> dict:
        """The standard reporting quantiles, plainly keyed."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p999_ms": self.quantile(0.999),
            "max_ms": self.max_ms if self.max_ms is not None else 0.0,
        }

    # -- serialization / identity -------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "quantile-sketch",
            "compression": self.compression,
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
            # Sorted (bucket, count) pairs: the canonical form hashed
            # by digest(), identical however the sketch was assembled.
            "buckets": [
                [bucket, self._counts[bucket]] for bucket in sorted(self._counts)
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "QuantileSketch":
        if data.get("kind") != "quantile-sketch":
            raise ValueError(f"not a quantile-sketch payload: {data.get('kind')!r}")
        sketch = cls(compression=int(data["compression"]))
        sketch.count = int(data["count"])
        sketch.sum_ns = int(data["sum_ns"])
        sketch.min_ms = None if data["min_ms"] is None else float(data["min_ms"])
        sketch.max_ms = None if data["max_ms"] is None else float(data["max_ms"])
        sketch._counts = {int(b): int(c) for b, c in data["buckets"]}
        return sketch

    def digest(self) -> str:
        """Content hash of the canonical serialized form.

        Two sketches over the same observation multiset produce the
        same digest whatever order — or grouping — the observations
        arrived in; this is the byte-identity the fleet determinism
        test asserts across shard permutations.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(compression={self.compression}, "
            f"count={self.count}, buckets={self.bucket_count})"
        )


#: Default fixed bucket upper bounds (ms) for per-stage histograms,
#: spanning instantaneous echo to the paper's multi-second long events.
DEFAULT_STAGE_BOUNDS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)


class StageHistogram:
    """Fixed-bucket histograms of per-stage time, keyed by stage name.

    Bounds are fixed at construction, counts are integers and sums are
    integer nanoseconds, so — like the sketch — merges are exactly
    order-independent.
    """

    __slots__ = ("bounds_ms", "_stages")

    def __init__(
        self, bounds_ms: Sequence[float] = DEFAULT_STAGE_BOUNDS_MS
    ) -> None:
        bounds = tuple(float(b) for b in bounds_ms)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bounds must be strictly increasing: {bounds_ms!r}")
        self.bounds_ms = bounds
        #: stage -> {"counts": [len(bounds)+1 ints], "count": n, "sum_ns": s}
        self._stages: Dict[str, dict] = {}

    def _stage(self, stage: str) -> dict:
        entry = self._stages.get(stage)
        if entry is None:
            entry = {
                "counts": [0] * (len(self.bounds_ms) + 1),
                "count": 0,
                "sum_ns": 0,
            }
            self._stages[stage] = entry
        return entry

    def observe(self, stage: str, value_ms: float, weight: int = 1) -> None:
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        value_ms = float(value_ms)
        if math.isnan(value_ms) or value_ms < 0:
            raise ValueError(f"stage time must be non-negative: {value_ms!r}")
        entry = self._stage(stage)
        index = len(self.bounds_ms)  # overflow bucket
        for i, bound in enumerate(self.bounds_ms):
            if value_ms <= bound:
                index = i
                break
        entry["counts"][index] += weight
        entry["count"] += weight
        entry["sum_ns"] += int(round(value_ms * 1e6)) * weight

    def merge(self, other: "StageHistogram") -> "StageHistogram":
        if other.bounds_ms != self.bounds_ms:
            raise ValueError("cannot merge stage histograms with different bounds")
        for stage, theirs in other._stages.items():
            mine = self._stage(stage)
            mine["count"] += theirs["count"]
            mine["sum_ns"] += theirs["sum_ns"]
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], theirs["counts"])
            ]
        return self

    def stages(self) -> List[str]:
        return sorted(self._stages)

    def stage_summary(self, stage: str) -> dict:
        entry = self._stages.get(stage)
        if entry is None:
            return {"count": 0, "sum_ms": 0.0, "mean_ms": 0.0}
        count = entry["count"]
        total_ms = entry["sum_ns"] / 1e6
        return {
            "count": count,
            "sum_ms": total_ms,
            "mean_ms": total_ms / count if count else 0.0,
        }

    def to_dict(self) -> dict:
        return {
            "kind": "stage-histogram",
            "bounds_ms": list(self.bounds_ms),
            "stages": {
                stage: {
                    "counts": list(entry["counts"]),
                    "count": entry["count"],
                    "sum_ns": entry["sum_ns"],
                }
                for stage, entry in sorted(self._stages.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StageHistogram":
        if data.get("kind") != "stage-histogram":
            raise ValueError(f"not a stage-histogram payload: {data.get('kind')!r}")
        histogram = cls(bounds_ms=data["bounds_ms"])
        for stage, entry in data["stages"].items():
            histogram._stages[stage] = {
                "counts": [int(c) for c in entry["counts"]],
                "count": int(entry["count"]),
                "sum_ns": int(entry["sum_ns"]),
            }
        return histogram


class FleetAggregator:
    """Per-group streaming aggregate of a fleet's session results.

    Groups are ``(os personality, scenario)`` pairs — the reporting
    axes of ``ext-fleet``.  Each group holds a wait-time sketch, a
    session-span sketch and a stage histogram; state is O(groups x
    sketch size), independent of session count.  ``merge`` folds a
    shard's aggregator in with the same order-independence guarantees
    as the underlying sketches, and :meth:`digest` hashes the whole
    canonical state.
    """

    __slots__ = ("compression", "groups", "sessions", "events")

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        self.compression = int(compression)
        #: (os_name, scenario) -> {"wait": QuantileSketch,
        #: "span": QuantileSketch, "stages": StageHistogram,
        #: "envelope": {stage: QuantileSketch}, "envelope_events": int,
        #: "sessions": int}
        self.groups: Dict[Tuple[str, str], dict] = {}
        self.sessions = 0
        self.events = 0

    def _group(self, os_name: str, scenario: str) -> dict:
        key = (os_name, scenario)
        group = self.groups.get(key)
        if group is None:
            group = {
                "wait": QuantileSketch(self.compression),
                "span": QuantileSketch(self.compression),
                "stages": StageHistogram(),
                "envelope": {},
                "envelope_events": 0,
                "sessions": 0,
            }
            self.groups[key] = group
        return group

    @staticmethod
    def _fold_envelope(group: dict, sketches: Mapping) -> None:
        """Merge per-stage envelope sketches into a group (commutative)."""
        for stage, sketch in sketches.items():
            if isinstance(sketch, Mapping):
                sketch = QuantileSketch.from_dict(sketch)
            mine = group["envelope"].get(stage)
            if mine is None:
                fresh = QuantileSketch(sketch.compression)
                group["envelope"][stage] = fresh.merge(sketch)
            else:
                mine.merge(sketch)

    def add_session(self, result) -> None:
        """Fold one :class:`~repro.fleet.session.SessionResult` in."""
        group = self._group(result.os_name, result.scenario or "healthy")
        group["sessions"] += 1
        self.sessions += 1
        for latency_ms in result.wait_ms:
            group["wait"].add(latency_ms)
            self.events += 1
        group["span"].add(result.span_ms)
        for stage, value_ms in result.stage_ms.items():
            group["stages"].observe(stage, value_ms)
        self._fold_envelope(group, getattr(result, "envelopes", {}) or {})
        group["envelope_events"] += int(getattr(result, "envelope_events", 0))

    def merge(self, other: "FleetAggregator") -> "FleetAggregator":
        if other.compression != self.compression:
            raise ValueError(
                "cannot merge aggregators with different compression: "
                f"{self.compression} != {other.compression}"
            )
        for key, theirs in other.groups.items():
            mine = self._group(*key)
            mine["wait"].merge(theirs["wait"])
            mine["span"].merge(theirs["span"])
            mine["stages"].merge(theirs["stages"])
            self._fold_envelope(mine, theirs["envelope"])
            mine["envelope_events"] += theirs["envelope_events"]
            mine["sessions"] += theirs["sessions"]
        self.sessions += other.sessions
        self.events += other.events
        return self

    def envelope_summary(self, os_name: str, scenario: str) -> Dict[str, dict]:
        """Per-stage quantile summaries for one group (empty if none)."""
        group = self.groups.get((os_name, scenario))
        if group is None:
            return {}
        return {
            stage: sketch.summary()
            for stage, sketch in sorted(group["envelope"].items())
        }

    def dominant_stage(self, os_name: str, scenario: str, q: float = 0.95) -> Optional[str]:
        """The stage with the largest ``q``-quantile in one group — the
        fleet-level answer to "where does the wait come from?"."""
        group = self.groups.get((os_name, scenario))
        if not group or not group["envelope"]:
            return None
        return max(
            sorted(group["envelope"]),
            key=lambda stage: group["envelope"][stage].quantile(q),
        )

    def group_keys(self) -> List[Tuple[str, str]]:
        return sorted(self.groups)

    def to_dict(self) -> dict:
        return {
            "kind": "fleet-aggregate",
            "compression": self.compression,
            "sessions": self.sessions,
            "events": self.events,
            "groups": {
                f"{os_name}/{scenario}": {
                    "os": os_name,
                    "scenario": scenario,
                    "sessions": group["sessions"],
                    "wait": group["wait"].to_dict(),
                    "span": group["span"].to_dict(),
                    "stages": group["stages"].to_dict(),
                    "envelope": {
                        stage: sketch.to_dict()
                        for stage, sketch in sorted(group["envelope"].items())
                    },
                    "envelope_events": group["envelope_events"],
                }
                for (os_name, scenario), group in sorted(self.groups.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetAggregator":
        if data.get("kind") != "fleet-aggregate":
            raise ValueError(f"not a fleet-aggregate payload: {data.get('kind')!r}")
        aggregator = cls(compression=int(data["compression"]))
        aggregator.sessions = int(data["sessions"])
        aggregator.events = int(data["events"])
        for group in data["groups"].values():
            aggregator.groups[(group["os"], group["scenario"])] = {
                "wait": QuantileSketch.from_dict(group["wait"]),
                "span": QuantileSketch.from_dict(group["span"]),
                "stages": StageHistogram.from_dict(group["stages"]),
                # .get: payloads from before stage envelopes existed.
                "envelope": {
                    stage: QuantileSketch.from_dict(payload)
                    for stage, payload in group.get("envelope", {}).items()
                },
                "envelope_events": int(group.get("envelope_events", 0)),
                "sessions": int(group["sessions"]),
            }
        return aggregator

    def digest(self) -> str:
        """Content hash of the merged state (see the determinism test)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
