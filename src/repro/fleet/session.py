"""One simulated fleet session, measured end to end.

A session is the paper's methodology in miniature: boot the spec's OS
personality, start an interactive app drawn from the population's app
mix, type with a humanized cadence (speed, jitter and think-pauses all
from the spec), and measure per-keystroke wait time with the *same*
pipeline every figure uses — idle-loop instrument, message-API monitor,
FSM event extraction.  Optionally a seeded fault scenario degrades the
machine underneath, exactly as in ``ext-faults``.

The result is deliberately tiny — a list of wait times and a few
per-stage totals — because fleet aggregation is streaming: the shard
folds it into its sketches and drops it.  No trace, profile or system
object survives the call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..apps.base import InteractiveApp
from ..core import EventExtractor, IdleLoopInstrument, MessageApiMonitor
from ..faults import FaultInjector, get_scenario
from ..obs import runtime as obs_runtime
from ..sim.timebase import ns_from_ms
from ..winsys import boot
from ..winsys.syscalls import SyncWrite, Syscall
from .population import APP_PROFILES, SessionSpec

__all__ = ["FleetSessionApp", "SessionResult", "run_session"]

#: Post-typing drain so the last keystroke's work completes before
#: extraction (ms of simulated time).
_DRAIN_MS = 300.0
#: Warm-up before the first keystroke (boot transients settle).
_WARMUP_MS = 150.0
#: Shneiderman floor, as in :mod:`repro.workload.typist`.
_MIN_KEYSTROKE_MS = 120.0


class FleetSessionApp(InteractiveApp):
    """Parameterized interactive probe driven by an app-profile dict.

    Structure follows ``ext-faults``'s probe (compute + echo per
    keystroke, periodic synchronous write-through autosave) with the
    costs supplied by the session's :data:`~repro.fleet.population.APP_PROFILES`
    entry, so ``editor``/``ide``/``terminal`` sessions stress the
    latency pipeline differently.
    """

    name = "fleetapp"
    AUTOSAVE_BYTES = 8 * 1024

    def __init__(self, system, profile: dict) -> None:
        super().__init__(system)
        self.profile = profile
        self.chars_handled = 0
        self.autosaves = 0
        self.scratch = None
        if profile["autosave_every"]:
            self.scratch = system.filesystem.ensure(
                "fleetapp-scratch.tmp", 2 * 1024 * 1024
            )

    def on_char(self, char: str) -> Iterator[Syscall]:
        profile = self.profile
        self.chars_handled += 1
        yield self.app_compute(profile["compute_cycles"], label="fleet-edit")
        yield self.draw(
            profile["draw_cycles"],
            pixels=profile["draw_pixels"],
            label="fleet-echo",
        )
        every = profile["autosave_every"]
        if every and self.chars_handled % every == 0:
            self.autosaves += 1
            span = self.scratch.size_bytes - self.AUTOSAVE_BYTES
            offset = (self.autosaves * 13 * self.AUTOSAVE_BYTES) % max(
                span, self.AUTOSAVE_BYTES
            )
            yield self.app_compute(25_000, label="fleet-serialize")
            yield SyncWrite(self.scratch, offset, self.AUTOSAVE_BYTES)


@dataclass
class SessionResult:
    """What one session contributes to the fleet aggregate."""

    index: int
    os_name: str
    profile: str
    scenario: Optional[str]
    #: Per-keystroke wait time (ms), the paper's core metric.
    wait_ms: List[float] = field(default_factory=list)
    #: Total simulated span of the session (ms).
    span_ms: float = 0.0
    #: Per-stage totals (ms) folded into the fleet stage histogram.
    stage_ms: Dict[str, float] = field(default_factory=dict)
    faults_injected: int = 0
    #: Per-stage envelope sketches (stage -> quantile-sketch payload)
    #: harvested from the session's :class:`~repro.obs.envelope.EnvelopeRecorder`
    #: — per-event stage *distributions*, where ``stage_ms`` only has
    #: per-session totals.  Empty when no recorder was attached.
    envelopes: Dict[str, dict] = field(default_factory=dict)
    envelope_events: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "os": self.os_name,
            "profile": self.profile,
            "scenario": self.scenario,
            "wait_ms": [round(float(w), 6) for w in self.wait_ms],
            "span_ms": round(float(self.span_ms), 6),
            "stage_ms": {k: round(float(v), 6) for k, v in self.stage_ms.items()},
            "faults_injected": self.faults_injected,
            "envelopes": self.envelopes,
            "envelope_events": self.envelope_events,
        }


def _harvest_envelopes(system) -> Tuple[Dict[str, dict], int]:
    """Collapse the boot's stage-envelope attribution into per-stage
    quantile-sketch payloads.  The sketches merge commutatively, so the
    fleet aggregate — and its digest — is shard-shape independent."""
    recorder = getattr(getattr(system, "obs", None), "envelopes", None)
    if recorder is None:
        return {}, 0
    sketches = recorder.attribution.stage_sketches()
    return (
        {stage: sketches[stage].to_dict() for stage in sorted(sketches)},
        recorder.finished,
    )


def _run_remote_session(spec: SessionSpec, profile: dict) -> SessionResult:
    """Remote-profile sessions: the wait is the network's, not the app's.

    Keystrokes travel through the resilient transport of
    :mod:`repro.remote`; the resulting per-keystroke waits (frame-echo
    round trips, retransmission stalls, give-ups) fold into the fleet
    sketches exactly like local waits.  ``sync_io_wait`` is zero by
    construction — a thin client does no local autosave I/O.
    """
    from ..remote import LinkConfig, RemoteSession, TransportConfig

    system = boot(spec.os_name, seed=spec.seed)
    recorder = getattr(getattr(system, "obs", None), "envelopes", None)
    if recorder is not None:
        recorder.scenario = spec.scenario or "healthy"
    link = LinkConfig.symmetric(
        "fleet-remote",
        rtt_ms=profile["rtt_ms"],
        jitter_ms=profile["jitter_ms"],
        loss=profile["loss"],
    )
    session = RemoteSession(
        system,
        link,
        transport=TransportConfig(prediction=profile["prediction"]),
        scenario=spec.scenario,
    )
    base_gap_ms = max(_MIN_KEYSTROKE_MS, 60_000.0 / (spec.wpm * 5.0))
    remote = session.run(chars=spec.chars, cadence_ms=base_gap_ms)
    keystroke_wait_ms = float(sum(remote.wait_ms))
    envelopes, envelope_events = _harvest_envelopes(system)
    return SessionResult(
        index=spec.index,
        os_name=spec.os_name,
        profile=spec.profile,
        scenario=spec.scenario,
        wait_ms=[float(w) for w in remote.wait_ms],
        span_ms=remote.span_ms,
        stage_ms={
            "keystroke_wait": keystroke_wait_ms,
            "other_event_wait": 0.0,
            "sync_io_wait": 0.0,
            "session_span": remote.span_ms,
        },
        faults_injected=(
            session.injector.summary()["total"]
            if session.injector is not None
            else 0
        ),
        envelopes=envelopes,
        envelope_events=envelope_events,
    )


def run_session(spec: SessionSpec) -> SessionResult:
    """Run and measure one session; deterministic in ``spec`` alone.

    All randomness (typing cadence, think pauses, fault arrivals) flows
    from named streams of the session's own master seed, so two calls
    with equal specs return equal results — the property batch caching
    and the shard-permutation determinism test rely on.

    Every session runs under an observability session (a private
    trace-less, metric-less one when the caller hasn't opened any) so
    stage envelopes are always recorded: the per-stage sketches in
    :attr:`SessionResult.envelopes` are what the fleet aggregate's
    bottleneck attribution is built from.
    """
    owns_obs = not obs_runtime.active()
    if owns_obs:
        obs_runtime.start_session(trace=False, metrics=False)
    try:
        if APP_PROFILES[spec.profile].get("remote"):
            return _run_remote_session(spec, APP_PROFILES[spec.profile])
        return _run_local_session(spec)
    finally:
        if owns_obs:
            obs_runtime.stop_session()


def _run_local_session(spec: SessionSpec) -> SessionResult:
    system = boot(spec.os_name, seed=spec.seed)
    recorder = getattr(getattr(system, "obs", None), "envelopes", None)
    if recorder is not None:
        recorder.scenario = spec.scenario or "healthy"
    app = FleetSessionApp(system, APP_PROFILES[spec.profile])
    app.start(foreground=True)
    instrument = IdleLoopInstrument(system)
    instrument.install()
    monitor = MessageApiMonitor(system, thread_name=app.name)
    monitor.attach()
    system.run_for(ns_from_ms(_WARMUP_MS))

    injector = None
    if spec.scenario is not None:
        injector = FaultInjector(system, get_scenario(spec.scenario)).install()

    cadence = system.machine.rngs.stream("fleet-typist")
    base_gap_ms = max(_MIN_KEYSTROKE_MS, 60_000.0 / (spec.wpm * 5.0))
    started_ns = system.now
    for position in range(spec.chars):
        system.machine.keyboard.keystroke(chr(ord("a") + position % 26))
        gap_ms = base_gap_ms * cadence.uniform(
            1.0 - spec.jitter, 1.0 + spec.jitter
        )
        # A think pause roughly once per six keystrokes, exponentially
        # distributed around the spec's mean — the paper's think-time
        # component of the wait/think decomposition.
        if cadence.random() < 1.0 / 6.0:
            gap_ms += cadence.expovariate(1.0 / spec.think_mean_s) * 1000.0
        system.run_for(ns_from_ms(max(_MIN_KEYSTROKE_MS, gap_ms)))
    system.run_for(ns_from_ms(_DRAIN_MS))
    span_ms = (system.now - started_ns) / 1e6

    extraction = EventExtractor(
        monitor=monitor, merge_gap_ns=ns_from_ms(2)
    ).extract(instrument.trace())
    keystrokes = extraction.profile.filter(
        lambda e: any("WM_KEYDOWN" in kind for kind in e.message_kinds)
    )
    wait_ms = [float(x) for x in keystrokes.latencies_ms]
    all_wait_ms = float(extraction.profile.latencies_ms.sum())
    keystroke_wait_ms = float(sum(wait_ms))
    sync_io_ms = system.iomgr.sync_wait_ns / 1e6
    envelopes, envelope_events = _harvest_envelopes(system)
    return SessionResult(
        index=spec.index,
        os_name=spec.os_name,
        profile=spec.profile,
        scenario=spec.scenario,
        wait_ms=wait_ms,
        span_ms=span_ms,
        stage_ms={
            "keystroke_wait": keystroke_wait_ms,
            "other_event_wait": max(0.0, all_wait_ms - keystroke_wait_ms),
            "sync_io_wait": sync_io_ms,
            "session_span": span_ms,
        },
        faults_injected=(
            injector.summary()["total"] if injector is not None else 0
        ),
        envelopes=envelopes,
        envelope_events=envelope_events,
    )
