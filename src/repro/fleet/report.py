"""Fleet-level reporting: percentile tables and capacity planning.

Renders what a fleet sweep is *for*: per-personality and per-scenario
p50/p95/p99.9 wait time, the per-stage time breakdown, shard
utilization, and the capacity-planning projection in the spirit of
ProjectScylla's latency-budget analysis (SNIPPETS.md section 1)::

    max_concurrent_runs = budget_hours * 3600 / p95_latency

translated to fleet terms: a shard serving sessions back to back,
conservatively costing every session its p95 simulated span, can host
``budget_hours * 3600 / p95_span_s`` sessions per budget window — and a
deployment of N shards, N times that.  The projection is deliberately
contention-free (sessions here never compete for a machine); it is an
upper bound that the docs walk through in ``docs/fleet-scale.md``.

Everything in this module works off *serialized* fleet data (the
``fleet`` section of an ``ext-fleet`` payload), so the
``repro-experiments fleet-report`` verb can render archives and
manifests long after the run.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import List, Mapping, Optional

from ..core.report import TextTable
from ..core.serialize import load_json
from ..obs.logging import get_logger
from .sketch import FleetAggregator, relative_error_bound

__all__ = [
    "capacity_plan",
    "capacity_table",
    "coverage_table",
    "fleet_data",
    "fleet_report_main",
    "manifest_fleet_summary",
    "render_fleet_report",
    "stage_table",
    "wait_table",
]

log = get_logger("repro.fleet.report")

#: Default capacity-planning budget window (hours of shard time).
DEFAULT_BUDGET_HOURS = 1.0


def fleet_data(result) -> dict:
    """The ``fleet`` payload section for a :class:`~repro.fleet.shards.FleetResult`.

    Self-contained and JSON-safe: the full aggregate (sketches included,
    still O(groups x buckets)), provenance, per-batch scheduling stats
    and the observability snapshot — everything the ``fleet-report``
    verb and the ``stats`` subcommand need.
    """
    aggregate = result.aggregate
    groups = {}
    for os_name, scenario in aggregate.group_keys():
        group = aggregate.groups[(os_name, scenario)]
        groups[f"{os_name}/{scenario}"] = {
            "os": os_name,
            "scenario": scenario,
            "sessions": group["sessions"],
            "wait": group["wait"].summary(),
            "span": group["span"].summary(),
            "stages": {
                stage: group["stages"].stage_summary(stage)
                for stage in group["stages"].stages()
            },
        }
    return {
        "provenance": result.provenance(),
        "groups": groups,
        "coverage": result.group_coverage(),
        "batches": result.batches,
        "failures": result.failures,
        "quarantined": result.quarantined,
        "skipped": result.skipped,
        "makespan_s": result.makespan_s,
        "shard_utilization": result.shard_utilization(),
        "metrics": result.metrics,
        "aggregate": aggregate.to_dict(),
    }


def manifest_fleet_summary(fleet: Mapping) -> dict:
    """Condensed fleet facts for a manifest entry.

    Manifests stay small: provenance plus one p50/p95/p99.9 row per
    group, *without* the raw sketch buckets (those live in the archived
    payload, which ``fleet-report`` can always re-render).
    """
    provenance = dict(fleet.get("provenance") or {})
    groups = {}
    for key in sorted(fleet.get("groups") or {}):
        group = fleet["groups"][key]
        wait = group.get("wait") or {}
        groups[key] = {
            "sessions": group.get("sessions", 0),
            "events": wait.get("count", 0),
            "p50_ms": wait.get("p50_ms"),
            "p95_ms": wait.get("p95_ms"),
            "p999_ms": wait.get("p999_ms"),
        }
    summary = {
        "sessions": provenance.get("sessions"),
        "events": provenance.get("events"),
        "shards": provenance.get("shards"),
        "batches": provenance.get("batches"),
        "batches_from_cache": provenance.get("batches_from_cache"),
        "batches_from_checkpoint": provenance.get("batches_from_checkpoint"),
        "merge": provenance.get("merge"),
        "merged_digest": provenance.get("merged_digest"),
        "digest_scope": provenance.get("digest_scope", "complete"),
        "population_seed": provenance.get("population_seed"),
        "population_fingerprint": provenance.get("population_fingerprint"),
        "compression": provenance.get("compression"),
        "shard_utilization": fleet.get("shard_utilization"),
        "makespan_s": fleet.get("makespan_s"),
        "failures": len(fleet.get("failures") or []),
        "groups": groups,
    }
    # Completeness accounting travels with every manifest: a partial
    # sweep must be legible as partial from the manifest alone.
    for key in (
        "sessions_expected",
        "sessions_completed",
        "sessions_quarantined",
        "sessions_skipped",
        "completeness",
    ):
        if key in provenance:
            summary[key] = provenance[key]
    for key in ("quarantine", "chaos", "hedging", "recovery"):
        if key in provenance:
            summary[key] = provenance[key]
    return summary


def capacity_plan(
    fleet: Mapping, budget_hours: float = DEFAULT_BUDGET_HOURS
) -> List[dict]:
    """Per-group capacity projection from the merged sketches.

    For each (personality, scenario) group: the p95 session span prices
    a session pessimistically; ``budget_hours`` of one shard's time
    then hosts ``floor(budget * 3600 / p95_span_s)`` sessions, and the
    recorded shard count scales that to the deployment.  ``wait_share``
    is the fraction of a session's span its user spent visibly waiting
    — the paper's wait/think split at fleet scale.
    """
    if budget_hours <= 0:
        raise ValueError(f"budget_hours must be positive, got {budget_hours}")
    shards = int((fleet.get("provenance") or {}).get("shards") or 1)
    rows: List[dict] = []
    for key in sorted(fleet.get("groups") or {}):
        group = fleet["groups"][key]
        span = group["span"]
        wait = group["wait"]
        stages = group.get("stages") or {}
        p95_span_s = float(span["p95_ms"]) / 1e3
        per_shard = (
            math.floor(budget_hours * 3600.0 / p95_span_s)
            if p95_span_s > 0
            else 0
        )
        span_total_ms = float(
            (stages.get("session_span") or {}).get("sum_ms") or 0.0
        )
        wait_total_ms = float(
            (stages.get("keystroke_wait") or {}).get("sum_ms") or 0.0
        ) + float((stages.get("other_event_wait") or {}).get("sum_ms") or 0.0)
        rows.append(
            {
                "group": key,
                "sessions": group["sessions"],
                "p95_wait_ms": float(wait["p95_ms"]),
                "p95_span_s": p95_span_s,
                "sessions_per_shard": per_shard,
                "max_concurrent_sessions": per_shard * max(1, shards),
                "wait_share": (
                    wait_total_ms / span_total_ms if span_total_ms > 0 else 0.0
                ),
            }
        )
    return rows


def wait_table(fleet: Mapping) -> TextTable:
    compression = int(
        (fleet.get("provenance") or {}).get("compression")
        or (fleet.get("aggregate") or {}).get("compression")
        or 0
    )
    bound = (
        f" (sketch rel. err <= {relative_error_bound(compression):.2%})"
        if compression
        else ""
    )
    table = TextTable(
        [
            "personality/scenario",
            "sessions",
            "events",
            "p50 ms",
            "p95 ms",
            "p99.9 ms",
            "max ms",
        ],
        title=f"fleet wait time per event{bound}",
    )
    for key in sorted(fleet.get("groups") or {}):
        group = fleet["groups"][key]
        wait = group["wait"]
        table.add_row(
            key,
            group["sessions"],
            wait["count"],
            round(wait["p50_ms"], 3),
            round(wait["p95_ms"], 3),
            round(wait["p999_ms"], 3),
            round(wait["max_ms"], 3),
        )
    return table


def stage_table(fleet: Mapping) -> TextTable:
    table = TextTable(
        ["personality/scenario", "stage", "mean ms/session"],
        title="per-stage time (fixed-bucket histograms)",
    )
    for key in sorted(fleet.get("groups") or {}):
        group = fleet["groups"][key]
        for stage in sorted(group.get("stages") or {}):
            summary = group["stages"][stage]
            table.add_row(key, stage, round(summary["mean_ms"], 3))
    return table


def capacity_table(fleet: Mapping, budget_hours: float) -> TextTable:
    table = TextTable(
        [
            "personality/scenario",
            "p95 span s",
            "sessions/shard",
            "max concurrent",
            "wait share",
        ],
        title=(
            f"capacity plan: {budget_hours:g}h shard budget "
            "(p95 -> max concurrent sessions)"
        ),
    )
    for row in capacity_plan(fleet, budget_hours):
        table.add_row(
            row["group"],
            round(row["p95_span_s"], 3),
            row["sessions_per_shard"],
            row["max_concurrent_sessions"],
            f"{row['wait_share']:.1%}",
        )
    return table


def coverage_table(fleet: Mapping) -> TextTable:
    """Per-group completeness accounting for a partial sweep."""
    table = TextTable(
        [
            "personality/scenario",
            "expected",
            "completed",
            "quarantined",
            "skipped",
            "coverage",
        ],
        title="session coverage per group (completed + quarantined + skipped)",
    )
    for key in sorted(fleet.get("coverage") or {}):
        counts = fleet["coverage"][key]
        table.add_row(
            key,
            counts.get("expected", 0),
            counts.get("completed", 0),
            counts.get("quarantined", 0),
            counts.get("skipped", 0),
            f"{float(counts.get('coverage', 1.0)):.1%}",
        )
    return table


def render_fleet_report(
    fleet: Mapping, budget_hours: float = DEFAULT_BUDGET_HOURS
) -> str:
    """The full terminal report for one serialized fleet section."""
    provenance = fleet.get("provenance") or {}
    partial = provenance.get("digest_scope") == "partial"
    lines: List[str] = []
    lines.append(
        "fleet of {sessions} session(s), {events} event(s) — "
        "{shards} shard(s), {batches} batch(es), digest {digest}{scope}".format(
            sessions=provenance.get("sessions", "?"),
            events=provenance.get("events", "?"),
            shards=provenance.get("shards", "?"),
            batches=provenance.get("batches", "?"),
            digest=provenance.get("merged_digest", "?"),
            scope=" [PARTIAL]" if partial else "",
        )
    )
    lines.append(
        "population seed {seed}, fingerprint {fingerprint}, "
        "merge {merge}".format(
            seed=provenance.get("population_seed", "?"),
            fingerprint=provenance.get("population_fingerprint", "?"),
            merge=provenance.get("merge", "?"),
        )
    )
    if partial:
        lines.append(
            "PARTIAL sweep: {completed}/{expected} session(s) aggregated "
            "({quarantined} quarantined, {skipped} skipped), "
            "completeness {completeness:.1%}".format(
                completed=provenance.get("sessions_completed", "?"),
                expected=provenance.get("sessions_expected", "?"),
                quarantined=provenance.get("sessions_quarantined", 0),
                skipped=provenance.get("sessions_skipped", 0),
                completeness=float(provenance.get("completeness") or 0.0),
            )
        )
    if provenance.get("chaos"):
        chaos = provenance["chaos"]
        lines.append(
            f"chaos plan {chaos.get('plan', '?')!r} "
            f"(seed {chaos.get('seed', '?')})"
        )
    if provenance.get("hedging"):
        hedging = provenance["hedging"]
        lines.append(
            f"hedging: {hedging.get('issued', 0)} issued, "
            f"{hedging.get('won', 0)} won"
        )
    if fleet.get("makespan_s") is not None:
        lines.append(
            f"makespan {float(fleet['makespan_s']):.2f}s, "
            f"shard utilization {float(fleet.get('shard_utilization') or 0):.1%}"
        )
    failures = fleet.get("failures") or []
    if failures:
        lines.append(f"WARNING: {len(failures)} failed batch(es)")
    if partial and fleet.get("coverage"):
        lines.append("")
        lines.append(coverage_table(fleet).render())
    lines.append("")
    lines.append(wait_table(fleet).render())
    lines.append("")
    lines.append(stage_table(fleet).render())
    lines.append("")
    lines.append(capacity_table(fleet, budget_hours).render())
    return "\n".join(lines)


def _extract_fleet_sections(path: Path) -> List[dict]:
    """Fleet sections from a payload file, manifest, or --save dir."""
    if path.is_dir():
        path = path / "manifest.json"
    document = load_json(path)
    # An archived ext-fleet payload: {"data": {"fleet": {...}}}.
    data = document.get("data")
    if isinstance(data, dict) and "fleet" in data:
        return [data["fleet"]]
    # A sweep manifest: follow each entry's archived payload.
    if document.get("kind") == "run-manifest":
        sections: List[dict] = []
        for entry in document.get("experiments") or []:
            saved = entry.get("saved")
            if not saved:
                continue
            try:
                payload = load_json(path.parent / saved)
            except (OSError, ValueError):
                continue
            data = payload.get("data")
            if isinstance(data, dict) and "fleet" in data:
                sections.append(data["fleet"])
        return sections
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments fleet-report",
        description=(
            "Render fleet percentile tables and the capacity plan from an "
            "archived ext-fleet payload, a sweep manifest, or a --save dir."
        ),
    )
    parser.add_argument(
        "path",
        help=(
            "an ext-fleet payload JSON, a manifest.json, or the --save "
            "directory holding one"
        ),
    )
    parser.add_argument(
        "--budget-hours",
        type=float,
        default=DEFAULT_BUDGET_HOURS,
        metavar="H",
        help=(
            "shard-time budget window for the capacity plan "
            f"(default: {DEFAULT_BUDGET_HOURS:g})"
        ),
    )
    return parser


def fleet_report_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    path = Path(args.path)
    if args.budget_hours <= 0:
        log.error(f"--budget-hours must be positive, got {args.budget_hours}")
        return 2
    try:
        sections = _extract_fleet_sections(path)
    except (OSError, ValueError) as exc:
        log.error(f"cannot read {path}: {exc}")
        return 2
    if not sections:
        log.error(
            f"no fleet results in {path} (expected an ext-fleet payload or a "
            "manifest whose archive contains one)"
        )
        return 2
    try:
        for index, fleet in enumerate(sections):
            if index:
                print()
            print(render_fleet_report(fleet, budget_hours=args.budget_hours))
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; point
        # stdout at devnull so interpreter shutdown doesn't re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0
