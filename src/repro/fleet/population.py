"""Seeded generation of per-session fleet parameters.

A fleet is a *population*, not a workload list: a
:class:`PopulationConfig` names the distributions (typist speed, app
profile mix, think-time, OS personality mix, fault-scenario mix) and a
single population seed; :class:`SessionPopulation` then materializes
the spec of any session *by index*, on demand.

The determinism contract mirrors :mod:`repro.sim.rng`: session ``i``'s
parameters are drawn from an RNG stream named by ``(population seed,
i)`` alone, so the spec of session 41 is identical whether the fleet
runs sessions one at a time, in batches of 50, or sharded across eight
work-stealing workers — batch boundaries and scheduling order can
never perturb a draw.  This is the property that lets the shard
scheduler hand out arbitrary index ranges and still reproduce the
exact same fleet.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..sim.rng import RngStreams

__all__ = [
    "APP_PROFILES",
    "PopulationConfig",
    "SessionPopulation",
    "SessionSpec",
]

#: Interactive application profiles a session can run, in the spirit of
#: the paper's task mix (typing-centric, compute-heavy and draw-heavy
#: workloads stress different pipeline stages).  Costs are CPU cycles
#: per keystroke for the simulated app's handler, matching the scale
#: used by :class:`repro.experiments.ext_faults.FaultProbeApp`.
APP_PROFILES: Dict[str, dict] = {
    # Light editor: cheap echo, frequent autosave (sync I/O exposure).
    "editor": {
        "compute_cycles": 45_000,
        "draw_cycles": 20_000,
        "draw_pixels": 900,
        "autosave_every": 4,
    },
    # IDE-ish: heavier per-keystroke analysis, occasional autosave.
    "ide": {
        "compute_cycles": 140_000,
        "draw_cycles": 30_000,
        "draw_pixels": 1_400,
        "autosave_every": 8,
    },
    # Terminal-ish: nearly free compute, minimal redraw, no autosave.
    "terminal": {
        "compute_cycles": 12_000,
        "draw_cycles": 8_000,
        "draw_pixels": 200,
        "autosave_every": 0,
    },
    # Thin client on a lossy WAN: keystrokes ride the resilient remote
    # transport (:mod:`repro.remote`) instead of the local pipeline, so
    # the wait distribution is dominated by the link, not the app.
    "remote": {
        "remote": True,
        "rtt_ms": 60.0,
        "jitter_ms": 3.0,
        "loss": 0.08,
        "prediction": False,
    },
}


@dataclass(frozen=True)
class SessionSpec:
    """Everything one simulated session needs, fully resolved."""

    index: int
    seed: int              # master seed for this session's boot()
    os_name: str           # personality: nt351 / nt40 / win95
    profile: str           # APP_PROFILES key
    scenario: Optional[str]  # fault scenario name, or None (healthy)
    wpm: float             # typist speed, words per minute
    jitter: float          # multiplicative inter-key jitter
    think_mean_s: float    # mean think-pause between bursts
    chars: int             # keystrokes in the session

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "os": self.os_name,
            "profile": self.profile,
            "scenario": self.scenario,
            "wpm": round(self.wpm, 3),
            "jitter": round(self.jitter, 4),
            "think_mean_s": round(self.think_mean_s, 4),
            "chars": self.chars,
        }


def _normalize_mix(mix: Mapping[str, float], what: str) -> List[Tuple[str, float]]:
    items = sorted((str(k), float(v)) for k, v in mix.items())
    total = sum(weight for _, weight in items)
    if not items or total <= 0 or any(weight < 0 for _, weight in items):
        raise ValueError(f"{what} mix must have positive total weight: {mix!r}")
    return [(name, weight / total) for name, weight in items]


@dataclass(frozen=True)
class PopulationConfig:
    """Distribution parameters for a session population.

    The defaults describe a mixed office fleet: all three personalities,
    all three app profiles, typists between hunt-and-peck and fast
    touch-typing, and a small slice of sessions running under the
    cheap ``smoke`` fault scenario so fleet reports always have a
    degraded column to compare against.
    """

    seed: int = 0
    size: int = 1000
    os_mix: Mapping[str, float] = field(
        default_factory=lambda: {"nt351": 1.0, "nt40": 1.0, "win95": 1.0}
    )
    profile_mix: Mapping[str, float] = field(
        default_factory=lambda: {
            "editor": 2.0,
            "ide": 1.0,
            "terminal": 1.0,
            "remote": 1.0,
        }
    )
    #: scenario name -> weight; the empty string means healthy.
    scenario_mix: Mapping[str, float] = field(
        default_factory=lambda: {"": 3.0, "smoke": 1.0}
    )
    wpm_range: Tuple[float, float] = (25.0, 90.0)
    jitter_range: Tuple[float, float] = (0.15, 0.45)
    think_mean_range_s: Tuple[float, float] = (0.5, 3.0)
    chars_range: Tuple[int, int] = (6, 10)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"population size must be >= 1, got {self.size}")
        _normalize_mix(self.os_mix, "os")
        for profile in self.profile_mix:
            if profile not in APP_PROFILES:
                raise ValueError(
                    f"unknown app profile {profile!r}; "
                    f"known: {', '.join(sorted(APP_PROFILES))}"
                )
        _normalize_mix(self.profile_mix, "profile")
        _normalize_mix(self.scenario_mix, "scenario")
        for name in self.scenario_mix:
            if name:
                from ..faults import scenario_names

                if name not in scenario_names():
                    raise ValueError(
                        f"unknown fault scenario {name!r}; "
                        f"known: {', '.join(scenario_names())}"
                    )
        for low, high, what in (
            (*self.wpm_range, "wpm"),
            (*self.jitter_range, "jitter"),
            (*self.think_mean_range_s, "think_mean"),
            (*self.chars_range, "chars"),
        ):
            if not (0 <= low <= high):
                raise ValueError(f"invalid {what} range: ({low}, {high})")

    def to_dict(self) -> dict:
        return {
            "kind": "fleet-population",
            "seed": self.seed,
            "size": self.size,
            "os_mix": dict(sorted(self.os_mix.items())),
            "profile_mix": dict(sorted(self.profile_mix.items())),
            "scenario_mix": dict(sorted(self.scenario_mix.items())),
            "wpm_range": list(self.wpm_range),
            "jitter_range": list(self.jitter_range),
            "think_mean_range_s": list(self.think_mean_range_s),
            "chars_range": list(self.chars_range),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PopulationConfig":
        if data.get("kind") != "fleet-population":
            raise ValueError(
                f"not a fleet-population payload: {data.get('kind')!r}"
            )
        return cls(
            seed=int(data["seed"]),
            size=int(data["size"]),
            os_mix=dict(data["os_mix"]),
            profile_mix=dict(data["profile_mix"]),
            scenario_mix=dict(data["scenario_mix"]),
            wpm_range=tuple(data["wpm_range"]),
            jitter_range=tuple(data["jitter_range"]),
            think_mean_range_s=tuple(data["think_mean_range_s"]),
            chars_range=tuple(int(c) for c in data["chars_range"]),
        )

    def fingerprint(self) -> str:
        """Content digest identifying this exact population.

        Used as the fleet batches' cache-variant component: any change
        to the distributions — or the seed or size — invalidates cached
        batch aggregates, while renaming nothing never does.
        """
        import json

        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _pick(choices: Sequence[Tuple[str, float]], roll: float) -> str:
    cumulative = 0.0
    for name, weight in choices:
        cumulative += weight
        if roll < cumulative:
            return name
    return choices[-1][0]


class SessionPopulation:
    """Materializes :class:`SessionSpec`s from a :class:`PopulationConfig`."""

    def __init__(self, config: PopulationConfig) -> None:
        self.config = config
        self._rngs = RngStreams(config.seed)
        self._os_choices = _normalize_mix(config.os_mix, "os")
        self._profile_choices = _normalize_mix(config.profile_mix, "profile")
        self._scenario_choices = _normalize_mix(config.scenario_mix, "scenario")

    def __len__(self) -> int:
        return self.config.size

    def spec(self, index: int) -> SessionSpec:
        """The fully-resolved spec of session ``index``.

        Each session draws from its own named stream, so the result
        depends only on ``(population seed, index)`` — never on which
        other sessions were generated, in what order, or in what batch.
        """
        if not 0 <= index < self.config.size:
            raise IndexError(
                f"session index {index} out of range [0, {self.config.size})"
            )
        # ``fresh`` (not ``stream``): a cached stream's state advances
        # across calls, so spec(i) materialized twice on one population
        # object would silently differ — the exact nondeterminism this
        # module promises can never happen.
        rng = self._rngs.fresh(f"session:{index}")
        config = self.config
        os_name = _pick(self._os_choices, rng.random())
        profile = _pick(self._profile_choices, rng.random())
        scenario = _pick(self._scenario_choices, rng.random()) or None
        # Log-uniform typist speed: slow typists are as represented as
        # fast ones on a ratio scale.
        low, high = config.wpm_range
        wpm = math.exp(rng.uniform(math.log(low), math.log(high)))
        jitter = rng.uniform(*config.jitter_range)
        think_mean_s = rng.uniform(*config.think_mean_range_s)
        chars = rng.randint(*config.chars_range)
        session_seed = int.from_bytes(
            hashlib.sha256(
                f"fleet:{config.seed}:session:{index}".encode("utf-8")
            ).digest()[:8],
            "big",
        )
        return SessionSpec(
            index=index,
            seed=session_seed,
            os_name=os_name,
            profile=profile,
            scenario=scenario,
            wpm=wpm,
            jitter=jitter,
            think_mean_s=think_mean_s,
            chars=chars,
        )

    def __getitem__(self, index: int) -> SessionSpec:
        return self.spec(index)

    def __iter__(self) -> Iterator[SessionSpec]:
        for index in range(self.config.size):
            yield self.spec(index)

    def batches(self, batch_size: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` index ranges covering the fleet.

        These are the units the shard scheduler hands out; any
        partition yields the same merged aggregate (see
        ``tests/test_fleet_shards.py``).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return [
            (start, min(start + batch_size, self.config.size))
            for start in range(0, self.config.size, batch_size)
        ]
