"""Work-stealing shard execution of session batches.

A fleet run is a bag of independent *batches* (contiguous session-index
ranges).  Batches are submitted to
:func:`repro.experiments.parallel.run_specs` — the same scheduler,
watchdog, retry and Ctrl-C machinery experiment sweeps use — with
:func:`execute_fleet_batch` as the job executor.  Work stealing falls
out of the pool structure: every idle shard (worker process) pulls the
next unclaimed batch from the shared pending deque, so a shard stuck
behind a slow batch never idles the others.

Reused infrastructure, not bypassed:

* **Result cache** — each batch aggregate is cached under
  ``(batch id, population seed, code version, population fingerprint)``
  via :class:`repro.core.runcache.RunCache`, so re-running a fleet (or
  resuming a crashed one) recomputes only missing batches.
* **Checkpointing** — with a
  :class:`~repro.verify.checkpoint.Checkpointer` attached, every
  completed batch's aggregate is snapshotted; a killed fleet resumes
  batch-exactly.
* **Retries / timeouts** — per-batch watchdog and transient-pool-retry
  semantics are inherited from :func:`~repro.experiments.parallel.run_specs`
  unchanged.
* **Observability** — the fleet summarizes itself into the standard
  :class:`~repro.obs.metrics.MetricsRegistry` shapes (sessions/batches
  counters, batch wall-time histogram, shard-utilization gauge).

Determinism contract: the merged aggregate — including its byte-level
:meth:`~repro.fleet.sketch.FleetAggregator.digest` — is a function of
``(population config, compression)`` alone.  Batch partition, shard
count, steal interleaving and merge order can never change it, because
session parameters are drawn per-index (:mod:`repro.fleet.population`)
and sketch merges are exactly commutative and associative
(:mod:`repro.fleet.sketch`).  ``tests/test_fleet_shards.py`` permutes
all of them and compares digests.
"""

from __future__ import annotations

import re
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.runcache import RunCache, code_version, variant_key
from ..core.serialize import cache_entry_to_dict, experiment_to_dict
from ..obs import MetricsRegistry
from ..obs.logging import get_logger
from .population import PopulationConfig, SessionPopulation
from .session import run_session
from .sketch import DEFAULT_COMPRESSION, FleetAggregator

__all__ = [
    "FleetResult",
    "batch_job_id",
    "execute_fleet_batch",
    "run_fleet",
]

log = get_logger("repro.fleet")

_BATCH_ID = re.compile(r"fleet:(\d+)-(\d+)")


def batch_job_id(start: int, stop: int) -> str:
    """The job id of the ``[start, stop)`` session batch."""
    return f"fleet:{start}-{stop}"


def _parse_batch_id(job_id: str) -> Tuple[int, int]:
    match = _BATCH_ID.fullmatch(job_id)
    if not match:
        raise ValueError(f"not a fleet batch id: {job_id!r}")
    start, stop = int(match.group(1)), int(match.group(2))
    if stop <= start:
        raise ValueError(f"empty fleet batch: {job_id!r}")
    return start, stop


def _batch_variant(config: PopulationConfig, compression: int) -> str:
    return variant_key(
        {"population": config.fingerprint(), "compression": compression}
    )


def execute_fleet_batch(
    job_id: str,
    seed: int,
    cache: Optional[RunCache] = None,
    refresh: bool = False,
    run_kwargs: Optional[dict] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: int = 1,
    obs: Optional[dict] = None,
    fast_forward: bool = True,
    chaos: Optional[dict] = None,
    batch: bool = True,
):
    """Pool entry point: run one session batch, streamingly aggregated.

    Signature-compatible with
    :func:`repro.experiments.parallel.execute_job` so the parallel
    runner can schedule batches exactly like experiment jobs.
    ``run_kwargs`` must carry ``{"population": <config dict>}`` (and
    optionally ``"compression"``); ``seed`` must equal the population
    seed — it is part of the cache key and asserted against the config.

    The returned ``JobResult.payload["data"]`` holds the batch's
    serialized :class:`~repro.fleet.sketch.FleetAggregator` — O(sketch)
    bytes however many events the batch's sessions produced; no
    per-event data survives the worker.

    ``chaos`` enters this batch into a
    :func:`~repro.chaos.engine.chaos_harness`: the worker may crash,
    hang, straggle or sabotage its artifact writes before/around the
    real work; ``poison`` chaos fails individual sessions inside the
    loop (deterministically per index, so bisection converges on the
    exact poisoned set), and ``corrupt-result`` mangles the *finished*
    payload's digest after any cache write — the shared cache keeps
    clean bytes; the corruption models the transport, and the fleet
    fold's digest verification is what catches it.
    """
    from ..chaos.engine import chaos_harness

    with chaos_harness(chaos, job_id) as active_chaos:
        job = _fleet_batch_job(
            job_id, seed, cache, refresh, run_kwargs, obs, fast_forward,
            active_chaos, batch=batch,
        )
    if active_chaos is not None:
        active_chaos.corrupt_result(job)
    return job


def _fleet_batch_job(
    job_id: str,
    seed: int,
    cache: Optional[RunCache],
    refresh: bool,
    run_kwargs: Optional[dict],
    obs: Optional[dict],
    fast_forward: bool,
    active_chaos=None,
    batch: bool = True,
):
    """:func:`execute_fleet_batch` inside the chaos harness."""
    from ..experiments.common import ExperimentResult
    from ..experiments.parallel import JobResult
    from ..sim.engine import set_batch_default, set_fast_forward_default

    set_fast_forward_default(fast_forward)
    set_batch_default(batch)
    started = time.perf_counter()
    try:
        start, stop = _parse_batch_id(job_id)
        config = PopulationConfig.from_dict((run_kwargs or {})["population"])
        compression = int(
            (run_kwargs or {}).get("compression", DEFAULT_COMPRESSION)
        )
        if seed != config.seed:
            raise ValueError(
                f"batch seed {seed} disagrees with population seed {config.seed}"
            )
        variant = _batch_variant(config, compression)
        want_obs = bool(obs and (obs.get("trace") or obs.get("metrics")))
        if cache is not None and not refresh and not want_obs:
            entry = cache.load(job_id, seed, variant)
            if entry is not None:
                return JobResult(
                    experiment_id=job_id,
                    seed=seed,
                    wall_s=time.perf_counter() - started,
                    started_monotonic=started,
                    cache_hit=True,
                    rendered=entry["rendered"],
                    checks=entry["checks"],
                    payload=entry["payload"],
                )

        session = None
        if want_obs:
            from ..obs import runtime as obs_runtime

            session = obs_runtime.start_session(
                trace=bool(obs.get("trace")), metrics=bool(obs.get("metrics"))
            )
        try:
            population = SessionPopulation(config)
            aggregator = FleetAggregator(compression)
            faults = 0
            for index in range(start, stop):
                if active_chaos is not None:
                    active_chaos.check_poison(index)
                result = run_session(population.spec(index))
                aggregator.add_session(result)
                faults += result.faults_injected
        finally:
            if session is not None:
                obs_runtime.stop_session()
        wall = time.perf_counter() - started

        result = ExperimentResult(
            id=job_id,
            title=f"fleet batch [{start}, {stop}) of population {config.seed}",
        )
        result.data = {
            "aggregate": aggregator.to_dict(),
            "digest": aggregator.digest(),
            "sessions": stop - start,
            "faults_injected": faults,
        }
        trace_dict = None
        metrics_snapshot = None
        if session is not None:
            if session.tracer is not None:
                from ..obs.perfetto import chrome_trace

                trace_dict = chrome_trace(session.tracer, label=job_id)
            metrics_snapshot = session.metrics_snapshot()
        if cache is not None:
            cache.store(
                cache_entry_to_dict(
                    result,
                    seed=seed,
                    wall_s=wall,
                    code_version=cache.version,
                    variant=variant,
                )
            )
        return JobResult(
            experiment_id=job_id,
            seed=seed,
            wall_s=wall,
            started_monotonic=started,
            cache_hit=False,
            rendered=result.render(),
            checks=[],
            payload=experiment_to_dict(result),
            trace=trace_dict,
            metrics=metrics_snapshot,
        )
    except Exception:
        log.warning(f"fleet batch {job_id} raised; returning error result")
        return JobResult(
            experiment_id=job_id,
            seed=seed,
            wall_s=time.perf_counter() - started,
            started_monotonic=started,
            error=traceback.format_exc(),
            failure_kind="error",
        )


@dataclass
class FleetResult:
    """A completed fleet sweep: merged aggregate plus scheduling record.

    Completeness accounting is exact by construction: every one of the
    population's sessions ends in exactly one of *completed* (merged
    into the aggregate), *quarantined* (confirmed failing at session
    granularity) or *skipped* (not attempted: circuit breaker open, or
    part of an unrecovered batch), so ``sessions_expected ==
    sessions_completed + sessions_quarantined + sessions_skipped``
    always holds — a partial sweep can mis-measure nothing silently.
    """

    aggregate: FleetAggregator
    config: PopulationConfig
    shards: int
    batch_size: int
    makespan_s: float
    #: Per-batch scheduling stats (id, wall_s, queue_s, cache/source).
    batches: List[dict] = field(default_factory=list)
    #: Batch ids still failed *after* recovery — empty whenever the
    #: quarantine layer ran (it always reduces batches to accounted
    #: sessions); non-empty only with ``quarantine=False``.
    failures: List[dict] = field(default_factory=list)
    #: Sessions confirmed failing at single-session granularity:
    #: ``{"index", "group", "failure_kind"}`` — the poison set.
    quarantined: List[dict] = field(default_factory=list)
    #: Sessions deliberately not attempted (open circuit breaker /
    #: unrecovered batches): ``{"index", "group", "reason"}``.
    skipped: List[dict] = field(default_factory=list)
    #: Recovery-stage record: observed failures, re-runs, healed
    #: batches, breaker state (``None`` when nothing failed).
    recovery: Optional[dict] = None
    #: Chaos provenance (plan identity + seed) when chaos was active.
    chaos: Optional[dict] = None
    #: Hedging stats (``{"issued", "won"}``) when hedging was enabled.
    hedging: Optional[dict] = None
    #: Merged metrics snapshot (fleet scheduling self-observation).
    metrics: Optional[dict] = None

    @property
    def digest(self) -> str:
        return self.aggregate.digest()

    # ------------------------------------------------------------------
    # Completeness accounting
    # ------------------------------------------------------------------
    @property
    def sessions_expected(self) -> int:
        return self.config.size

    @property
    def sessions_completed(self) -> int:
        return self.aggregate.sessions

    @property
    def sessions_quarantined(self) -> int:
        return len(self.quarantined)

    @property
    def sessions_skipped(self) -> int:
        return len(self.skipped)

    @property
    def completeness(self) -> float:
        """Fraction of expected sessions in the aggregate, 0..1."""
        if self.sessions_expected <= 0:
            return 1.0
        return self.sessions_completed / self.sessions_expected

    @property
    def complete(self) -> bool:
        return self.sessions_completed == self.sessions_expected

    @property
    def digest_scope(self) -> str:
        """``"complete"`` or ``"partial"`` — what the merged digest
        covers.  The digest itself stays the raw aggregate digest (so
        two equally-partial runs still compare byte-for-byte); the
        scope stamp is what stops a partial digest from being read as
        a complete one."""
        return "complete" if self.complete else "partial"

    def group_coverage(self) -> dict:
        """Per-``(os, scenario)`` coverage, computed without ever
        enumerating the population: completed counts come from the
        aggregate's groups, losses from the quarantine/skip records'
        group tags (sessions lost before their group was known — an
        unrecovered whole batch — land under ``"unattributed"``)."""
        coverage: dict = {}

        def _bucket(group: str) -> dict:
            return coverage.setdefault(
                group,
                {"completed": 0, "quarantined": 0, "skipped": 0},
            )

        for (os_name, scenario), group in sorted(
            self.aggregate.groups.items()
        ):
            _bucket(f"{os_name}/{scenario}")["completed"] = group["sessions"]
        for entry in self.quarantined:
            _bucket(entry.get("group") or "unattributed")["quarantined"] += 1
        for entry in self.skipped:
            _bucket(entry.get("group") or "unattributed")["skipped"] += 1
        for group, counts in coverage.items():
            expected = (
                counts["completed"]
                + counts["quarantined"]
                + counts["skipped"]
            )
            counts["expected"] = expected
            counts["coverage"] = (
                counts["completed"] / expected if expected else 1.0
            )
        return coverage

    def provenance(self) -> dict:
        """The sketch-merge provenance record manifests embed."""
        cached = sum(1 for b in self.batches if b["source"] == "cache")
        record = {
            "population_seed": self.config.seed,
            "population_fingerprint": self.config.fingerprint(),
            "sessions": self.aggregate.sessions,
            "events": self.aggregate.events,
            "compression": self.aggregate.compression,
            "shards": self.shards,
            "batch_size": self.batch_size,
            "batches": len(self.batches),
            "batches_from_cache": cached,
            "batches_from_checkpoint": sum(
                1 for b in self.batches if b["source"] == "checkpoint"
            ),
            "merge": "commutative-bucket-add",
            "merged_digest": self.digest,
            "digest_scope": self.digest_scope,
            "sessions_expected": self.sessions_expected,
            "sessions_completed": self.sessions_completed,
            "sessions_quarantined": self.sessions_quarantined,
            "sessions_skipped": self.sessions_skipped,
            "completeness": self.completeness,
            "code_version": code_version(),
        }
        if self.quarantined:
            # The exact poison set, pinned to this population: enough
            # to reproduce any quarantined session in isolation.
            record["quarantine"] = {
                "population_fingerprint": self.config.fingerprint(),
                "sessions": sorted(e["index"] for e in self.quarantined),
            }
        if self.chaos is not None:
            record["chaos"] = dict(self.chaos)
        if self.hedging is not None:
            record["hedging"] = dict(self.hedging)
        if self.recovery is not None:
            record["recovery"] = {
                key: value
                for key, value in self.recovery.items()
                if key != "observed_failures"
            }
        return record

    def shard_utilization(self) -> float:
        """sum(batch wall) / (shards * makespan), 0..1."""
        if not self.batches or self.makespan_s <= 0 or self.shards <= 0:
            return 0.0
        busy = sum(float(b["wall_s"]) for b in self.batches)
        return min(1.0, busy / (self.shards * self.makespan_s))


def _fleet_metrics(result: FleetResult) -> MetricsRegistry:
    registry = MetricsRegistry()
    sessions = registry.counter(
        "repro_fleet_sessions_total", "Fleet sessions aggregated."
    )
    sessions.inc(result.aggregate.sessions)
    events = registry.counter(
        "repro_fleet_events_total", "Per-event latencies folded into sketches."
    )
    events.inc(result.aggregate.events)
    batches = registry.counter(
        "repro_fleet_batches_total", "Fleet batches by source."
    )
    wall = registry.histogram(
        "repro_fleet_batch_wall_seconds", "Per-batch wall time."
    )
    for batch in result.batches:
        batches.inc(source=batch["source"])
        wall.observe(float(batch["wall_s"]))
    for failure in result.failures:
        batches.inc(source=failure.get("failure_kind") or "error")
    registry.gauge(
        "repro_fleet_shards", "Worker shards used for the fleet sweep."
    ).set(result.shards)
    registry.gauge(
        "repro_fleet_makespan_seconds", "Wall time of the fleet sweep."
    ).set(result.makespan_s)
    registry.gauge(
        "repro_fleet_shard_utilization",
        "sum(batch wall) / (shards * makespan), 0..1.",
    ).set(result.shard_utilization())
    registry.gauge(
        "repro_fleet_completeness",
        "sessions_completed / sessions_expected, 0..1.",
    ).set(result.completeness)
    if result.sessions_quarantined:
        registry.counter(
            "repro_fleet_sessions_quarantined_total",
            "Sessions confirmed failing and quarantined.",
        ).inc(result.sessions_quarantined)
    if result.sessions_skipped:
        registry.counter(
            "repro_fleet_sessions_skipped_total",
            "Sessions not attempted (breaker open / unrecovered batch).",
        ).inc(result.sessions_skipped)
    if result.hedging:
        hedges = registry.counter(
            "repro_fleet_hedges_total", "Speculative batch duplicates."
        )
        hedges.inc(result.hedging.get("issued", 0), outcome="issued")
        hedges.inc(result.hedging.get("won", 0), outcome="won")
    return registry


def _verified_batch_data(job) -> Tuple[Optional[dict], Optional[str]]:
    """Extract and integrity-check one batch job's aggregate payload.

    Returns ``(data, None)`` for a verified payload, ``(None, reason)``
    when the payload is missing, malformed, or its aggregate bytes
    disagree with the digest recorded next to them — the signature of
    corruption in transit (or a ``corrupt-result`` chaos fault).  Runs
    on *every* batch, chaos or not: digest verification is how the fold
    refuses to merge bytes it cannot vouch for.
    """
    data = (job.payload or {}).get("data") or {}
    try:
        aggregate = FleetAggregator.from_dict(data["aggregate"])
    except Exception:
        return None, "batch payload malformed (no valid aggregate)"
    if aggregate.digest() != data.get("digest"):
        return None, (
            f"batch digest mismatch: recorded {data.get('digest')!r} != "
            f"recomputed {aggregate.digest()!r}"
        )
    return data, None


def run_fleet(
    config: PopulationConfig,
    *,
    shards: Optional[int] = None,
    batch_size: int = 50,
    compression: int = DEFAULT_COMPRESSION,
    cache: Optional[RunCache] = None,
    refresh: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 1.0,
    checkpoint=None,
    batch_order: Optional[Sequence[int]] = None,
    on_batch: Optional[Callable[[dict], None]] = None,
    chaos=None,
    chaos_seed: int = 0,
    hedge=None,
    quarantine: bool = True,
    breaker_threshold: int = 3,
) -> FleetResult:
    """Run a whole population and return its merged aggregate.

    ``shards`` is the worker count (default CPU count, clamped to the
    batch count; 1 runs in-process).  ``batch_order`` reorders batch
    *submission* — a test hook standing in for adversarial steal
    interleavings; the merged digest is identical for every permutation.
    ``checkpoint`` is an optional
    :class:`~repro.verify.checkpoint.Checkpointer`: completed batch
    aggregates are recorded as they finish and restored — not re-run —
    on resume.

    Aggregation is streaming: each batch's sketch state is folded into
    the running merge as its result arrives and the payload is dropped,
    so peak memory is O(shards x sketch size + batches), independent of
    session (and event) count.

    **Chaos and recovery.**  ``chaos`` (a
    :class:`~repro.chaos.plan.ChaosPlan` or a scenario name from
    :func:`repro.chaos.scenarios.get_chaos_scenario`) plus
    ``chaos_seed`` inject deterministic harness faults into batch
    workers.  ``hedge`` (``True`` for defaults, or a ``{"factor",
    "min_completed"}`` dict) enables straggler hedging on pool rounds.
    ``quarantine`` (on by default) drives the recovery stage: every
    batch still failed after retries is re-run once and, if it fails
    deterministically, bisected down to session granularity — transient
    faults heal with digests byte-identical to a clean run; confirmed
    poison sessions land in :attr:`FleetResult.quarantined` (and in
    provenance), and once ``breaker_threshold`` sessions of one ``(os,
    scenario)`` group are quarantined, that group's circuit opens and
    further failing sessions are *skipped* instead of re-run.  Either
    way the accounting identity ``expected == completed + quarantined
    + skipped`` is exact.
    """
    from ..chaos import (
        RECOVERY_ATTEMPT_BASE,
        ChaosPlan,
        CircuitBreaker,
        chaos_payload,
        get_chaos_scenario,
    )
    from ..experiments.parallel import run_specs

    population = SessionPopulation(config)
    batches = population.batches(batch_size)
    order = list(range(len(batches)))
    if batch_order is not None:
        if sorted(batch_order) != order:
            raise ValueError(
                f"batch_order must permute range({len(batches)}): {batch_order!r}"
            )
        order = list(batch_order)

    if isinstance(chaos, str):
        chaos = get_chaos_scenario(chaos)
    chaos_dict = (
        chaos_payload(chaos, seed=chaos_seed)
        if isinstance(chaos, ChaosPlan)
        else None
    )
    if hedge is True:
        hedge = {"factor": 1.5, "min_completed": 3}
    elif not hedge:
        hedge = None

    aggregator = FleetAggregator(compression)
    batch_stats: List[dict] = []
    failures: List[dict] = []
    hedge_stats = {"issued": 0, "won": 0}

    # Batches already in the checkpoint are restored, not re-run.  Keys
    # are namespaced by population fingerprint so a checkpoint directory
    # shared between fleets (e.g. a main sweep and its cross-check
    # sub-populations) can never hand a batch to the wrong population.
    fingerprint = config.fingerprint()
    to_run: List[Tuple[str, int]] = []
    for index in order:
        start, stop = batches[index]
        job_id = batch_job_id(start, stop)
        snapshot = (
            checkpoint.get(f"{fingerprint}:{job_id}")
            if checkpoint is not None
            else None
        )
        if snapshot is not None:
            aggregator.merge(FleetAggregator.from_dict(snapshot))
            batch_stats.append(
                {
                    "id": job_id,
                    "wall_s": 0.0,
                    "queue_s": 0.0,
                    "sessions": stop - start,
                    "source": "checkpoint",
                }
            )
        else:
            to_run.append((job_id, config.seed))

    def fold(job) -> None:
        hedge_stats["issued"] += job.hedges
        hedge_stats["won"] += 1 if job.hedge_won else 0
        if job.error is None:
            # Integrity gate: never merge bytes whose recorded digest
            # disagrees with their content (corruption in transit).
            data, integrity_error = _verified_batch_data(job)
            if integrity_error is not None:
                job.error = integrity_error
                job.failure_kind = "corrupt"
        if job.error is not None:
            failures.append(
                {
                    "id": job.experiment_id,
                    "failure_kind": job.failure_kind,
                    "error": job.error,
                    "attempts": job.attempts,
                    "attempt_history": list(job.attempt_history),
                }
            )
            return
        batch_aggregate = FleetAggregator.from_dict(data["aggregate"])
        aggregator.merge(batch_aggregate)
        if checkpoint is not None:
            checkpoint.record(
                f"{fingerprint}:{job.experiment_id}", data["aggregate"]
            )
        stat = {
            "id": job.experiment_id,
            "wall_s": job.wall_s,
            "queue_s": job.queue_s,
            "sessions": data.get("sessions", 0),
            "source": "cache" if job.cache_hit else "run",
        }
        batch_stats.append(stat)
        if on_batch is not None:
            on_batch(stat)
        # Streaming: the merged sketch owns the state now.
        job.payload = None
        job.rendered = ""

    import os as _os

    shard_count = shards if shards is not None else (_os.cpu_count() or 1)
    shard_count = max(1, min(shard_count, len(to_run) or 1))
    started = time.perf_counter()
    run_specs(
        to_run,
        jobs=shard_count,
        cache=cache,
        refresh=refresh,
        on_result=fold,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        run_kwargs={
            "population": config.to_dict(),
            "compression": compression,
        },
        executor=execute_fleet_batch,
        chaos=chaos_dict,
        hedge=hedge,
    )

    # ------------------------------------------------------------------
    # Recovery: re-run failed batches in isolation, bisecting down to
    # session granularity.  Transient faults heal (the recovery chaos
    # channel uses attempt numbers no windowed spec can reach, and the
    # schedule is deterministic, so a healed digest is byte-identical);
    # deterministic failures converge on the exact poisoned session set.
    # ------------------------------------------------------------------
    quarantined: List[dict] = []
    skipped: List[dict] = []
    recovery_info: Optional[dict] = None
    if failures and quarantine:
        observed = [dict(entry) for entry in failures]
        breaker = CircuitBreaker(breaker_threshold)
        rerun_count = 0
        healed_sessions = 0

        def _merge_recovered(job, data: dict) -> None:
            nonlocal healed_sessions
            aggregator.merge(FleetAggregator.from_dict(data["aggregate"]))
            if checkpoint is not None:
                checkpoint.record(
                    f"{fingerprint}:{job.experiment_id}", data["aggregate"]
                )
            healed_sessions += int(data.get("sessions", 0))
            stat = {
                "id": job.experiment_id,
                "wall_s": job.wall_s,
                "queue_s": job.queue_s,
                "sessions": data.get("sessions", 0),
                "source": "recovery",
            }
            batch_stats.append(stat)
            if on_batch is not None:
                on_batch(stat)

        def _rerun(start: int, stop: int, depth: int):
            """Re-run ``[start, stop)`` once, in-process, on the
            recovery chaos channel.  Returns ``(job, verified data or
            None)``."""
            nonlocal rerun_count
            rerun_count += 1
            results: List = []
            run_specs(
                [(batch_job_id(start, stop), config.seed)],
                jobs=1,
                cache=cache,
                refresh=refresh,
                on_result=results.append,
                timeout_s=timeout_s,
                retries=0,
                run_kwargs={
                    "population": config.to_dict(),
                    "compression": compression,
                },
                executor=execute_fleet_batch,
                chaos=(
                    dict(
                        chaos_dict,
                        attempt_base=RECOVERY_ATTEMPT_BASE + depth,
                    )
                    if chaos_dict is not None
                    else None
                ),
            )
            job = results[0]
            if job.error is None:
                data, integrity_error = _verified_batch_data(job)
                if integrity_error is None:
                    return job, data
                job.error = integrity_error
                job.failure_kind = "corrupt"
            return job, None

        def _recover_range(start: int, stop: int, depth: int) -> None:
            if stop - start == 1:
                spec = population.spec(start)
                group = f"{spec.os_name}/{spec.scenario or 'healthy'}"
                if not breaker.allow(group):
                    breaker.skip(group)
                    skipped.append(
                        {
                            "index": start,
                            "group": group,
                            "reason": "circuit-open",
                        }
                    )
                    return
                job, data = _rerun(start, stop, depth)
                if data is not None:
                    _merge_recovered(job, data)
                    return
                breaker.record(group)
                quarantined.append(
                    {
                        "index": start,
                        "group": group,
                        "failure_kind": job.failure_kind,
                        "error": (job.error or "").strip()[-200:],
                    }
                )
                return
            job, data = _rerun(start, stop, depth)
            if data is not None:
                _merge_recovered(job, data)
                return
            mid = (start + stop) // 2
            _recover_range(start, mid, depth + 1)
            _recover_range(mid, stop, depth + 1)

        for entry in failures:
            start, stop = _parse_batch_id(entry["id"])
            _recover_range(start, stop, depth=0)
        failures = []
        recovery_info = {
            "observed_failures": observed,
            "reruns": rerun_count,
            "healed_sessions": healed_sessions,
            "breaker": breaker.to_dict(),
        }
    elif failures:
        # Quarantine disabled: the loss is still accounted, just at
        # batch granularity — every session of a failed batch is
        # recorded as skipped so the completeness identity holds.
        for entry in failures:
            start, stop = _parse_batch_id(entry["id"])
            for index in range(start, stop):
                spec = population.spec(index)
                skipped.append(
                    {
                        "index": index,
                        "group": f"{spec.os_name}/{spec.scenario or 'healthy'}",
                        "reason": "failed-batch",
                    }
                )

    makespan_s = time.perf_counter() - started
    if checkpoint is not None:
        checkpoint.flush()

    fleet = FleetResult(
        aggregate=aggregator,
        config=config,
        shards=shard_count,
        batch_size=batch_size,
        makespan_s=makespan_s,
        batches=batch_stats,
        failures=failures,
        quarantined=quarantined,
        skipped=skipped,
        recovery=recovery_info,
        chaos=(
            {
                "plan": chaos.name,
                "seed": int(chaos_seed),
                "kinds": list(chaos.kinds),
            }
            if chaos_dict is not None
            else None
        ),
        hedging=(dict(hedge_stats) if hedge else None),
    )
    fleet.metrics = _fleet_metrics(fleet).snapshot()
    if not fleet.complete or failures:
        log.warning(
            "fleet sweep incomplete: "
            f"{fleet.sessions_completed}/{fleet.sessions_expected} sessions "
            f"({len(failures)} failed batch(es), "
            f"{len(quarantined)} quarantined, {len(skipped)} skipped)"
        )
    return fleet
