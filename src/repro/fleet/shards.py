"""Work-stealing shard execution of session batches.

A fleet run is a bag of independent *batches* (contiguous session-index
ranges).  Batches are submitted to
:func:`repro.experiments.parallel.run_specs` — the same scheduler,
watchdog, retry and Ctrl-C machinery experiment sweeps use — with
:func:`execute_fleet_batch` as the job executor.  Work stealing falls
out of the pool structure: every idle shard (worker process) pulls the
next unclaimed batch from the shared pending deque, so a shard stuck
behind a slow batch never idles the others.

Reused infrastructure, not bypassed:

* **Result cache** — each batch aggregate is cached under
  ``(batch id, population seed, code version, population fingerprint)``
  via :class:`repro.core.runcache.RunCache`, so re-running a fleet (or
  resuming a crashed one) recomputes only missing batches.
* **Checkpointing** — with a
  :class:`~repro.verify.checkpoint.Checkpointer` attached, every
  completed batch's aggregate is snapshotted; a killed fleet resumes
  batch-exactly.
* **Retries / timeouts** — per-batch watchdog and transient-pool-retry
  semantics are inherited from :func:`~repro.experiments.parallel.run_specs`
  unchanged.
* **Observability** — the fleet summarizes itself into the standard
  :class:`~repro.obs.metrics.MetricsRegistry` shapes (sessions/batches
  counters, batch wall-time histogram, shard-utilization gauge).

Determinism contract: the merged aggregate — including its byte-level
:meth:`~repro.fleet.sketch.FleetAggregator.digest` — is a function of
``(population config, compression)`` alone.  Batch partition, shard
count, steal interleaving and merge order can never change it, because
session parameters are drawn per-index (:mod:`repro.fleet.population`)
and sketch merges are exactly commutative and associative
(:mod:`repro.fleet.sketch`).  ``tests/test_fleet_shards.py`` permutes
all of them and compares digests.
"""

from __future__ import annotations

import re
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.runcache import RunCache, code_version, variant_key
from ..core.serialize import cache_entry_to_dict, experiment_to_dict
from ..obs import MetricsRegistry
from ..obs.logging import get_logger
from .population import PopulationConfig, SessionPopulation
from .session import run_session
from .sketch import DEFAULT_COMPRESSION, FleetAggregator

__all__ = [
    "FleetResult",
    "batch_job_id",
    "execute_fleet_batch",
    "run_fleet",
]

log = get_logger("repro.fleet")

_BATCH_ID = re.compile(r"fleet:(\d+)-(\d+)")


def batch_job_id(start: int, stop: int) -> str:
    """The job id of the ``[start, stop)`` session batch."""
    return f"fleet:{start}-{stop}"


def _parse_batch_id(job_id: str) -> Tuple[int, int]:
    match = _BATCH_ID.fullmatch(job_id)
    if not match:
        raise ValueError(f"not a fleet batch id: {job_id!r}")
    start, stop = int(match.group(1)), int(match.group(2))
    if stop <= start:
        raise ValueError(f"empty fleet batch: {job_id!r}")
    return start, stop


def _batch_variant(config: PopulationConfig, compression: int) -> str:
    return variant_key(
        {"population": config.fingerprint(), "compression": compression}
    )


def execute_fleet_batch(
    job_id: str,
    seed: int,
    cache: Optional[RunCache] = None,
    refresh: bool = False,
    run_kwargs: Optional[dict] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: int = 1,
    obs: Optional[dict] = None,
    fast_forward: bool = True,
):
    """Pool entry point: run one session batch, streamingly aggregated.

    Signature-compatible with
    :func:`repro.experiments.parallel.execute_job` so the parallel
    runner can schedule batches exactly like experiment jobs.
    ``run_kwargs`` must carry ``{"population": <config dict>}`` (and
    optionally ``"compression"``); ``seed`` must equal the population
    seed — it is part of the cache key and asserted against the config.

    The returned ``JobResult.payload["data"]`` holds the batch's
    serialized :class:`~repro.fleet.sketch.FleetAggregator` — O(sketch)
    bytes however many events the batch's sessions produced; no
    per-event data survives the worker.
    """
    from ..experiments.common import ExperimentResult
    from ..experiments.parallel import JobResult
    from ..sim.engine import set_fast_forward_default

    set_fast_forward_default(fast_forward)
    started = time.perf_counter()
    try:
        start, stop = _parse_batch_id(job_id)
        config = PopulationConfig.from_dict((run_kwargs or {})["population"])
        compression = int(
            (run_kwargs or {}).get("compression", DEFAULT_COMPRESSION)
        )
        if seed != config.seed:
            raise ValueError(
                f"batch seed {seed} disagrees with population seed {config.seed}"
            )
        variant = _batch_variant(config, compression)
        want_obs = bool(obs and (obs.get("trace") or obs.get("metrics")))
        if cache is not None and not refresh and not want_obs:
            entry = cache.load(job_id, seed, variant)
            if entry is not None:
                return JobResult(
                    experiment_id=job_id,
                    seed=seed,
                    wall_s=time.perf_counter() - started,
                    started_monotonic=started,
                    cache_hit=True,
                    rendered=entry["rendered"],
                    checks=entry["checks"],
                    payload=entry["payload"],
                )

        session = None
        if want_obs:
            from ..obs import runtime as obs_runtime

            session = obs_runtime.start_session(
                trace=bool(obs.get("trace")), metrics=bool(obs.get("metrics"))
            )
        try:
            population = SessionPopulation(config)
            aggregator = FleetAggregator(compression)
            faults = 0
            for index in range(start, stop):
                result = run_session(population.spec(index))
                aggregator.add_session(result)
                faults += result.faults_injected
        finally:
            if session is not None:
                obs_runtime.stop_session()
        wall = time.perf_counter() - started

        result = ExperimentResult(
            id=job_id,
            title=f"fleet batch [{start}, {stop}) of population {config.seed}",
        )
        result.data = {
            "aggregate": aggregator.to_dict(),
            "digest": aggregator.digest(),
            "sessions": stop - start,
            "faults_injected": faults,
        }
        trace_dict = None
        metrics_snapshot = None
        if session is not None:
            if session.tracer is not None:
                from ..obs.perfetto import chrome_trace

                trace_dict = chrome_trace(session.tracer, label=job_id)
            metrics_snapshot = session.metrics_snapshot()
        if cache is not None:
            cache.store(
                cache_entry_to_dict(
                    result,
                    seed=seed,
                    wall_s=wall,
                    code_version=cache.version,
                    variant=variant,
                )
            )
        return JobResult(
            experiment_id=job_id,
            seed=seed,
            wall_s=wall,
            started_monotonic=started,
            cache_hit=False,
            rendered=result.render(),
            checks=[],
            payload=experiment_to_dict(result),
            trace=trace_dict,
            metrics=metrics_snapshot,
        )
    except Exception:
        log.warning(f"fleet batch {job_id} raised; returning error result")
        return JobResult(
            experiment_id=job_id,
            seed=seed,
            wall_s=time.perf_counter() - started,
            started_monotonic=started,
            error=traceback.format_exc(),
            failure_kind="error",
        )


@dataclass
class FleetResult:
    """A completed fleet sweep: merged aggregate plus scheduling record."""

    aggregate: FleetAggregator
    config: PopulationConfig
    shards: int
    batch_size: int
    makespan_s: float
    #: Per-batch scheduling stats (id, wall_s, queue_s, cache/source).
    batches: List[dict] = field(default_factory=list)
    #: Batch ids that failed (error/timeout) — empty on a clean run.
    failures: List[dict] = field(default_factory=list)
    #: Merged metrics snapshot (fleet scheduling self-observation).
    metrics: Optional[dict] = None

    @property
    def digest(self) -> str:
        return self.aggregate.digest()

    def provenance(self) -> dict:
        """The sketch-merge provenance record manifests embed."""
        cached = sum(1 for b in self.batches if b["source"] == "cache")
        return {
            "population_seed": self.config.seed,
            "population_fingerprint": self.config.fingerprint(),
            "sessions": self.aggregate.sessions,
            "events": self.aggregate.events,
            "compression": self.aggregate.compression,
            "shards": self.shards,
            "batch_size": self.batch_size,
            "batches": len(self.batches),
            "batches_from_cache": cached,
            "batches_from_checkpoint": sum(
                1 for b in self.batches if b["source"] == "checkpoint"
            ),
            "merge": "commutative-bucket-add",
            "merged_digest": self.digest,
            "code_version": code_version(),
        }

    def shard_utilization(self) -> float:
        """sum(batch wall) / (shards * makespan), 0..1."""
        if not self.batches or self.makespan_s <= 0 or self.shards <= 0:
            return 0.0
        busy = sum(float(b["wall_s"]) for b in self.batches)
        return min(1.0, busy / (self.shards * self.makespan_s))


def _fleet_metrics(result: FleetResult) -> MetricsRegistry:
    registry = MetricsRegistry()
    sessions = registry.counter(
        "repro_fleet_sessions_total", "Fleet sessions aggregated."
    )
    sessions.inc(result.aggregate.sessions)
    events = registry.counter(
        "repro_fleet_events_total", "Per-event latencies folded into sketches."
    )
    events.inc(result.aggregate.events)
    batches = registry.counter(
        "repro_fleet_batches_total", "Fleet batches by source."
    )
    wall = registry.histogram(
        "repro_fleet_batch_wall_seconds", "Per-batch wall time."
    )
    for batch in result.batches:
        batches.inc(source=batch["source"])
        wall.observe(float(batch["wall_s"]))
    for failure in result.failures:
        batches.inc(source=failure.get("failure_kind") or "error")
    registry.gauge(
        "repro_fleet_shards", "Worker shards used for the fleet sweep."
    ).set(result.shards)
    registry.gauge(
        "repro_fleet_makespan_seconds", "Wall time of the fleet sweep."
    ).set(result.makespan_s)
    registry.gauge(
        "repro_fleet_shard_utilization",
        "sum(batch wall) / (shards * makespan), 0..1.",
    ).set(result.shard_utilization())
    return registry


def run_fleet(
    config: PopulationConfig,
    *,
    shards: Optional[int] = None,
    batch_size: int = 50,
    compression: int = DEFAULT_COMPRESSION,
    cache: Optional[RunCache] = None,
    refresh: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 1.0,
    checkpoint=None,
    batch_order: Optional[Sequence[int]] = None,
    on_batch: Optional[Callable[[dict], None]] = None,
) -> FleetResult:
    """Run a whole population and return its merged aggregate.

    ``shards`` is the worker count (default CPU count, clamped to the
    batch count; 1 runs in-process).  ``batch_order`` reorders batch
    *submission* — a test hook standing in for adversarial steal
    interleavings; the merged digest is identical for every permutation.
    ``checkpoint`` is an optional
    :class:`~repro.verify.checkpoint.Checkpointer`: completed batch
    aggregates are recorded as they finish and restored — not re-run —
    on resume.

    Aggregation is streaming: each batch's sketch state is folded into
    the running merge as its result arrives and the payload is dropped,
    so peak memory is O(shards x sketch size + batches), independent of
    session (and event) count.
    """
    from ..experiments.parallel import run_specs

    population = SessionPopulation(config)
    batches = population.batches(batch_size)
    order = list(range(len(batches)))
    if batch_order is not None:
        if sorted(batch_order) != order:
            raise ValueError(
                f"batch_order must permute range({len(batches)}): {batch_order!r}"
            )
        order = list(batch_order)

    aggregator = FleetAggregator(compression)
    batch_stats: List[dict] = []
    failures: List[dict] = []

    # Batches already in the checkpoint are restored, not re-run.  Keys
    # are namespaced by population fingerprint so a checkpoint directory
    # shared between fleets (e.g. a main sweep and its cross-check
    # sub-populations) can never hand a batch to the wrong population.
    fingerprint = config.fingerprint()
    to_run: List[Tuple[str, int]] = []
    for index in order:
        start, stop = batches[index]
        job_id = batch_job_id(start, stop)
        snapshot = (
            checkpoint.get(f"{fingerprint}:{job_id}")
            if checkpoint is not None
            else None
        )
        if snapshot is not None:
            aggregator.merge(FleetAggregator.from_dict(snapshot))
            batch_stats.append(
                {
                    "id": job_id,
                    "wall_s": 0.0,
                    "queue_s": 0.0,
                    "sessions": stop - start,
                    "source": "checkpoint",
                }
            )
        else:
            to_run.append((job_id, config.seed))

    def fold(job) -> None:
        if job.error is not None:
            failures.append(
                {
                    "id": job.experiment_id,
                    "failure_kind": job.failure_kind,
                    "error": job.error,
                }
            )
            return
        data = (job.payload or {}).get("data") or {}
        batch_aggregate = FleetAggregator.from_dict(data["aggregate"])
        aggregator.merge(batch_aggregate)
        if checkpoint is not None:
            checkpoint.record(
                f"{fingerprint}:{job.experiment_id}", data["aggregate"]
            )
        stat = {
            "id": job.experiment_id,
            "wall_s": job.wall_s,
            "queue_s": job.queue_s,
            "sessions": data.get("sessions", 0),
            "source": "cache" if job.cache_hit else "run",
        }
        batch_stats.append(stat)
        if on_batch is not None:
            on_batch(stat)
        # Streaming: the merged sketch owns the state now.
        job.payload = None
        job.rendered = ""

    import os as _os

    shard_count = shards if shards is not None else (_os.cpu_count() or 1)
    shard_count = max(1, min(shard_count, len(to_run) or 1))
    started = time.perf_counter()
    run_specs(
        to_run,
        jobs=shard_count,
        cache=cache,
        refresh=refresh,
        on_result=fold,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        run_kwargs={
            "population": config.to_dict(),
            "compression": compression,
        },
        executor=execute_fleet_batch,
    )
    makespan_s = time.perf_counter() - started
    if checkpoint is not None:
        checkpoint.flush()

    fleet = FleetResult(
        aggregate=aggregator,
        config=config,
        shards=shard_count,
        batch_size=batch_size,
        makespan_s=makespan_s,
        batches=batch_stats,
        failures=failures,
    )
    fleet.metrics = _fleet_metrics(fleet).snapshot()
    if failures:
        log.warning(
            f"fleet sweep finished with {len(failures)} failed batch(es)"
        )
    return fleet
