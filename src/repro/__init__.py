"""repro: reproduction of "Using Latency to Evaluate Interactive System
Performance" (Endo, Wang, Chen & Seltzer, OSDI '96).

Layers:

* :mod:`repro.sim` — deterministic discrete-event hardware simulation
  (the paper's 100 MHz Pentium testbed).
* :mod:`repro.winsys` — the simulated Windows family (NT 3.51, NT 4.0,
  Windows 95 personalities over one kernel mechanism).
* :mod:`repro.apps` — interactive application models (Notepad, Word,
  PowerPoint, shell, echo).
* :mod:`repro.workload` — input generation (MS-Test-style scripted
  driver and a stochastic human typist).
* :mod:`repro.core` — the paper's contribution: idle-loop latency
  instrumentation, message-API monitoring, the wait/think FSM, counter
  attribution, analysis and visualization.
* :mod:`repro.experiments` — one driver per figure/table in the paper.
"""

__version__ = "1.0.0"
