"""Hot-path profiler for the simulation substrate.

Runs the two benchmarks that bound the engine core's performance — the
schedule/cancel-heavy calendar churn and the full keystroke pipeline —
under :mod:`cProfile` and writes a top-N cumulative-time report:

    python -m repro.profilehotpath [-o .profile-hotpath.txt] [--top 20]

The report is the artifact ``make profile-hotpath`` produces.  It
exists so a perf regression found by the gate can be localised without
re-deriving the profiling setup: the workloads here are the same shapes
``benchmarks/test_simulator_perf.py`` times, so a function that grows
in this report is the function that moved the gate.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from .core.atomicio import atomic_write_text

__all__ = ["calendar_churn", "keystroke_pipeline", "profile_report", "main"]


def calendar_churn(events: int = 50_000) -> int:
    """The lazy-deletion worst case: every event schedules a far-future
    decoy and cancels the previous one (mirrors
    ``test_engine_calendar_churn``)."""
    from .sim.engine import Simulator

    sim = Simulator()
    count = [0]
    decoy = [None]

    def chain():
        count[0] += 1
        if decoy[0] is not None:
            decoy[0].cancel()
        decoy[0] = sim.schedule(10**9, lambda: None, "decoy")
        if count[0] < events:
            sim.schedule(10, chain)

    sim.schedule(10, chain)
    sim.run(until_ns=events * 10 + 1)
    return count[0]


def keystroke_pipeline(keystrokes: int = 100) -> int:
    """Interrupt -> DPC -> message -> app handling under contention
    (mirrors ``test_busy_fastforward_overhead``)."""
    from .apps import NotepadApp
    from .core import IdleLoopInstrument
    from .sim.timebase import ns_from_ms
    from .winsys import boot
    from .workload.mstest import MsTestDriver
    from .workload.script import InputScript, Key

    system = boot("nt40")
    app = NotepadApp(system)
    app.start(foreground=True)
    instrument = IdleLoopInstrument(system, loop_ms=1.0)
    instrument.install()
    system.run_for(ns_from_ms(5))
    driver = MsTestDriver(
        system,
        InputScript([Key("a", pause_ms=5.0)] * keystrokes),
        queuesync=False,
        default_pause_ms=5.0,
    )
    driver.run_to_completion(max_seconds=60)
    return app.keystrokes


_WORKLOADS: List[Tuple[str, Callable[[], object]]] = [
    ("calendar-churn", calendar_churn),
    ("keystroke-pipeline", keystroke_pipeline),
]


def profile_report(top: int = 20, repeats: int = 3) -> str:
    """Profile both hot-path workloads; return the combined report text.

    Each workload runs ``repeats`` times inside one profiler so ncalls
    are stable multiples and one-off warm-up (import, personality
    construction) is diluted.
    """
    sections: List[str] = []
    for name, workload in _WORKLOADS:
        workload()  # warm imports and caches outside the profile
        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(repeats):
            workload()
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)
        sections.append(
            f"==== {name} (x{repeats}, top {top} by cumulative time) ====\n"
            f"{buffer.getvalue()}"
        )
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.profilehotpath",
        description="profile the engine hot paths, write a top-N report",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=".profile-hotpath.txt",
        help="report file to write (default: .profile-hotpath.txt)",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="functions per section (default: 20)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per workload inside the profiler (default: 3)",
    )
    args = parser.parse_args(argv)
    report = profile_report(top=args.top, repeats=args.repeats)
    atomic_write_text(Path(args.output), report)
    sys.stdout.write(report)
    print(f"profilehotpath: wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
