"""Network terminal application.

A telnet-style receive window for the paper's *other* event class
(Section 1.1: "network packet arrival").  Each arriving packet is
parsed, appended to the scrollback and echoed to the screen; a full
screen of lines triggers a scroll refresh, giving the same
short-event/long-event structure the keyboard applications show.
"""

from __future__ import annotations

from typing import Iterator

from ..winsys.syscalls import Syscall
from .base import InteractiveApp

__all__ = ["TerminalApp"]


class TerminalApp(InteractiveApp):
    """Renders arriving packets as terminal lines."""

    name = "terminal"
    #: Protocol/application parsing per packet byte (app-private).
    PARSE_PER_BYTE = 120
    #: Rendering the received line (one batched GDI op).
    LINE_DRAW_BASE = 260_000
    #: Lines on screen before a scroll refresh.
    SCREEN_LINES = 24
    #: Scroll refresh (per line repaint).
    SCROLL_LINE_BASE = 100_000

    def __init__(self, system) -> None:
        super().__init__(system)
        self.lines_received = 0
        self.scrolls = 0

    def start(self, foreground: bool = True, priority=None):
        thread = super().start(
            foreground=foreground,
            **({"priority": priority} if priority is not None else {}),
        )
        self.system.bind_socket(thread)
        return thread

    def on_socket(self, packet) -> Iterator[Syscall]:
        self.lines_received += 1
        yield self.app_compute(
            self.PARSE_PER_BYTE * packet.size_bytes, label="term-parse"
        )
        yield self.draw(self.LINE_DRAW_BASE, pixels=80 * 16, label="term-line")
        if self.lines_received % self.SCREEN_LINES == 0:
            self.scrolls += 1
            for _line in range(self.SCREEN_LINES):
                yield self.draw(
                    self.SCROLL_LINE_BASE, pixels=80 * 16, label="term-scroll"
                )
            yield self.flush_gdi()
