"""Application substrate: models of the measured interactive programs."""

from .base import InteractiveApp
from .echo import EchoApp
from .notepad import NotepadApp
from .ole import OleServer
from .shell import ShellApp
from .slides import SlidesApp
from .terminal import TerminalApp
from .wordproc import WordApp

__all__ = [
    "EchoApp",
    "InteractiveApp",
    "NotepadApp",
    "OleServer",
    "ShellApp",
    "SlidesApp",
    "TerminalApp",
    "WordApp",
]
