"""OLE embedded-object edit sessions.

The PowerPoint task "finds and modifies three OLE embedded Excel graph
objects" (Section 5.2).  Starting an edit session launches the object's
server (the embedded Excel graph editor): the first launch reads the
server image from disk cold; later launches find most of it in the
buffer cache — "the effects of the file system cache are most clearly
observed in the latency for starting the second OLE edit".  The session
model reads a *working set* of the image (full on first activation,
a fraction afterwards), runs server initialization (full init first,
a cheaper re-init later) and renders the in-place editing window.
"""

from __future__ import annotations

from typing import Iterator

from ..winsys.loader import ProgramImage
from ..winsys.syscalls import Compute, SyncRead, Syscall
from ..winsys.system import WindowsSystem

__all__ = ["OleServer"]


class OleServer:
    """The embedded Excel-graph editor, shared across edit sessions."""

    IMAGE_BYTES = 11 * 1024 * 1024
    #: Full server initialization (GUI path; first activation).
    INIT_GUI_BASE = 170_000_000
    #: Re-initialization for later activations (editor window only).
    REINIT_GUI_BASE = 60_000_000
    #: Loading and binding one embedded object (OS-independent).
    OBJECT_LOAD_BASE = 30_000_000
    #: Rendering the in-place editing window.
    RENDER_GUI_BASE = 10_000_000
    #: Fraction of the image touched by activations after the first.
    WARM_WORKING_SET = 0.60
    #: Each activation leaks a little state the next one walks over —
    #: the paper saw "all of the events and the cycle counter increased
    #: steadily on subsequent runs" and speculated "this behavior is
    #: unintended" (Section 5.3); the harness handles it by keeping the
    #: first trial only.
    SESSION_CREEP_CYCLES = 1_500_000
    READ_CHUNK_BYTES = 64 * 1024

    def __init__(self, system: WindowsSystem, name: str = "excel-graph") -> None:
        self.system = system
        self.personality = system.personality
        self.image = ProgramImage.create(
            system.filesystem,
            name,
            self.IMAGE_BYTES,
            init_gui_cycles=0,  # the server manages its own init costs
        )
        self.activations = 0

    def start_edit(self) -> Iterator[Syscall]:
        """Generator: everything between the user's double-click and a
        ready editing window."""
        first = self.activations == 0
        self.activations += 1
        fraction = 1.0 if first else self.WARM_WORKING_SET
        to_read = int(self.image.file.size_bytes * fraction)
        offset = 0
        while offset < to_read:
            length = min(self.READ_CHUNK_BYTES, to_read - offset)
            yield SyncRead(self.image.file, offset, length)
            offset += length
        if first:
            init = self.INIT_GUI_BASE
        else:
            init = self.REINIT_GUI_BASE + self.SESSION_CREEP_CYCLES * (
                self.activations - 2
            )
        yield Compute(self.personality.gui_work(init, label="ole-init"))
        yield Compute(
            self.personality.app_work(self.OBJECT_LOAD_BASE, label="ole-object")
        )
        yield Compute(
            self.personality.gui_work(self.RENDER_GUI_BASE, label="ole-render")
        )

    def modify_object(self) -> Iterator[Syscall]:
        """One Excel operation on the open object (sub-second event)."""
        yield Compute(self.personality.gui_work(3_500_000, label="ole-modify-gui"))
        yield Compute(self.personality.app_work(3_000_000, label="ole-modify-calc"))

    def end_edit(self) -> Iterator[Syscall]:
        """Deactivate in-place editing; redraw the host page region."""
        yield Compute(self.personality.gui_work(1_500_000, label="ole-close"))
