"""Desktop shell model.

Two roles in the reproduction:

* It is the focused application for the Figure 6 microbenchmarks — an
  *unbound* keystroke walks the expensive default USER path (menu
  accelerators), and a mouse click on the screen background does only
  default hit-testing.  The base class's default handlers already model
  those costs.
* It implements the window-maximize animation of Figure 4: ~80 ms of
  input processing, then outline-animation steps paced by a 10 ms timer
  (hence aligned to clock-tick boundaries, each step growing as the
  outline gets bigger), then a long continuous redraw of the restored
  window.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.timebase import ns_from_ms
from ..winsys.syscalls import Syscall
from .base import InteractiveApp

__all__ = ["ShellApp"]

_ANIM_TIMER_ID = 3


class ShellApp(InteractiveApp):
    """The desktop: default input handling plus the maximize animation."""

    name = "shell"
    #: Processing the maximize request before animation starts (~80 ms
    #: of 100% CPU in Figure 4a).
    MAXIMIZE_INPUT_GUI_BASE = 7_800_000
    #: Number of animation steps (outline positions).
    ANIMATION_STEPS = 22
    #: First step's drawing cost; later steps grow linearly as the
    #: outline increases in size ("Each step of animation takes
    #: progressively longer", Section 2.6).
    ANIMATION_STEP_BASE = 30_000
    ANIMATION_STEP_GROWTH = 33_000
    #: Full-window redraw once the animation lands (~200 ms in Figure 4a).
    REDRAW_GUI_BASE = 19_500_000

    def __init__(self, system) -> None:
        super().__init__(system)
        self._animating = False
        self._anim_step = 0
        self.maximizes_completed = 0

    def on_command(self, command) -> Iterator[Syscall]:
        action = command[0] if isinstance(command, tuple) else command
        if action == "maximize":
            yield from self._begin_maximize()
        else:
            yield from super().on_command(command)

    def _begin_maximize(self) -> Iterator[Syscall]:
        yield self.gui_compute(self.MAXIMIZE_INPUT_GUI_BASE, label="shell-max-input")
        self._animating = True
        self._anim_step = 0
        yield self.set_timer(_ANIM_TIMER_ID, ns_from_ms(10))

    def on_timer(self, timer_id: int) -> Iterator[Syscall]:
        if timer_id != _ANIM_TIMER_ID or not self._animating:
            yield from super().on_timer(timer_id)
            return
        self._anim_step += 1
        step_cycles = (
            self.ANIMATION_STEP_BASE
            + self.ANIMATION_STEP_GROWTH * self._anim_step
        )
        yield self.gui_compute(step_cycles, label="shell-anim-step")
        yield self.draw(12_000, pixels=100 * self._anim_step, label="shell-outline")
        yield self.flush_gdi()
        if self._anim_step >= self.ANIMATION_STEPS:
            self._animating = False
            yield self.kill_timer(_ANIM_TIMER_ID)
            yield self.gui_compute(self.REDRAW_GUI_BASE, label="shell-redraw")
            yield self.draw(600_000, pixels=640 * 480, label="shell-paint")
            yield self.flush_gdi()
            self.maximizes_completed += 1
