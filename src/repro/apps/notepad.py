"""Microsoft Notepad model.

"Notepad is a simple editor for ASCII text ... Our Notepad benchmark
models an editing session on a 56KB text file, which includes text
entry of 1300 characters at approximately 100 words per minute, as well
as cursor and page movement." (Section 5.1.)

Cost structure, chosen to reproduce the Figure 7 shapes:

* printable keystrokes are cheap (< 10 ms on the testbed) — a buffer
  insert plus one glyph draw; these contribute over 80 % of the task's
  cumulative latency purely by count;
* Enter and PageDown refresh all or part of the screen (the >= 28 ms
  events of Figure 7) — a burst of per-line GDI drawing;
* virtually all activity is synchronous, which is what makes Notepad
  the clean demonstration case for the idle-loop methodology.

The glyph-draw path is GDI-flush dominated, so Windows 95's cheap
no-crossing GDI beats both NTs per keystroke (smallest cumulative
latency) even though its elapsed time is inflated by WM_QUEUESYNC
processing — the Figure 7 anomaly.
"""

from __future__ import annotations

from typing import Iterator

from ..winsys.syscalls import Syscall
from .base import InteractiveApp

__all__ = ["NotepadApp"]


class NotepadApp(InteractiveApp):
    """Plain-text editor: insert, echo, scroll, page."""

    name = "notepad"
    #: Buffer insertion per printable character (app-private).
    INSERT_BASE = 60_000
    #: Drawing the echoed glyph (one batched GDI op).
    GLYPH_DRAW_BASE = 320_000
    #: Lines repainted by a newline scroll / page-down refresh.
    REFRESH_LINES = 25
    #: Per-line repaint cost (one GDI op each).
    LINE_DRAW_BASE = 100_000
    #: Scroll bookkeeping before a refresh.
    SCROLL_BASE = 150_000
    #: Caret move for arrow keys.
    CARET_BASE = 90_000
    #: Backspace: delete plus repaint of the line tail.
    BACKSPACE_DRAW_BASE = 420_000

    VISIBLE_COLUMNS = 78

    def __init__(self, system, document_bytes: int = 56 * 1024) -> None:
        super().__init__(system)
        self.document_bytes = document_bytes
        self.cursor = 0
        self.length = document_bytes
        self.keystrokes = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Keystroke handling
    # ------------------------------------------------------------------
    def on_char(self, char: str) -> Iterator[Syscall]:
        self.keystrokes += 1
        if char == "\n":
            yield from self._newline()
            return
        yield self.app_compute(self.INSERT_BASE, label="np-insert")
        yield self.draw(self.GLYPH_DRAW_BASE, pixels=12 * 16, label="np-glyph")
        self.cursor += 1
        self.length += 1

    def on_key(self, key: str) -> Iterator[Syscall]:
        self.keystrokes += 1
        if key in ("Left", "Right", "Up", "Down"):
            yield self.app_compute(20_000, label="np-caret-move")
            yield self.draw(self.CARET_BASE, pixels=2 * 16, label="np-caret")
        elif key in ("PageDown", "PageUp"):
            yield from self._refresh_screen("np-page")
        elif key == "Enter":
            yield from self._newline()
        elif key == "Backspace":
            yield self.app_compute(self.INSERT_BASE, label="np-delete")
            yield self.draw(self.BACKSPACE_DRAW_BASE, pixels=400 * 16, label="np-bs")
            self.cursor = max(0, self.cursor - 1)
            self.length = max(0, self.length - 1)
        elif len(key) == 1:
            # Printable; the WM_CHAR that follows does the work.
            yield self.app_compute(4_000, label="np-translate")
        else:
            yield from super().on_key(key)

    def on_keyup(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(12_000, label="np-keyup")

    # ------------------------------------------------------------------
    # Screen refresh (the long-latency keystroke class of Figure 7)
    # ------------------------------------------------------------------
    def _newline(self) -> Iterator[Syscall]:
        yield self.app_compute(self.SCROLL_BASE, label="np-scroll")
        yield from self._refresh_screen("np-newline")
        self.cursor += 1
        self.length += 1

    def _refresh_screen(self, label: str) -> Iterator[Syscall]:
        self.refreshes += 1
        for _line in range(self.REFRESH_LINES):
            yield self.draw(
                self.LINE_DRAW_BASE,
                pixels=self.VISIBLE_COLUMNS * 12 * 16,
                label=label,
            )
        yield self.flush_gdi()
