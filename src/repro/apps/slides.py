"""Microsoft PowerPoint model.

Section 5.2's task: start PowerPoint on a cold machine, load a 46-page,
530 KB presentation, and find and modify three embedded Excel graph
objects.  The cost structure targets the paper's findings:

* the six Table 1 events over one second are all disk-bound (cold
  program-image and document reads, write-through saves);
* page-down and Excel operations stay under one second (Figure 8);
* the page-down to an OLE page and the OLE edit start are the two
  application microbenchmarks of Section 5.3, whose hardware-counter
  profiles separate the three systems (Figures 9 and 10).
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from ..sim.timebase import ns_from_ms
from ..winsys.loader import ProgramImage, load_image
from ..winsys.syscalls import Compute, SyncRead, SyncWrite, Syscall
from .base import InteractiveApp
from .ole import OleServer

__all__ = ["SlidesApp"]


class SlidesApp(InteractiveApp):
    """Presentation editor with embedded OLE graph objects."""

    name = "powerpoint"
    IMAGE_BYTES = 10 * 1024 * 1024
    INIT_GUI_BASE = 230_000_000
    DOCUMENT_BYTES = 530 * 1024
    PAGES = 46
    #: Pages carrying an embedded Excel graph object.
    OLE_PAGES: Set[int] = {5, 20, 35}
    #: Rendering one page (GUI path).
    RENDER_GUI_BASE = 12_000_000
    #: Extra rendering for an embedded graph.
    RENDER_OLE_EXTRA = 2_000_000
    #: Batched GDI ops per page repaint.
    PAGE_DRAW_OPS = 16
    PAGE_DRAW_OP_BASE = 250_000
    #: Import/parse on open.
    OPEN_PARSE_APP_BASE = 150_000_000
    OPEN_CONVERT_GUI_BASE = 120_000_000
    OPEN_DIALOG_GUI_BASE = 25_000_000
    #: Save: serialization plus scattered write-through writes.
    SAVE_SERIALIZE_APP_BASE = 450_000_000
    SAVE_PROGRESS_GUI_BASE = 30_000_000
    SAVE_WRITE_COUNT = 250
    SAVE_WRITE_BYTES = 8 * 1024
    READ_CHUNK_BYTES = 64 * 1024

    def __init__(self, system) -> None:
        super().__init__(system)
        self.image = ProgramImage.create(
            system.filesystem,
            "powerpnt",
            self.IMAGE_BYTES,
            init_gui_cycles=self.INIT_GUI_BASE,
        )
        self.document = system.filesystem.ensure(
            "presentation.ppt", self.DOCUMENT_BYTES
        )
        self.scratch = system.filesystem.ensure(
            "pptXXXX.tmp", max(self.DOCUMENT_BYTES * 2,
                               self.SAVE_WRITE_COUNT * self.SAVE_WRITE_BYTES)
        )
        self.ole = OleServer(system)
        self.page = 0
        self.document_open = False
        self.started = False
        self.editing_object: Optional[int] = None

    # ------------------------------------------------------------------
    # Commands (menu / shell actions posted as WM_COMMAND)
    # ------------------------------------------------------------------
    def on_command(self, command) -> Iterator[Syscall]:
        action = command[0] if isinstance(command, tuple) else command
        if action == "launch":
            yield from self._launch()
        elif action == "open":
            yield from self._open_document()
        elif action == "save":
            yield from self._save_document()
        elif action == "ole_edit":
            yield from self._start_ole_edit()
        elif action == "ole_modify":
            yield from self.ole.modify_object()
        elif action == "ole_close":
            yield from self._end_ole_edit()
        else:
            yield from super().on_command(command)

    def on_key(self, key: str) -> Iterator[Syscall]:
        if key == "PageDown":
            yield from self.page_down()
        elif key == "PageUp":
            yield from self._render_page(max(0, self.page - 1))
        else:
            yield from super().on_key(key)

    def on_keyup(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(15_000, label="ppt-keyup")

    # ------------------------------------------------------------------
    # The Table 1 long-latency operations
    # ------------------------------------------------------------------
    def _launch(self) -> Iterator[Syscall]:
        """Cold application start (Table 1: "Start Powerpoint")."""
        yield from load_image(
            self.personality, self.image, chunk_bytes=self.READ_CHUNK_BYTES
        )
        self.started = True

    def _open_document(self) -> Iterator[Syscall]:
        """Table 1: "Open document"."""
        yield self.gui_compute(self.OPEN_DIALOG_GUI_BASE, label="ppt-open-dialog")
        offset = 0
        while offset < self.document.size_bytes:
            length = min(16 * 1024, self.document.size_bytes - offset)
            yield SyncRead(self.document, offset, length)
            offset += length
        yield self.app_compute(self.OPEN_PARSE_APP_BASE, label="ppt-parse")
        yield self.gui_compute(self.OPEN_CONVERT_GUI_BASE, label="ppt-convert")
        self.document_open = True
        self.page = 0
        yield from self._render_page(0)

    def _save_document(self) -> Iterator[Syscall]:
        """Table 1: "Save document" — the longest event on both NTs.

        Serialization interleaves with scattered write-through writes;
        the personality's ``save_write_factor`` (> 1 on NT 4.0) scales
        the write count, reproducing Table 1's inversion where NT 4.0
        saves *slower* than NT 3.51.
        """
        writes = round(self.SAVE_WRITE_COUNT * self.personality.save_write_factor)
        serialize_chunk = self.SAVE_SERIALIZE_APP_BASE // writes
        scratch_span = self.scratch.size_bytes - self.SAVE_WRITE_BYTES
        for index in range(writes):
            yield self.app_compute(serialize_chunk, label="ppt-serialize")
            offset = (index * 37 * self.SAVE_WRITE_BYTES) % max(
                scratch_span, self.SAVE_WRITE_BYTES
            )
            yield SyncWrite(self.scratch, offset, self.SAVE_WRITE_BYTES)
        yield self.gui_compute(self.SAVE_PROGRESS_GUI_BASE, label="ppt-save-progress")

    def _start_ole_edit(self) -> Iterator[Syscall]:
        """Table 1: "Start OLE edit session" (first/second/third)."""
        yield from self.ole.start_edit()
        self.editing_object = self.page

    def _end_ole_edit(self) -> Iterator[Syscall]:
        yield from self.ole.end_edit()
        self.editing_object = None
        yield from self._render_page(self.page)

    # ------------------------------------------------------------------
    # Sub-second operations (Figure 8 / Figures 9-10 microbenchmarks)
    # ------------------------------------------------------------------
    def page_down(self) -> Iterator[Syscall]:
        """Advance one page and render it (the Figure 9 microbenchmark)."""
        self.page = min(self.PAGES - 1, self.page + 1)
        yield from self._render_page(self.page)

    def _render_page(self, page: int) -> Iterator[Syscall]:
        base = self.RENDER_GUI_BASE
        if page in self.OLE_PAGES:
            base += self.RENDER_OLE_EXTRA
        yield self.gui_compute(base, label="ppt-render")
        for _op in range(self.PAGE_DRAW_OPS):
            yield self.draw(
                self.PAGE_DRAW_OP_BASE, pixels=640 * 480 // self.PAGE_DRAW_OPS,
                label="ppt-page-draw",
            )
        yield self.flush_gdi()
