"""Interactive application framework.

An :class:`InteractiveApp` is a message-pump program (Section 2.4's
GetMessage/PeekMessage structure) with overridable handlers per message
kind.  Subclasses model the measured applications; they express every
cost through the OS personality's work constructors so that one
application model produces per-OS behaviour the way one binary did on
the paper's three systems (the Notepad experiment "used the same
Notepad executable ... on all three systems").

The pump supports *background work*: when :meth:`has_background_work`
is true the app polls with PeekMessage and runs one background step per
empty poll instead of blocking — the asynchronous-computation structure
the paper infers for Microsoft Word (Section 5.4).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..winsys.messages import WM, Message
from ..winsys.syscalls import (
    Compute,
    GdiFlush,
    GdiOp,
    GetMessage,
    KillTimer,
    PeekMessage,
    SetTimer,
    Syscall,
)
from ..winsys.system import WindowsSystem
from ..winsys.threads import NORMAL_PRIORITY, SimThread

__all__ = ["InteractiveApp"]


class InteractiveApp:
    """Base class for simulated interactive applications."""

    name = "app"
    #: Default (DefWindowProc-style) USER-path costs, in base cycles.
    #: An unbound key-down walks menu accelerators — the expensive
    #: default path measured in Figure 6.
    DEFAULT_KEYDOWN_BASE = 120_000
    DEFAULT_CHAR_BASE = 30_000
    DEFAULT_KEYUP_BASE = 25_000
    DEFAULT_MOUSEDOWN_BASE = 60_000
    DEFAULT_MOUSEUP_BASE = 40_000
    DEFAULT_MOUSEMOVE_BASE = 8_000

    def __init__(self, system: WindowsSystem) -> None:
        self.system = system
        self.personality = system.personality
        self.fs = system.filesystem
        self.thread: Optional[SimThread] = None
        self._quit = False
        #: Count of input events fully handled (diagnostics).
        self.events_handled = 0

    # ------------------------------------------------------------------
    # Syscall builders (cost vocabulary for subclasses)
    # ------------------------------------------------------------------
    def app_compute(self, cycles: int, label: str = "") -> Compute:
        """OS-independent application computation."""
        return Compute(self.personality.app_work(cycles, label=label))

    def gui_compute(self, cycles: int, label: str = "") -> Compute:
        """GUI-path computation (layout/render preparation)."""
        return Compute(self.personality.gui_work(cycles, label=label))

    def user_compute(self, cycles: int, label: str = "") -> Compute:
        """USER-path computation (window management, default processing)."""
        return Compute(self.personality.user_work(cycles, label=label))

    def draw(self, base_cycles: int, pixels: int = 0, label: str = "draw") -> GdiOp:
        """One batched GDI drawing operation."""
        return GdiOp(
            base=self.personality.app_work(base_cycles, label=label), pixels=pixels
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        foreground: bool = True,
        priority: int = NORMAL_PRIORITY,
    ) -> SimThread:
        """Spawn the app's main thread; returns it."""
        self.thread = self.system.spawn(
            self.name, self.main(), priority=priority, foreground=foreground
        )
        return self.thread

    def main(self) -> Iterator[Syscall]:
        """The message pump."""
        # When the subclass keeps the stock dispatch() and no
        # observability is attached, route straight to
        # _dispatch_message — one delegating generator per message is
        # pure overhead on the hot pump path.
        plain_dispatch = type(self).dispatch is InteractiveApp.dispatch
        yield from self.on_start()
        while not self._quit:
            if self.has_background_work():
                message = yield PeekMessage(remove=True)
                if message is None:
                    yield from self.run_background_step()
                    continue
            else:
                message = yield GetMessage()
            if plain_dispatch and self.system.obs is None:
                yield from self._dispatch_message(message)
            else:
                yield from self.dispatch(message)

    def quit(self) -> None:
        """Ask the pump to exit after the current message."""
        self._quit = True

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def dispatch(self, message: Message) -> Iterator[Syscall]:
        """Route one message to its handler, tracing the dispatch as an
        app-event span when observability is attached."""
        obs = self.system.obs
        if obs is None:
            yield from self._dispatch_message(message)
            return
        obs.app_event_begin(self.thread, message)
        try:
            yield from self._dispatch_message(message)
        finally:
            obs.app_event_end(self.thread, message)

    def _dispatch_message(self, message: Message) -> Iterator[Syscall]:
        kind = message.kind
        if kind == WM.QUIT:
            self._quit = True
            return
        if kind == WM.QUEUESYNC:
            # MS Test's synchronization message (Section 5.4).
            yield Compute(self.personality.queuesync_work)
            yield from self.on_queuesync()
            return
        if kind == WM.CHAR:
            yield from self.on_char(message.payload)
        elif kind == WM.KEYDOWN:
            yield from self.on_key(message.payload)
        elif kind == WM.KEYUP:
            yield from self.on_keyup(message.payload)
        elif kind == WM.LBUTTONDOWN:
            yield from self.on_mouse_down(message.payload)
        elif kind == WM.LBUTTONUP:
            yield from self.on_mouse_up(message.payload)
        elif kind == WM.MOUSEMOVE:
            yield from self.on_mouse_move(message.payload)
        elif kind == WM.TIMER:
            yield from self.on_timer(message.payload)
        elif kind == WM.COMMAND:
            yield from self.on_command(message.payload)
        elif kind == WM.SOCKET:
            yield from self.on_socket(message.payload)
        else:
            yield from self.on_other(message)
        if message.from_input:
            self.events_handled += 1

    # ------------------------------------------------------------------
    # Default handlers (DefWindowProc-equivalents; subclasses override)
    # ------------------------------------------------------------------
    def on_start(self) -> Iterator[Syscall]:
        return
        yield  # pragma: no cover

    def on_char(self, char: str) -> Iterator[Syscall]:
        yield self.user_compute(self.DEFAULT_CHAR_BASE, label="def-char")

    def on_key(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(self.DEFAULT_KEYDOWN_BASE, label="def-keydown")

    def on_keyup(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(self.DEFAULT_KEYUP_BASE, label="def-keyup")

    def on_mouse_down(self, position) -> Iterator[Syscall]:
        yield self.user_compute(self.DEFAULT_MOUSEDOWN_BASE, label="def-mousedown")

    def on_mouse_up(self, position) -> Iterator[Syscall]:
        yield self.user_compute(self.DEFAULT_MOUSEUP_BASE, label="def-mouseup")

    def on_mouse_move(self, position) -> Iterator[Syscall]:
        yield self.user_compute(self.DEFAULT_MOUSEMOVE_BASE, label="def-mousemove")

    def on_timer(self, timer_id: int) -> Iterator[Syscall]:
        yield self.user_compute(5_000, label="def-timer")

    def on_command(self, command) -> Iterator[Syscall]:
        yield self.user_compute(20_000, label="def-command")

    def on_socket(self, packet) -> Iterator[Syscall]:
        yield self.app_compute(10_000, label="def-socket")

    def on_queuesync(self) -> Iterator[Syscall]:
        return
        yield  # pragma: no cover

    def on_other(self, message: Message) -> Iterator[Syscall]:
        yield self.user_compute(5_000, label="def-other")

    # ------------------------------------------------------------------
    # Background-work protocol (Word-style asynchrony)
    # ------------------------------------------------------------------
    def has_background_work(self) -> bool:
        return False

    def run_background_step(self) -> Iterator[Syscall]:
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Small conveniences
    # ------------------------------------------------------------------
    def set_timer(self, timer_id: int, period_ns: int) -> SetTimer:
        return SetTimer(timer_id=timer_id, period_ns=period_ns)

    def kill_timer(self, timer_id: int) -> KillTimer:
        return KillTimer(timer_id=timer_id)

    def flush_gdi(self) -> GdiFlush:
        return GdiFlush()
