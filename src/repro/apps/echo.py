"""The echo microbenchmark application of Figure 1.

"A program that waits for input from the user and when the input is
received, performs some computation, echoes the character to the
screen, and then waits for the next input."  (Section 2.3.)

The app also performs the paper's *traditional* measurement on itself:
it reads the cycle counter right after GetMessage returns the character
(the getchar() analogue) and again after the echo, recording the
timestamp-measured latency.  Comparing those numbers with the idle-loop
measurement reproduces the 2.34 ms discrepancy argument: the timestamps
miss the interrupt handling, input dispatching and rescheduling that
precede the application-level receive.
"""

from __future__ import annotations

from typing import Iterator, List

from ..sim.timebase import cycles_to_ns
from ..winsys.syscalls import ReadCycleCounter, Syscall
from .base import InteractiveApp

__all__ = ["EchoApp"]


class EchoApp(InteractiveApp):
    """Wait for a character; compute; echo it; wait again."""

    name = "echo"
    #: The "some computation" per character (OS-independent).
    COMPUTE_BASE = 712_000
    #: Drawing the echoed glyph.
    ECHO_DRAW_BASE = 28_000
    #: Key-down translation ahead of the WM_CHAR (USER path).
    KEYDOWN_BASE = 130_000
    KEYUP_BASE = 45_000

    def __init__(self, system) -> None:
        super().__init__(system)
        #: Timestamp-measured latencies, in nanoseconds (one per char).
        self.timestamp_latencies_ns: List[int] = []
        self.chars_echoed = 0

    def on_key(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(self.KEYDOWN_BASE, label="echo-keydown")

    def on_keyup(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(self.KEYUP_BASE, label="echo-keyup")

    def on_char(self, char: str) -> Iterator[Syscall]:
        start_cycles = yield ReadCycleCounter()
        yield self.app_compute(self.COMPUTE_BASE, label="echo-compute")
        yield self.draw(self.ECHO_DRAW_BASE, pixels=12 * 16, label="echo-glyph")
        yield self.flush_gdi()
        end_cycles = yield ReadCycleCounter()
        self.timestamp_latencies_ns.append(
            cycles_to_ns(end_cycles - start_cycles, self.personality_hz())
        )
        self.chars_echoed += 1

    def personality_hz(self) -> int:
        return self.system.machine.spec.cpu_hz
