"""Microsoft Word model.

Section 5.4's findings drive this model:

* Word does substantial *foreground* work per keystroke (variable-width
  layout, formatting) — the ~32 ms typical hand-typed latency on
  NT 3.51;
* it "responds to input events and handles background computations
  asynchronously using an internal system of coroutines" — modelled as
  a queue of background units (interactive spell-check, repagination)
  drained either lazily via a timer (realistic behaviour) or
  synchronously when MS Test's WM_QUEUESYNC arrives — the paper's
  hypothesis for why Test-driven events measured 80-100 ms while
  hand-typed events measured ~32 ms;
* carriage returns force a paragraph relayout *and* drain whatever
  background work is pending, which is why hand-typed CRs exceeded
  200 ms while Test-driven runs (whose queues stay drained) never
  passed 140 ms;
* on Windows 95 the system "does not become idle immediately after
  Word finishes handling an event": with
  ``personality.app_idle_detection_reliable == False`` the background
  engine busy-polls PeekMessage for seconds after every event,
  destroying idle-loop measurement exactly as the paper reports.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from ..sim.timebase import ns_from_ms, ns_from_sec
from ..winsys.syscalls import AsyncWrite, Syscall
from .base import InteractiveApp

__all__ = ["WordApp"]

_BG_TIMER_ID = 7
_AUTOSAVE_TIMER_ID = 8


class WordApp(InteractiveApp):
    """Word processor with asynchronous background computation."""

    name = "word"
    #: Foreground layout+echo per printable character (GUI path).
    CHAR_FG_BASE = 1_830_000
    #: One background unit (spell-check / repagination slice).
    BG_UNIT_BASE = 760_000
    #: Extra foreground work when a line fills (justification).
    LINE_JUSTIFY_BASE = 800_000
    #: Carriage return: paragraph relayout (GUI path).
    PARAGRAPH_BASE = 5_500_000
    #: Caret movement (arrows).
    CARET_BASE = 250_000
    #: Per-keystroke glyph drawing (batched GDI).
    GLYPH_DRAW_BASE = 220_000
    #: Background units drained per timer firing (lazy mode).
    BG_CHUNK_UNITS = 3
    #: Lazy-drain timer period.
    BG_TIMER_PERIOD_NS = ns_from_ms(100)
    #: The background coroutine defers to recent foreground activity:
    #: a timer firing this soon after an input event does no work.
    BG_POLITENESS_NS = ns_from_ms(60)
    #: A carriage return repaginates its own paragraph: it drains at
    #: most this many pending units synchronously (the rest stay lazy).
    CR_DRAIN_LIMIT = 16
    #: Characters per visual line before justification triggers.
    LINE_WIDTH = 65

    #: Autosave: serialize the document and write it *asynchronously*
    #: every period (Figure 2's canonical background I/O).  Off by
    #: default to keep the paper's Section 5.4 workload exact.
    AUTOSAVE_WRITE_BYTES = 32 * 1024
    AUTOSAVE_PREP_BASE = 400_000

    def __init__(self, system, autosave_period_s: Optional[float] = None) -> None:
        super().__init__(system)
        self._rng = system.machine.rngs.stream("app:word")
        self._pending: Deque[int] = deque()  # queued background units (cycles)
        self._last_input_ns = 0
        self._timer_active = False
        self.autosave_period_s = autosave_period_s
        self.autosaves = 0
        self._doc_file = system.filesystem.ensure("word-document.doc", 256 * 1024)
        self._chars_in_line = 0
        self._chars_in_word = 0
        #: Remaining busy-poll budget after an event (Win95 quirk), ns.
        self._spin_budget_ns = 0
        # Diagnostics.
        self.chars_typed = 0
        self.bg_units_run = 0
        self.paragraphs = 0

    # ------------------------------------------------------------------
    # Foreground handling
    # ------------------------------------------------------------------
    def _fg_noise(self) -> float:
        """Layout cost varies with line content (±12%)."""
        return self._rng.uniform(0.88, 1.12)

    def _queue_units(self, count: int) -> None:
        for _ in range(count):
            self._pending.append(self.BG_UNIT_BASE)

    def _after_event(self) -> Iterator[Syscall]:
        """Arrange background draining after a foreground event."""
        self._last_input_ns = self.system.now
        if not self.personality.app_idle_detection_reliable:
            # Win95: the app never reliably notices idleness; it will
            # busy-poll (see run_background_step) for a while.
            self._spin_budget_ns = ns_from_sec(self._rng.uniform(2.0, 3.5))
            return
        if self._pending and not self._timer_active:
            yield self.set_timer(_BG_TIMER_ID, self.BG_TIMER_PERIOD_NS)
            self._timer_active = True

    def on_char(self, char: str) -> Iterator[Syscall]:
        self.chars_typed += 1
        if char == "\n":
            yield from self._carriage_return()
            return
        fg = round(self.CHAR_FG_BASE * self._fg_noise())
        yield self.gui_compute(fg, label="word-layout")
        yield self.draw(self.GLYPH_DRAW_BASE, pixels=14 * 18, label="word-glyph")
        self._queue_units(self._rng.randint(5, 8))
        self._chars_in_line += 1
        if char == " ":
            # Word boundary: interactive spell check of the word.
            self._queue_units(self._rng.randint(1, 2))
            self._chars_in_word = 0
        else:
            self._chars_in_word += 1
        if self._chars_in_line >= self.LINE_WIDTH:
            # Line filled: justification relayout (line justification
            # "was enabled", Section 5.4).
            yield self.gui_compute(
                round(self.LINE_JUSTIFY_BASE * self._fg_noise()),
                label="word-justify",
            )
            self._queue_units(2)
            self._chars_in_line = 0
        yield from self._after_event()

    def _carriage_return(self) -> Iterator[Syscall]:
        self.paragraphs += 1
        yield self.gui_compute(
            round(self.PARAGRAPH_BASE * self._fg_noise()), label="word-paragraph"
        )
        # Paragraph end forces the paragraph's pending background work
        # synchronously (repagination + spell check); older backlog
        # stays lazy.  Under MS Test the queue is always near-empty
        # (WM_QUEUESYNC drained it each keystroke), so Test CRs stay
        # under ~140 ms while hand-typed CRs exceed 200 ms — the
        # Section 5.4 discrepancy.
        yield from self._drain(self.CR_DRAIN_LIMIT)
        self._queue_units(self._rng.randint(2, 4))
        self._chars_in_line = 0
        yield from self._after_event()

    def on_key(self, key: str) -> Iterator[Syscall]:
        if key in ("Left", "Right", "Up", "Down"):
            yield self.gui_compute(self.CARET_BASE, label="word-caret")
        elif key == "Backspace":
            fg = round(self.CHAR_FG_BASE * 0.6 * self._fg_noise())
            yield self.gui_compute(fg, label="word-backspace")
            yield self.draw(self.GLYPH_DRAW_BASE, pixels=200 * 18, label="word-bs")
            self._queue_units(self._rng.randint(2, 4))
            self._chars_in_line = max(0, self._chars_in_line - 1)
            yield from self._after_event()
        elif key == "Enter":
            yield from self._carriage_return()
        elif len(key) == 1:
            yield self.app_compute(6_000, label="word-translate")
        else:
            yield from super().on_key(key)

    def on_keyup(self, key: str) -> Iterator[Syscall]:
        yield self.user_compute(15_000, label="word-keyup")

    # ------------------------------------------------------------------
    # WM_QUEUESYNC: the MS Test artifact (Section 5.4 hypothesis)
    # ------------------------------------------------------------------
    def on_queuesync(self) -> Iterator[Syscall]:
        yield from self._drain(None)

    def _drain(self, limit: Optional[int]) -> Iterator[Syscall]:
        drained = 0
        while self._pending and (limit is None or drained < limit):
            cycles = self._pending.popleft()
            self.bg_units_run += 1
            drained += 1
            yield self.app_compute(cycles, label="word-bg-sync")

    # ------------------------------------------------------------------
    # Lazy background draining (timer on NT, busy-poll on Win95)
    # ------------------------------------------------------------------
    def on_start(self) -> Iterator[Syscall]:
        if self.autosave_period_s is not None:
            yield self.set_timer(
                _AUTOSAVE_TIMER_ID, ns_from_sec(self.autosave_period_s)
            )

    def on_timer(self, timer_id: int) -> Iterator[Syscall]:
        if timer_id == _AUTOSAVE_TIMER_ID:
            yield from self._autosave()
            return
        if timer_id != _BG_TIMER_ID:
            yield from super().on_timer(timer_id)
            return
        if self.system.now - self._last_input_ns < self.BG_POLITENESS_NS:
            return  # defer to foreground responsiveness; fire again later
        for _ in range(self.BG_CHUNK_UNITS):
            if not self._pending:
                break
            cycles = self._pending.popleft()
            self.bg_units_run += 1
            yield self.app_compute(cycles, label="word-bg-timer")
        if not self._pending and self._timer_active:
            yield self.kill_timer(_BG_TIMER_ID)
            self._timer_active = False

    def _autosave(self) -> Iterator[Syscall]:
        """Serialize briefly, then hand the write to the background."""
        self.autosaves += 1
        yield self.app_compute(self.AUTOSAVE_PREP_BASE, label="word-autosave-prep")
        offset = (self.autosaves * self.AUTOSAVE_WRITE_BYTES) % (
            self._doc_file.size_bytes - self.AUTOSAVE_WRITE_BYTES
        )
        yield AsyncWrite(self._doc_file, offset, self.AUTOSAVE_WRITE_BYTES)

    def has_background_work(self) -> bool:
        if self.personality.app_idle_detection_reliable:
            return False  # timer-based draining; the pump blocks normally
        return bool(self._pending) or self._spin_budget_ns > 0

    def run_background_step(self) -> Iterator[Syscall]:
        """Win95 mode: one busy-poll iteration."""
        if self._pending:
            cycles = self._pending.popleft()
            self.bg_units_run += 1
            yield self.app_compute(cycles, label="word-bg-poll")
            return
        poll_cycles = 40_000
        self._spin_budget_ns -= self.system.machine.cpu.duration_ns(
            self.personality.app_work(poll_cycles)
        ) + 50_000  # PeekMessage overhead approximation
        yield self.app_compute(poll_cycles, label="word-idle-poll")
