"""Interrupt controller and interrupt sources.

Devices raise interrupts; the controller charges the ISR cost against
the CPU (stealing time from whatever is executing — see
:meth:`repro.sim.cpu.CPU.steal`) and invokes the registered handler's
post-action when the ISR retires.  The periodic clock interrupt is the
source of the 10 ms activity bursts visible in the paper's idle-system
profiles (Figure 3) and of the 10 ms alignment of animation steps
(Figure 4a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .cpu import CPU
from .engine import Simulator
from .timebase import ns_from_ms
from .work import HwEvent, Work

__all__ = ["InterruptVector", "InterruptController", "PeriodicClock"]


@dataclass(frozen=True)
class InterruptVector:
    """A named interrupt line with its service-routine cost."""

    name: str
    isr_work: Work


class InterruptController:
    """Routes device interrupts to ISR costs and handler post-actions."""

    def __init__(self, sim: Simulator, cpu: CPU) -> None:
        self.sim = sim
        self.cpu = cpu
        self._vectors: Dict[str, InterruptVector] = {}
        self._handlers: Dict[str, Callable[[object], None]] = {}
        #: Engine handler id per vector (``schedule_call`` convention:
        #: the handler receives the interrupt payload).  Deliveries then
        #: cost one heap tuple instead of a closure plus event handle.
        self._handler_hids: Dict[str, int] = {}
        #: Per-vector delivery counts, for diagnostics and tests.
        self.delivered: Dict[str, int] = {}
        #: Per-vector spurious delivery counts (ISR cost, no handler).
        self.spurious: Dict[str, int] = {}
        #: Observability callback ``(vector, duration_ns, spurious)`` or
        #: None (the default, zero-cost path).
        self.obs: Optional[Callable[[str, int, bool], None]] = None
        #: Envelope callback ``(vector, payload, duration_ns)`` fired at
        #: inject time for *genuine* deliveries only — a spurious
        #: interrupt carries no input event to envelope.
        self.obs_deliver: Optional[Callable[[str, object, int], None]] = None

    def register(
        self,
        name: str,
        isr_work: Work,
        handler: Optional[Callable[[object], None]] = None,
    ) -> None:
        """Install a vector: ISR cost plus optional post-action handler.

        The handler runs *after* the ISR's stolen time has elapsed, i.e.
        at the moment the hardware would return from the service routine.
        """
        self._vectors[name] = InterruptVector(name, isr_work)
        if handler is not None:
            self._handlers[name] = handler
            self._handler_hids[name] = self.sim.register_handler(handler)
        self.delivered.setdefault(name, 0)

    def set_handler(self, name: str, handler: Callable[[object], None]) -> None:
        """Replace the post-action handler for an existing vector."""
        if name not in self._vectors:
            raise KeyError(f"unknown interrupt vector {name!r}")
        self._handlers[name] = handler
        self._handler_hids[name] = self.sim.register_handler(handler)

    def set_isr_work(self, name: str, isr_work: Work) -> None:
        """Re-cost a vector (used by OS personalities at boot)."""
        if name not in self._vectors:
            raise KeyError(f"unknown interrupt vector {name!r}")
        self._vectors[name] = InterruptVector(name, isr_work)

    def raise_interrupt(self, name: str, payload: object = None) -> None:
        """Deliver an interrupt on vector ``name`` right now."""
        vector = self._vectors.get(name)
        if vector is None:
            raise KeyError(f"unknown interrupt vector {name!r}")
        self.cpu.perf.charge(HwEvent.INTERRUPTS, 1)
        duration = self.cpu.steal(vector.isr_work)
        self.delivered[name] = self.delivered.get(name, 0) + 1
        if self.obs is not None:
            self.obs(name, duration, False)
        if self.obs_deliver is not None:
            self.obs_deliver(name, payload, duration)
        hid = self._handler_hids.get(name)
        if hid is not None:
            # The handler runs at ISR retirement; the kind entry carries
            # the payload so no closure or handle is allocated.
            self.sim.schedule_call(duration, hid, payload)

    def raise_spurious(self, name: str) -> int:
        """Deliver a *spurious* interrupt on vector ``name``.

        The full ISR cost is charged against the CPU — stealing time
        from whatever runs, exactly like a genuine delivery — but no
        post-action handler fires, because the device has nothing to
        report.  This is how an interrupt storm degrades a system: pure
        service overhead with no useful work behind it.  Returns the
        ISR duration in nanoseconds.
        """
        vector = self._vectors.get(name)
        if vector is None:
            raise KeyError(f"unknown interrupt vector {name!r}")
        self.cpu.perf.charge(HwEvent.INTERRUPTS, 1)
        duration = self.cpu.steal(vector.isr_work)
        self.spurious[name] = self.spurious.get(name, 0) + 1
        if self.obs is not None:
            self.obs(name, duration, True)
        return duration


class PeriodicClock:
    """The 10 ms hardware timer interrupt (Section 2.5).

    Fires on a fixed period from simulated time zero so that animation
    steps and scheduler ticks land on the same 10 ms boundaries the
    paper observed.
    """

    VECTOR = "clock"

    def __init__(
        self,
        sim: Simulator,
        controller: InterruptController,
        period_ns: int = ns_from_ms(10),
        isr_work: Optional[Work] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.period_ns = period_ns
        self.ticks = 0
        self._running = False
        controller.register(
            self.VECTOR,
            isr_work if isr_work is not None else Work(400, label="clock-isr"),
        )
        #: Engine handler id for the tick re-arm (no-argument kind).
        self._tick_hid = sim.register_handler(self._tick)

    def start(self) -> None:
        """Begin ticking; the first tick lands on the next period boundary."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        next_tick = ((self.sim.now // self.period_ns) + 1) * self.period_ns
        self.sim.schedule_kind_at(next_tick, self._tick_hid)

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self.controller.raise_interrupt(self.VECTOR, payload=self.ticks)
        self._schedule_next()
