"""Display device.

The paper notes (Section 2.3) that graphics output devices refresh every
12-17 ms and explicitly declines to fold refresh latency into its
results.  We model the device anyway — paint operations are counted and
the next-refresh boundary is queryable — so the refresh effect can be
studied as an extension, while the reproduction experiments follow the
paper and ignore it.
"""

from __future__ import annotations

from ..engine import Simulator
from ..timebase import ns_from_us

__all__ = ["Display"]


class Display:
    """Raster display with a fixed refresh period."""

    def __init__(
        self,
        sim: Simulator,
        refresh_period_ns: int = ns_from_us(13_900),  # ~72 Hz
        width: int = 1024,
        height: int = 768,
    ) -> None:
        self.sim = sim
        self.refresh_period_ns = refresh_period_ns
        self.width = width
        self.height = height
        self.paint_ops = 0
        self.pixels_painted = 0

    def paint(self, pixels: int) -> None:
        """Record a paint of ``pixels`` pixels (bookkeeping only)."""
        if pixels < 0:
            raise ValueError("cannot paint a negative pixel count")
        self.paint_ops += 1
        self.pixels_painted += pixels

    def next_refresh_ns(self) -> int:
        """Absolute time of the next refresh boundary."""
        period = self.refresh_period_ns
        return ((self.sim.now // period) + 1) * period

    def visible_after_ns(self) -> int:
        """Delay until a paint issued now becomes visible (extension hook)."""
        return self.next_refresh_ns() - self.sim.now
