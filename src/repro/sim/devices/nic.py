"""Network interface device.

The paper's definition of event-handling latency covers "an
asynchronous stream of independent and diverse events that result from
interactive user input **or network packet arrival**" (Section 1.1).
The NIC delivers that second event class: each arriving packet raises
the ``nic`` interrupt, and the OS input pipeline turns it into a
window message (the WSAAsyncSelect style of the era, where winsock
notified applications through their message queues).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..engine import Simulator

__all__ = ["Packet", "Nic"]


@dataclass(frozen=True)
class Packet:
    """One received datagram."""

    payload: object
    size_bytes: int
    arrived_ns: int


class Nic:
    """Receive-side network interface: one interrupt per packet."""

    VECTOR = "nic"

    def __init__(
        self,
        sim: Simulator,
        raise_interrupt: Optional[Callable[[str, object], None]] = None,
    ) -> None:
        self.sim = sim
        self._raise_interrupt = raise_interrupt
        self.packets_received = 0
        self.bytes_received = 0

    def set_interrupt_sink(self, raise_interrupt: Callable[[str, object], None]) -> None:
        self._raise_interrupt = raise_interrupt

    def deliver(self, payload: object, size_bytes: int = 256) -> Packet:
        """A packet arrives from the wire right now."""
        if self._raise_interrupt is None:
            raise RuntimeError("NIC not connected to an interrupt controller")
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        packet = Packet(
            payload=payload, size_bytes=size_bytes, arrived_ns=self.sim.now
        )
        self.packets_received += 1
        self.bytes_received += size_bytes
        self._raise_interrupt(self.VECTOR, packet)
        return packet
