"""Disk model.

Parameterized on the testbed's dedicated 1 GB Fujitsu M1606SAU SCSI-II
drive (Section 2.1).  The model is first-order — seek proportional to
distance, stochastic rotational latency from a named RNG stream, fixed
transfer rate — which is enough for what the paper needs from the disk:
multi-millisecond long-latency events (Table 1) and a buffer-cache
warming effect across repeated OLE edit sessions.

The disk services one request at a time from a FIFO queue and raises the
``disk`` interrupt vector when a request completes; the I/O manager
(:mod:`repro.winsys.iomgr`) turns that into thread wakeups.

Service-time *modifiers* are the drive's degradation hook: an installed
modifier sees each request as service begins and may add latency (a
firmware hiccup, a thermal-recalibration stall, a bus retry).  The
fault-injection layer (:mod:`repro.faults`) uses this to produce seeded
latency spikes without touching the queueing or completion logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional
from collections import deque

from ..engine import Simulator
from ..rng import RngStreams
from ..timebase import ns_from_ms, ns_from_us

__all__ = ["DiskGeometry", "DiskRequest", "Disk"]


@dataclass(frozen=True)
class DiskGeometry:
    """Static performance parameters of a drive."""

    name: str = "Fujitsu M1606SAU"
    block_size: int = 4096
    total_blocks: int = 262_144  # 1 GB of 4 KB blocks
    min_seek_ns: int = ns_from_ms(2)
    max_seek_ns: int = ns_from_ms(18)
    rotation_ns: int = ns_from_ms(11)  # ~5400 rpm
    transfer_ns_per_block: int = ns_from_us(800)  # ~5 MB/s sustained
    controller_overhead_ns: int = ns_from_us(500)


@dataclass
class DiskRequest:
    """One block-range transfer."""

    block: int
    count: int
    is_write: bool = False
    tag: object = None
    submitted_ns: int = 0
    completed_ns: int = 0
    service_ns: int = 0
    on_complete: Optional[Callable[["DiskRequest"], None]] = field(
        default=None, repr=False
    )


class Disk:
    """FIFO-queue disk with seek + rotation + transfer service times."""

    VECTOR = "disk"

    def __init__(
        self,
        sim: Simulator,
        rngs: RngStreams,
        geometry: Optional[DiskGeometry] = None,
        raise_interrupt: Optional[Callable[[str, object], None]] = None,
    ) -> None:
        self.sim = sim
        self.geometry = geometry or DiskGeometry()
        self._rng = rngs.stream(f"disk:{self.geometry.name}")
        self._raise_interrupt = raise_interrupt
        self._queue: Deque[DiskRequest] = deque()
        self._active: Optional[DiskRequest] = None
        self._head_block = 0
        #: Installed service-time modifiers, applied in order as each
        #: request starts service (see module docstring).
        self._service_modifiers: List[Callable[[DiskRequest, int], int]] = []
        #: Totals for diagnostics.
        self.requests_completed = 0
        self.blocks_transferred = 0
        self.busy_ns = 0
        #: Extra nanoseconds added by service-time modifiers (diagnostics).
        self.injected_service_ns = 0

    def set_interrupt_sink(self, raise_interrupt: Callable[[str, object], None]) -> None:
        """Late-bind the interrupt controller (set when the machine boots)."""
        self._raise_interrupt = raise_interrupt

    def add_service_time_modifier(
        self, modifier: Callable[[DiskRequest, int], int]
    ) -> None:
        """Install a modifier called as ``modifier(request, base_ns)``.

        The return value (clamped to >= 0) is *added* to the request's
        service time.  Modifiers stack; each sees the unmodified base
        service time.
        """
        self._service_modifiers.append(modifier)

    def remove_service_time_modifier(
        self, modifier: Callable[[DiskRequest, int], int]
    ) -> None:
        """Uninstall a previously added modifier (missing ones are ignored)."""
        if modifier in self._service_modifiers:
            self._service_modifiers.remove(modifier)

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._active else 0)

    @property
    def busy(self) -> bool:
        return self._active is not None

    def submit(self, request: DiskRequest) -> None:
        """Queue a request; service begins immediately if the disk is idle."""
        if request.block < 0 or request.block + request.count > self.geometry.total_blocks:
            raise ValueError(
                f"request [{request.block}, {request.block + request.count}) "
                f"outside disk of {self.geometry.total_blocks} blocks"
            )
        if request.count <= 0:
            raise ValueError(f"request count must be positive, got {request.count}")
        request.submitted_ns = self.sim.now
        self._queue.append(request)
        if self._active is None:
            self._start_next()

    def service_time_ns(self, request: DiskRequest) -> int:
        """Compute the service time for ``request`` from the head position."""
        geometry = self.geometry
        distance = abs(request.block - self._head_block)
        if distance == 0:
            seek = 0
        else:
            span = geometry.max_seek_ns - geometry.min_seek_ns
            fraction = distance / geometry.total_blocks
            seek = geometry.min_seek_ns + round(span * fraction)
        rotation = self._rng.randrange(geometry.rotation_ns)
        transfer = geometry.transfer_ns_per_block * request.count
        return geometry.controller_overhead_ns + seek + rotation + transfer

    def _start_next(self) -> None:
        if not self._queue:
            return
        request = self._queue.popleft()
        base_ns = self.service_time_ns(request)
        extra_ns = 0
        for modifier in self._service_modifiers:
            extra_ns += max(0, int(modifier(request, base_ns)))
        self.injected_service_ns += extra_ns
        request.service_ns = base_ns + extra_ns
        self._active = request
        self.sim.schedule(
            request.service_ns, self._complete_active, label="disk-complete"
        )

    def _complete_active(self) -> None:
        request = self._active
        assert request is not None
        self._active = None
        request.completed_ns = self.sim.now
        self._head_block = request.block + request.count
        self.requests_completed += 1
        self.blocks_transferred += request.count
        self.busy_ns += request.service_ns
        if self._raise_interrupt is not None:
            self._raise_interrupt(self.VECTOR, request)
        elif request.on_complete is not None:
            request.on_complete(request)
        self._start_next()
