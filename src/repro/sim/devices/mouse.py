"""Mouse device.

Button edges matter to the reproduction because of the Windows 95
behaviour the paper found (Figure 6): the system busy-waits between
"mouse down" and "mouse up", so measured click latency equals the
duration of the user's press rather than any processing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..engine import Simulator

__all__ = ["MouseEvent", "Mouse"]


@dataclass(frozen=True)
class MouseEvent:
    """A button edge or movement sample at a screen position."""

    kind: str  # 'down' | 'up' | 'move'
    button: str
    position: Tuple[int, int]
    time_ns: int


class Mouse:
    """Raises one interrupt per button edge / movement sample."""

    VECTOR = "mouse"

    def __init__(
        self,
        sim: Simulator,
        raise_interrupt: Optional[Callable[[str, object], None]] = None,
    ) -> None:
        self.sim = sim
        self._raise_interrupt = raise_interrupt
        self.events_raised = 0
        self.position: Tuple[int, int] = (0, 0)

    def set_interrupt_sink(self, raise_interrupt: Callable[[str, object], None]) -> None:
        self._raise_interrupt = raise_interrupt

    def _raise(self, kind: str, button: str) -> MouseEvent:
        if self._raise_interrupt is None:
            raise RuntimeError("mouse not connected to an interrupt controller")
        event = MouseEvent(
            kind=kind, button=button, position=self.position, time_ns=self.sim.now
        )
        self.events_raised += 1
        self._raise_interrupt(self.VECTOR, event)
        return event

    def move(self, x: int, y: int) -> MouseEvent:
        self.position = (x, y)
        return self._raise("move", "none")

    def button_down(self, button: str = "left") -> MouseEvent:
        return self._raise("down", button)

    def button_up(self, button: str = "left") -> MouseEvent:
        return self._raise("up", button)

    def click(self, button: str = "left", hold_ns: int = 0) -> None:
        """Press now, release after ``hold_ns``.

        A non-zero hold models a human press (~80-120 ms); it is what
        exposes the Windows 95 busy-wait in the Figure 6 experiment.
        """
        self.button_down(button)
        if hold_ns > 0:
            self.sim.schedule(
                hold_ns, lambda: self.button_up(button), label="mouse-up"
            )
        else:
            self.button_up(button)
