"""Keyboard device.

An input driver (Microsoft-Test analog or the typist model) calls
:meth:`Keyboard.key` at scripted times; the device raises the
``keyboard`` interrupt, and the OS input pipeline turns the scancode
into a WM_CHAR/WM_KEYDOWN message on the focused thread's queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..engine import Simulator

__all__ = ["KeyEvent", "Keyboard"]


@dataclass(frozen=True)
class KeyEvent:
    """A scancode edge: key name plus press/release."""

    key: str
    down: bool
    time_ns: int


class Keyboard:
    """Raises one interrupt per key edge."""

    VECTOR = "keyboard"

    def __init__(
        self,
        sim: Simulator,
        raise_interrupt: Optional[Callable[[str, object], None]] = None,
    ) -> None:
        self.sim = sim
        self._raise_interrupt = raise_interrupt
        self.events_raised = 0

    def set_interrupt_sink(self, raise_interrupt: Callable[[str, object], None]) -> None:
        self._raise_interrupt = raise_interrupt

    def key(self, key: str, down: bool = True) -> KeyEvent:
        """Deliver a key edge right now."""
        if self._raise_interrupt is None:
            raise RuntimeError("keyboard not connected to an interrupt controller")
        event = KeyEvent(key=key, down=down, time_ns=self.sim.now)
        self.events_raised += 1
        self._raise_interrupt(self.VECTOR, event)
        return event

    def keystroke(self, key: str, hold_ns: int = 0) -> None:
        """Press now and release after ``hold_ns`` (0 = immediate release)."""
        self.key(key, down=True)
        if hold_ns > 0:
            self.sim.schedule(
                hold_ns, lambda: self.key(key, down=False), label="key-up"
            )
        else:
            self.key(key, down=False)
