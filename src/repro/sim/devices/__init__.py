"""Simulated hardware devices: disk, keyboard, mouse, display."""

from .disk import Disk, DiskGeometry, DiskRequest
from .display import Display
from .keyboard import KeyEvent, Keyboard
from .mouse import Mouse, MouseEvent
from .nic import Nic, Packet

__all__ = [
    "Disk",
    "DiskGeometry",
    "DiskRequest",
    "Display",
    "Keyboard",
    "KeyEvent",
    "Mouse",
    "MouseEvent",
    "Nic",
    "Packet",
]
