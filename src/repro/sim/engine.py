"""Discrete-event simulation engine.

The engine is a deterministic event calendar: callbacks scheduled at
integer-nanosecond timestamps, executed in (time, sequence) order.  The
sequence number breaks ties in scheduling order, which — together with
the integer time base and the seeded RNG streams — makes every simulation
bit-reproducible.

Events are cancellable: :meth:`Simulator.schedule` returns a
:class:`ScheduledEvent` handle whose :meth:`~ScheduledEvent.cancel`
removes it logically (the heap entry is left in place and skipped on
pop, the standard lazy-deletion technique).  Cancellation is what lets
the CPU model preempt an in-flight work segment and re-schedule its
completion.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["ScheduledEvent", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class ScheduledEvent:
    """Handle for a pending callback on the event calendar."""

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], label: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Logically remove the event; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent {self.label!r} @{self.time}ns {state}>"


class Simulator:
    """Deterministic event-calendar simulator.

    The simulator only understands time and callbacks; machines, kernels
    and applications are layered on top.  A single simulator instance is
    shared by every component of one simulated machine.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[ScheduledEvent] = []
        self._running = False
        self._stop_requested = False
        #: Number of callbacks executed; useful for engine diagnostics.
        self.events_executed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay_ns`` from now.

        ``delay_ns`` may be zero (runs after already-pending events at the
        same timestamp) but never negative.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        return self.schedule_at(self._now + delay_ns, callback, label)

    def schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; now is {self._now} ns"
            )
        event = ScheduledEvent(time_ns, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def stop(self) -> None:
        """Request that the current :meth:`run` call return promptly."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the calendar is empty."""
        self._discard_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def _discard_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        self._discard_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self.events_executed += 1
        event.callback()
        return True

    def run(
        self,
        until_ns: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the calendar.

        Stops when any of the following holds:

        * the calendar is exhausted,
        * the next event lies beyond ``until_ns`` (the clock is then
          advanced exactly to ``until_ns``),
        * the predicate ``until`` returns True after an event,
        * ``max_events`` callbacks have executed, or
        * :meth:`stop` was called from inside a callback.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if until is not None and until():
                    break
                if max_events is not None and executed >= max_events:
                    break
                self._discard_cancelled()
                if not self._queue:
                    break
                next_time = self._queue[0].time
                if until_ns is not None and next_time > until_ns:
                    self._now = until_ns
                    break
                if not self.step():
                    break
                executed += 1
            if until_ns is not None and self._now < until_ns and not self._queue:
                # Nothing left to do before the horizon; advance the clock.
                self._now = until_ns
        finally:
            self._running = False
        return self._now

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events on the calendar."""
        return sum(1 for event in self._queue if not event.cancelled)
