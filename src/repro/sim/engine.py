"""Discrete-event simulation engine.

The engine is a deterministic event calendar: callbacks scheduled at
integer-nanosecond timestamps, executed in (time, sequence) order.  The
sequence number breaks ties in scheduling order, which — together with
the integer time base and the seeded RNG streams — makes every simulation
bit-reproducible.

Three calendar representations share one ``(time, seq)`` key space (see
``docs/performance.md`` for the measurements behind each):

* **Generic events** (:meth:`Simulator.schedule`) are stored as
  ``(time, seq, ScheduledEvent)`` tuples on a binary heap.  Tuple keys
  matter: heap sift compares run at C speed on the leading ints instead
  of calling a Python ``__lt__`` per comparison, and because ``seq`` is
  unique the third element is never compared at all.  The
  :class:`ScheduledEvent` payload is the cancellation handle.
* **Kind events** (:meth:`Simulator.schedule_kind` and friends) replace
  the per-event handle + label with a small-int *handler id* resolved
  through a precompiled handler table — ``(time, seq, hid)`` or
  ``(time, seq, hid, payload)`` tuples on the same heap.  The periodic
  clock re-arm, the kernel's zero-delay dispatch and ISR-return events
  use these; they are never cancelled individually, so they need no
  handle object.
* **The structure-of-arrays side calendar**
  (:meth:`Simulator.schedule_soa`) holds homogeneous periodic timer
  populations as parallel ``array('q')`` time/seq columns plus a
  handler-id list.  Scheduling appends three machine words; cancelling
  adds the entry's ``seq`` to a set.  No per-entry Python object exists
  at any point.  When the run loop finds k consecutive side-calendar
  entries of one kind that must execute before any other event source
  can interleave, it hands the whole run to the kind's registered
  *batch handler* in a single call (see :meth:`register_handler`).

In front of the heap sits a one-entry **next-event slot**: a pending
entry whose timestamp is strictly earlier than everything on the heap.
The dominant scheduling pattern — each event schedules its successor a
short delay ahead (chained work segments, zero-delay dispatch) — then
never touches the heap at all: the successor drops into the slot on
schedule and is lifted out on pop, replacing an O(log n) sift-up plus
sift-down with two pointer moves.  An entry that would violate the slot
invariant displaces the slot back onto the heap, so correctness never
depends on the pattern holding.

Events are cancellable: :meth:`Simulator.schedule` returns a
:class:`ScheduledEvent` handle whose :meth:`~ScheduledEvent.cancel`
removes it logically (the heap entry is left in place and skipped on
pop, the standard lazy-deletion technique).  Cancellation is what lets
the CPU model preempt an in-flight work segment and re-schedule its
completion.  When cancelled entries come to dominate the heap — every
clock tick that steals time from an in-flight segment leaves one behind
— the calendar compacts itself in place; since live events are totally
ordered by their unique ``(time, seq)`` key, rebuilding the heap cannot
change the pop order.  The side calendar compacts the same way when
cancelled timers dominate it.

The engine also carries the state the idle fast-forward path (see
:mod:`repro.winsys.kernel` and ``docs/performance.md``) needs to stay
bit-identical to ordinary execution: the active run horizon, and a
:meth:`Simulator.fast_forward` jump that advances the clock *and* the
sequence/executed counters exactly as executing the skipped events one
by one would have.
"""

from __future__ import annotations

import heapq
from array import array
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "ScheduledEvent",
    "Simulator",
    "SimulationError",
    "batch_default",
    "set_batch_default",
    "fast_forward_default",
    "set_fast_forward_default",
]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


#: Process-global default for the idle fast-forward optimisation.  Booted
#: kernels read it once; ``--no-fast-forward`` (and A/B tests) flip it.
#: The output is bit-identical either way — the flag exists so that the
#: equivalence is *checkable*, not because the results differ.
_fast_forward_default = True


def fast_forward_default() -> bool:
    """Whether newly booted kernels enable the idle fast-forward."""
    return _fast_forward_default


def set_fast_forward_default(enabled: bool) -> None:
    """Set the process-global fast-forward default (see ``--no-fast-forward``)."""
    global _fast_forward_default
    _fast_forward_default = bool(enabled)


#: Process-global default for batched side-calendar execution.  Like the
#: fast-forward default, the result is bit-identical either way (proven
#: by the differential tests); ``--no-batch`` exists to make the
#: equivalence checkable and is excluded from result-cache keys.
_batch_default = True


def batch_default() -> bool:
    """Whether newly created simulators execute side-calendar runs batched."""
    return _batch_default


def set_batch_default(enabled: bool) -> None:
    """Set the process-global batch-execution default (see ``--no-batch``)."""
    global _batch_default
    _batch_default = bool(enabled)


#: Compaction threshold: never compact tiny calendars (the rebuild would
#: cost more than the skipped pops it saves).
_COMPACT_MIN_QUEUE = 64

#: Handler id 0 is reserved for out-of-order side-calendar entries that
#: fell back to the heap (see ``schedule_soa``); its payload carries the
#: original ``(hid, time, seq)`` so the call convention is preserved.
_SOA_FALLBACK_HID = 0


class ScheduledEvent:
    """Handle for a pending callback on the event calendar."""

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        label: str,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Logically remove the event; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # Inlined _note_cancel: this runs once per preempt/steal,
                # hot enough in calendar churn that the extra frame shows.
                cancelled = sim._cancelled + 1
                sim._cancelled = cancelled
                n = len(sim._queue) + (sim._next is not None)
                if n >= _COMPACT_MIN_QUEUE and cancelled * 2 > n:
                    sim._compact()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent {self.label!r} @{self.time}ns {state}>"


class Simulator:
    """Deterministic event-calendar simulator.

    The simulator only understands time and callbacks; machines, kernels
    and applications are layered on top.  A single simulator instance is
    shared by every component of one simulated machine.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_queue",
        "_next",
        "_running",
        "_stop_requested",
        "_horizon",
        "_ff_allowed",
        "_cancelled",
        "_handler_fns",
        "_handler_batch",
        "_handler_window",
        "_soa_times",
        "_soa_seqs",
        "_soa_hids",
        "_soa_head",
        "_soa_n",
        "_kind_cancelled",
        "batch_enabled",
        "events_executed",
        "events_fast_forwarded",
        "events_batched",
        "batch_runs",
        "compactions",
        "calendar_high_water",
    )

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        #: Heap of (time, seq, payload[, arg]) tuples; payload is either
        #: a ScheduledEvent (generic) or an int handler id (kind event).
        self._queue: List[tuple] = []
        #: Next-event slot: one entry strictly earlier (by time) than the
        #: whole heap, or None.  Fills when a schedule lands in front of
        #: the heap head; chained schedule-pop-schedule patterns live
        #: entirely in this slot and skip both heap sifts.
        self._next: Optional[tuple] = None
        self._running = False
        self._stop_requested = False
        #: Horizon of the active :meth:`run` call (``until_ns``), or None.
        self._horizon: Optional[int] = None
        #: False while a ``max_events``-bounded run is active — fast
        #: forward would execute segments the bound should count.
        self._ff_allowed = True
        #: Cancelled ScheduledEvent entries still on the calendar (lazy
        #: deletion; the slot entry counts here too).
        self._cancelled = 0
        #: Handler tables: id -> callable / batch callable / batch window.
        #: Slot 0 is the side-calendar heap-fallback trampoline.
        self._handler_fns: List[Callable[..., None]] = [self._soa_fallback_exec]
        self._handler_batch: List[Optional[Callable[..., None]]] = [None]
        self._handler_window: List[Optional[int]] = [None]
        #: Structure-of-arrays side calendar: parallel time/seq columns
        #: plus handler ids.  Entries before ``_soa_head`` are consumed;
        #: ``_soa_n`` counts pending entries (cancelled included).
        self._soa_times: array = array("q")
        self._soa_seqs: array = array("q")
        self._soa_hids: List[int] = []
        self._soa_head = 0
        self._soa_n = 0
        #: Seqs of cancelled kind/side-calendar entries (lazy deletion —
        #: checked when the entry reaches the head).
        self._kind_cancelled: set = set()
        #: Batched side-calendar execution switch (see ``--no-batch``).
        #: Flipping it cannot change any observable output, only whether
        #: consecutive same-kind runs go through one batch-handler call.
        self.batch_enabled = _batch_default
        #: Number of callbacks executed; useful for engine diagnostics.
        #: Fast-forwarded segments count here too, so the tally matches
        #: a run with the optimisation disabled.
        self.events_executed = 0
        #: Of ``events_executed``, how many were synthesized analytically.
        self.events_fast_forwarded = 0
        #: Of ``events_executed``, how many ran inside a batch-handler call.
        self.events_batched = 0
        #: Number of multi-event batch-handler calls performed.
        self.batch_runs = 0
        #: In-place calendar rebuilds triggered by cancelled-entry pile-up.
        self.compactions = 0
        #: Maximum calendar length observed (live + cancelled entries,
        #: slot, heap, and side calendar combined).
        self.calendar_high_water = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Generic scheduling (per-event handle objects)
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        label: str = "",
        *,
        _new=object.__new__,
        _cls=ScheduledEvent,
        _heappush=_heappush,
        len=len,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay_ns`` from now.

        ``delay_ns`` may be zero (runs after already-pending events at the
        same timestamp) but never negative.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        # Inlined schedule_at: this is the hottest allocation site in the
        # engine, so it avoids the extra frame and the __init__ call (the
        # object.__new__ + direct slot stores construct the same handle;
        # the keyword-only defaults turn global lookups into local loads).
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        event = _new(_cls)
        event.time = time_ns
        event.seq = seq
        event.callback = callback
        event.label = label
        event.cancelled = False
        event._sim = self
        queue = self._queue
        nxt = self._next
        if nxt is None:
            if queue and time_ns >= queue[0][0]:
                _heappush(queue, (time_ns, seq, event))
            else:
                # Strictly earlier than the whole heap (ties go to the
                # heap: the new seq is the largest, so a tie loses).
                self._next = (time_ns, seq, event)
        elif time_ns < nxt[0]:
            self._next = (time_ns, seq, event)
            _heappush(queue, nxt)
        else:
            _heappush(queue, (time_ns, seq, event))
        depth = len(queue) + self._soa_n + (self._next is not None)
        if depth > self.calendar_high_water:
            self.calendar_high_water = depth
        return event

    def schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        label: str = "",
        *,
        _new=object.__new__,
        _cls=ScheduledEvent,
        _heappush=_heappush,
        len=len,
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; now is {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = _new(_cls)
        event.time = time_ns
        event.seq = seq
        event.callback = callback
        event.label = label
        event.cancelled = False
        event._sim = self
        queue = self._queue
        nxt = self._next
        if nxt is None:
            if queue and time_ns >= queue[0][0]:
                _heappush(queue, (time_ns, seq, event))
            else:
                self._next = (time_ns, seq, event)
        elif time_ns < nxt[0]:
            self._next = (time_ns, seq, event)
            _heappush(queue, nxt)
        else:
            _heappush(queue, (time_ns, seq, event))
        depth = len(queue) + self._soa_n + (self._next is not None)
        if depth > self.calendar_high_water:
            self.calendar_high_water = depth
        return event

    # ------------------------------------------------------------------
    # Kind scheduling (precompiled handler table, no per-event objects)
    # ------------------------------------------------------------------
    def register_handler(
        self,
        fn: Callable[..., None],
        batch: Optional[Callable[..., None]] = None,
        batch_window_ns: Optional[int] = None,
    ) -> int:
        """Register ``fn`` in the handler table; returns its handler id.

        One handler id must stick to one scheduling entry point, which
        fixes its call convention:

        * :meth:`schedule_kind` / :meth:`schedule_kind_at` — ``fn()``;
        * :meth:`schedule_call` — ``fn(payload)``;
        * :meth:`schedule_soa` — ``fn(time_ns, seq)`` and, when ``batch``
          is given, ``batch(times, seqs)`` with two equal-length
          ``array('q')`` slices for a run of consecutive entries.

        A batch handler must be observationally identical to calling
        ``fn(t, s)`` for each entry in order.  In particular it must not
        call :meth:`stop` (the engine raises if it does — single-event
        execution would have stopped mid-run) and must not rely on
        :attr:`now`, which during the call reads the *last* entry's time.
        Scheduling from inside a batch handler is safe: anything it
        schedules earlier than an already-consumed batch entry raises the
        ordinary scheduling-in-the-past error, so a contract violation
        cannot silently reorder events.  ``batch_window_ns`` bounds a
        run to entries strictly within that distance of the first — set
        it to the population's minimum re-arm period so a re-arm
        scheduled by the batch handler can never land inside the window
        the batch already consumed.
        """
        hid = len(self._handler_fns)
        self._handler_fns.append(fn)
        self._handler_batch.append(batch)
        self._handler_window.append(batch_window_ns)
        return hid

    def schedule_kind(self, delay_ns: int, hid: int) -> int:
        """Schedule handler ``hid`` (no-argument form) after ``delay_ns``.

        Returns the entry's ``seq`` (usable with :meth:`cancel_kind`).
        No handle object or label is allocated — this is the zero-cost
        path for high-frequency re-arm events (dispatch, clock ticks).
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        nxt = self._next
        if nxt is None:
            if queue and time_ns >= queue[0][0]:
                _heappush(queue, (time_ns, seq, hid))
            else:
                self._next = (time_ns, seq, hid)
        elif time_ns < nxt[0]:
            self._next = (time_ns, seq, hid)
            _heappush(queue, nxt)
        else:
            _heappush(queue, (time_ns, seq, hid))
        depth = len(queue) + self._soa_n + (self._next is not None)
        if depth > self.calendar_high_water:
            self.calendar_high_water = depth
        return seq

    def schedule_kind_at(self, time_ns: int, hid: int) -> int:
        """Schedule handler ``hid`` (no-argument form) at absolute time."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; now is {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        nxt = self._next
        if nxt is None:
            if queue and time_ns >= queue[0][0]:
                _heappush(queue, (time_ns, seq, hid))
            else:
                self._next = (time_ns, seq, hid)
        elif time_ns < nxt[0]:
            self._next = (time_ns, seq, hid)
            _heappush(queue, nxt)
        else:
            _heappush(queue, (time_ns, seq, hid))
        depth = len(queue) + self._soa_n + (self._next is not None)
        if depth > self.calendar_high_water:
            self.calendar_high_water = depth
        return seq

    def schedule_call(self, delay_ns: int, hid: int, payload: Any) -> int:
        """Schedule handler ``hid`` called with ``payload`` after ``delay_ns``.

        Replaces the ``lambda: handler(payload)`` closure + handle pair
        with one heap tuple (ISR returns use this).
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        nxt = self._next
        if nxt is None:
            if queue and time_ns >= queue[0][0]:
                _heappush(queue, (time_ns, seq, hid, payload))
            else:
                self._next = (time_ns, seq, hid, payload)
        elif time_ns < nxt[0]:
            self._next = (time_ns, seq, hid, payload)
            _heappush(queue, nxt)
        else:
            _heappush(queue, (time_ns, seq, hid, payload))
        depth = len(queue) + self._soa_n + (self._next is not None)
        if depth > self.calendar_high_water:
            self.calendar_high_water = depth
        return seq

    def cancel_kind(self, seq: int) -> None:
        """Cancel a pending kind/side-calendar entry by its ``seq``.

        Lazy like :meth:`ScheduledEvent.cancel`: the entry stays in place
        and is skipped when it reaches the head.  ``seq`` must identify a
        pending kind-scheduled entry; cancelling one that already fired
        leaves a stale marker behind and skews :meth:`pending_count`.
        Cancelling twice is harmless.
        """
        kc = self._kind_cancelled
        if seq in kc:
            return
        kc.add(seq)
        n = self._soa_n
        if n >= _COMPACT_MIN_QUEUE and len(kc) * 2 > n:
            self._soa_compact()

    # ------------------------------------------------------------------
    # Structure-of-arrays side calendar
    # ------------------------------------------------------------------
    def schedule_soa(self, delay_ns: int, hid: int) -> int:
        """Schedule handler ``hid`` on the side calendar after ``delay_ns``.

        Appends to the parallel ``array('q')`` columns — no per-entry
        object, ~3 machine words per pending timer.  The side calendar
        must stay sorted, so an entry earlier than the current tail (a
        non-monotone schedule, which homogeneous periodic populations
        never produce) transparently falls back to a heap entry with the
        same key and the same call convention.  Returns the entry's
        ``seq``; cancel with :meth:`cancel_kind`.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        times = self._soa_times
        if times and time_ns < times[-1]:
            entry = (time_ns, seq, _SOA_FALLBACK_HID, (hid, time_ns, seq))
            queue = self._queue
            nxt = self._next
            if nxt is None:
                if queue and time_ns >= queue[0][0]:
                    _heappush(queue, entry)
                else:
                    self._next = entry
            elif time_ns < nxt[0]:
                self._next = entry
                _heappush(queue, nxt)
            else:
                _heappush(queue, entry)
        else:
            times.append(time_ns)
            self._soa_seqs.append(seq)
            self._soa_hids.append(hid)
            self._soa_n += 1
        depth = len(self._queue) + self._soa_n + (self._next is not None)
        if depth > self.calendar_high_water:
            self.calendar_high_water = depth
        return seq

    def _soa_fallback_exec(self, arg: Tuple[int, int, int]) -> None:
        """Run one out-of-order side-calendar entry from the heap."""
        hid, time_ns, seq = arg
        self._handler_fns[hid](time_ns, seq)

    def _soa_next(self) -> Optional[Tuple[int, int]]:
        """(time, seq) of the next live side-calendar entry, or None.

        Discards cancelled head entries (forgetting their seqs) and
        recycles the arrays' storage once fully drained.
        """
        if not self._soa_n:
            return None
        times = self._soa_times
        seqs = self._soa_seqs
        head = self._soa_head
        n = len(times)
        kc = self._kind_cancelled
        if kc:
            while head < n and seqs[head] in kc:
                kc.discard(seqs[head])
                head += 1
        if head >= n:
            del times[:]
            del seqs[:]
            del self._soa_hids[:]
            self._soa_head = 0
            self._soa_n = 0
            return None
        self._soa_head = head
        self._soa_n = n - head
        return times[head], seqs[head]

    def _soa_compact(self) -> None:
        """Drop cancelled side-calendar entries, in place.

        Mirrors :meth:`_compact` for the heap: triggered when cancelled
        timers dominate the pending window, preserves relative order (the
        columns are sorted by construction), counts toward
        :attr:`compactions`.
        """
        kc = self._kind_cancelled
        times = self._soa_times
        seqs = self._soa_seqs
        hids = self._soa_hids
        head = self._soa_head
        new_times = array("q")
        new_seqs = array("q")
        new_hids: List[int] = []
        for i in range(head, len(times)):
            seq = seqs[i]
            if seq in kc:
                kc.discard(seq)
                continue
            new_times.append(times[i])
            new_seqs.append(seq)
            new_hids.append(hids[i])
        times[:] = new_times
        seqs[:] = new_seqs
        hids[:] = new_hids
        self._soa_head = 0
        self._soa_n = len(new_times)
        self.compactions += 1

    def _exec_soa_run(
        self,
        until_ns: Optional[int],
        max_events: Optional[int],
        executed: int,
        batch_allowed: bool,
    ) -> int:
        """Execute the side calendar's head entry, batching when possible.

        The caller guarantees the head entry is live, earliest across all
        sources, and at or before the horizon.  Returns the number of
        events executed (>= 1).  A batch gathers the maximal run of
        consecutive same-kind live entries that must execute before any
        heap event, horizon, window bound or ``max_events`` budget could
        interleave — so batched and single-event execution perform the
        identical callback sequence.
        """
        head = self._soa_head
        times = self._soa_times
        seqs = self._soa_seqs
        hids = self._soa_hids
        hid = hids[head]
        t0 = times[head]
        batch_fn = self._handler_batch[hid]
        if batch_fn is None or not batch_allowed:
            self._soa_head = head + 1
            self._soa_n -= 1
            self._now = t0
            self.events_executed += 1
            self._handler_fns[hid](t0, seqs[head])
            return 1
        n = len(times)
        end = head + 1
        # The earliest heap-side entry bounds the batch; the slot (when
        # occupied) is by invariant earlier than the whole heap.
        nxt = self._next
        if nxt is not None:
            qtime = nxt[0]
            qseq = nxt[1]
        else:
            queue = self._queue
            if queue:
                qhead = queue[0]
                qtime = qhead[0]
                qseq = qhead[1]
            else:
                qtime = None
                qseq = 0
        window_end = None
        window = self._handler_window[hid]
        if window is not None:
            window_end = t0 + window
        cap = None
        if max_events is not None:
            cap = head + (max_events - executed)
        kc = self._kind_cancelled
        while end < n:
            if cap is not None and end >= cap:
                break
            if hids[end] != hid:
                break
            t = times[end]
            if until_ns is not None and t > until_ns:
                break
            if qtime is not None and (t > qtime or (t == qtime and seqs[end] > qseq)):
                break
            if window_end is not None and t >= window_end:
                break
            if kc and seqs[end] in kc:
                break
            end += 1
        count = end - head
        self._soa_head = end
        self._soa_n -= count
        if count == 1:
            self._now = t0
            self.events_executed += 1
            self._handler_fns[hid](t0, seqs[head])
            return 1
        self._now = times[end - 1]
        self.events_executed += count
        self.events_batched += count
        self.batch_runs += 1
        # Array slices (copies) rather than memoryviews: a live buffer
        # export would make the handler's own re-arm appends illegal.
        batch_fn(times[head:end], seqs[head:end])
        if self._stop_requested:
            raise SimulationError(
                "batch handler called stop(); batched and single-event "
                "execution would diverge mid-run"
            )
        return count

    def stop(self) -> None:
        """Request that the current :meth:`run` call return promptly."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the calendar is empty."""
        self._discard_cancelled()
        nxt = self._next
        if nxt is not None:
            queue_time = nxt[0]
        else:
            queue_time = self._queue[0][0] if self._queue else None
        soa = self._soa_next() if self._soa_n else None
        if soa is None:
            return queue_time
        if queue_time is None or soa[0] < queue_time:
            return soa[0]
        return queue_time

    def _discard_cancelled(self) -> None:
        """Drop dead entries (cancelled handles, cancelled kind seqs) from
        the slot and the heap head."""
        kc = self._kind_cancelled
        nxt = self._next
        if nxt is not None:
            payload = nxt[2]
            if payload.__class__ is ScheduledEvent:
                if payload.cancelled:
                    self._next = None
                    self._cancelled -= 1
            elif kc and nxt[1] in kc:
                self._next = None
                kc.discard(nxt[1])
        queue = self._queue
        while queue:
            head = queue[0]
            payload = head[2]
            if payload.__class__ is ScheduledEvent:
                if not payload.cancelled:
                    break
                _heappop(queue)
                self._cancelled -= 1
            elif kc and head[1] in kc:
                _heappop(queue)
                kc.discard(head[1])
            else:
                break

    def _note_cancel(self) -> None:
        """Bookkeeping on event cancellation; compacts when dominated.

        Kept for compatibility — :meth:`ScheduledEvent.cancel` inlines
        this logic on the hot path.
        """
        self._cancelled += 1
        n = len(self._queue) + (self._next is not None)
        if n >= _COMPACT_MIN_QUEUE and self._cancelled * 2 > n:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap, in place.

        In place matters: :meth:`run` holds a local alias of the queue
        list, so the list object must survive.  Determinism is free —
        live events carry unique ``(time, seq)`` keys, so any valid heap
        over the same set pops in the same order.
        """
        kc = self._kind_cancelled
        nxt = self._next
        if nxt is not None:
            # The slot entry may itself be cancelled; _cancelled is reset
            # to zero below, so it must be swept here too.
            payload = nxt[2]
            if payload.__class__ is ScheduledEvent:
                if payload.cancelled:
                    self._next = None
            elif nxt[1] in kc:
                self._next = None
                kc.discard(nxt[1])
        queue = self._queue
        if kc:
            live = []
            for entry in queue:
                payload = entry[2]
                if payload.__class__ is ScheduledEvent:
                    if not payload.cancelled:
                        live.append(entry)
                elif entry[1] in kc:
                    kc.discard(entry[1])
                else:
                    live.append(entry)
            queue[:] = live
        else:
            try:
                # Fast path: every payload is a ScheduledEvent (int handler
                # ids have no .cancelled — the except replays carefully).
                queue[:] = [entry for entry in queue if not entry[2].cancelled]
            except AttributeError:
                queue[:] = [
                    entry
                    for entry in queue
                    if entry[2].__class__ is not ScheduledEvent
                    or not entry[2].cancelled
                ]
        heapq.heapify(queue)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Calendar statistics (observability gauges)
    # ------------------------------------------------------------------
    def calendar_depth(self) -> int:
        """Current calendar length, cancelled entries included
        (slot + heap + side calendar)."""
        return len(self._queue) + self._soa_n + (self._next is not None)

    @property
    def calendar_cancelled(self) -> int:
        """Cancelled entries still pending lazy discard (all sources)."""
        return self._cancelled + len(self._kind_cancelled)

    def cancelled_fraction(self) -> float:
        """Fraction of calendar entries that are cancelled (0.0 if empty)."""
        n = len(self._queue) + self._soa_n + (self._next is not None)
        if not n:
            return 0.0
        return (self._cancelled + len(self._kind_cancelled)) / n

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events on the calendar — O(1)."""
        return (
            len(self._queue)
            + self._soa_n
            + (self._next is not None)
            - self._cancelled
            - len(self._kind_cancelled)
        )

    # ------------------------------------------------------------------
    # Fast-forward support (see repro.winsys.kernel._try_fast_forward)
    # ------------------------------------------------------------------
    def fast_forward_budget(self, step_ns: int) -> int:
        """Largest ``k`` such that jumping ``k * step_ns`` is invisible.

        The jump must land strictly before the next live calendar event
        (a segment that would span it must execute normally so the event
        — typically a clock tick stealing time — elongates it exactly as
        on the slow path) and at or before the active run horizon (the
        slow path executes events at the horizon itself).  Returns 0
        when no bound exists (empty calendar and no horizon — nothing to
        fast-forward *to*), when a ``max_events`` run is active, or when
        a stop was requested mid-callback.
        """
        if step_ns <= 0 or not self._ff_allowed or self._stop_requested:
            return 0
        self._discard_cancelled()
        nxt = self._next
        if nxt is not None:
            next_time = nxt[0]
        else:
            next_time = self._queue[0][0] if self._queue else None
        soa = self._soa_next() if self._soa_n else None
        if soa is not None and (next_time is None or soa[0] < next_time):
            next_time = soa[0]
        budget = None
        if next_time is not None:
            # An event at or before now + step (e.g. an isr-return at the
            # current timestamp) leaves no room for even one segment.
            budget = (next_time - self._now - 1) // step_ns
            if budget <= 0:
                return 0
        horizon = self._horizon
        if horizon is not None:
            by_horizon = (horizon - self._now) // step_ns
            if budget is None or by_horizon < budget:
                budget = by_horizon
        return budget if budget is not None and budget > 0 else 0

    def fast_forward(self, delta_ns: int, events: int) -> None:
        """Jump the clock by ``delta_ns``, accounting ``events`` callbacks.

        The sequence counter advances by ``events`` too, so every event
        scheduled afterwards receives the exact ``(time, seq)`` key it
        would have had if the skipped callbacks had each performed one
        ``schedule`` + execution round — which is what keeps ordering
        (and therefore every downstream trace) bit-identical.
        """
        if delta_ns < 0 or events < 0:
            raise SimulationError(
                f"cannot fast-forward by {delta_ns} ns / {events} events"
            )
        target = self._now + delta_ns
        if self._horizon is not None and target > self._horizon:
            raise SimulationError(
                f"fast-forward to {target} ns crosses run horizon "
                f"{self._horizon} ns"
            )
        if self._next is not None and target >= self._next[0]:
            raise SimulationError(
                f"fast-forward to {target} ns crosses pending event at "
                f"{self._next[0]} ns"
            )
        if self._queue and target >= self._queue[0][0]:
            raise SimulationError(
                f"fast-forward to {target} ns crosses pending event at "
                f"{self._queue[0][0]} ns"
            )
        if self._soa_n and target >= self._soa_times[self._soa_head]:
            raise SimulationError(
                f"fast-forward to {target} ns crosses pending side-calendar "
                f"entry at {self._soa_times[self._soa_head]} ns"
            )
        self._now = target
        self._seq += events
        self.events_executed += events
        self.events_fast_forwarded += events

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        self._discard_cancelled()
        soa = self._soa_next() if self._soa_n else None
        nxt = self._next
        queue = self._queue
        if nxt is not None:
            heap_key = (nxt[0], nxt[1])
        elif queue:
            heap_key = (queue[0][0], queue[0][1])
        else:
            heap_key = None
        if soa is not None and (heap_key is None or soa < heap_key):
            self._exec_soa_run(None, None, 0, batch_allowed=False)
            return True
        if heap_key is None:
            return False
        if nxt is not None:
            self._next = None
            entry = nxt
        else:
            entry = _heappop(queue)
        payload = entry[2]
        self._now = entry[0]
        self.events_executed += 1
        if payload.__class__ is ScheduledEvent:
            payload.callback()
        elif len(entry) == 3:
            self._handler_fns[payload]()
        else:
            self._handler_fns[payload](entry[3])
        return True

    def run(
        self,
        until_ns: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the calendar.

        Stops when any of the following holds:

        * the calendar is exhausted,
        * the next event lies beyond ``until_ns`` (the clock is then
          advanced exactly to ``until_ns``),
        * the predicate ``until`` returns True after an event,
        * ``max_events`` callbacks have executed, or
        * :meth:`stop` was called from inside a callback.

        Returns the simulated time at which the run stopped.

        Side-calendar runs execute batched when :attr:`batch_enabled` and
        no ``until`` predicate is active (a predicate must be evaluated
        between every two events, which is exactly what a batch elides).
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        self._horizon = until_ns
        self._ff_allowed = max_events is None
        executed = 0
        heap_done = 0  # deferred events_executed increments, flushed below
        batch_allowed = self.batch_enabled and until is None
        # The hot loop: local bindings, no step()/peek indirection.  The
        # queue list is aliased locally — compaction mutates it in place.
        # Heap entries compare on their leading (time, seq) ints at C
        # speed; the payload is reached only after the pop.  The slot
        # (self._next) is re-read every iteration: callbacks displace it.
        queue = self._queue
        fns = self._handler_fns
        event_cls = ScheduledEvent
        try:
            while True:
                if self._stop_requested:
                    break
                if until is not None and until():
                    break
                if max_events is not None and executed >= max_events:
                    break
                head = self._next
                if self._soa_n:
                    soa = self._soa_next()
                    if soa is not None:
                        # The earliest heap-side candidate is the slot if
                        # occupied (invariant: slot < heap), else the head.
                        if head is not None:
                            if head[0] < soa[0] or (
                                head[0] == soa[0] and head[1] < soa[1]
                            ):
                                soa = None
                        elif queue:
                            qhead = queue[0]
                            if qhead[0] < soa[0] or (
                                qhead[0] == soa[0] and qhead[1] < soa[1]
                            ):
                                soa = None
                        if soa is not None:
                            if until_ns is not None and soa[0] > until_ns:
                                self._now = until_ns
                                break
                            executed += self._exec_soa_run(
                                until_ns, max_events, executed, batch_allowed
                            )
                            continue
                if head is not None:
                    time = head[0]
                    if until_ns is not None and time > until_ns:
                        self._now = until_ns
                        break  # the slot entry stays pending
                    self._next = None
                elif queue:
                    head = queue[0]
                    time = head[0]
                    if until_ns is not None and time > until_ns:
                        self._now = until_ns
                        break
                    _heappop(queue)
                else:
                    break
                payload = head[2]
                if payload.__class__ is event_cls:
                    if payload.cancelled:
                        self._cancelled -= 1
                        continue
                    self._now = time
                    heap_done += 1
                    payload.callback()
                    executed += 1
                else:
                    kc = self._kind_cancelled
                    if kc and head[1] in kc:
                        kc.discard(head[1])
                        continue
                    self._now = time
                    heap_done += 1
                    if len(head) == 3:
                        fns[payload]()
                    else:
                        fns[payload](head[3])
                    executed += 1
            if (
                until_ns is not None
                and self._now < until_ns
                and self._next is None
                and not queue
                and not self._soa_n
            ):
                # Nothing left to do before the horizon; advance the clock.
                self._now = until_ns
        finally:
            # Heap-path executions are counted in a local and flushed once:
            # every reader of events_executed observes it between runs (or
            # via fast_forward / the side-calendar path, which add to the
            # attribute directly — integer adds commute with this flush).
            self.events_executed += heap_done
            self._running = False
            self._horizon = None
            self._ff_allowed = True
        return self._now
