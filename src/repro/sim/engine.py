"""Discrete-event simulation engine.

The engine is a deterministic event calendar: callbacks scheduled at
integer-nanosecond timestamps, executed in (time, sequence) order.  The
sequence number breaks ties in scheduling order, which — together with
the integer time base and the seeded RNG streams — makes every simulation
bit-reproducible.

Events are cancellable: :meth:`Simulator.schedule` returns a
:class:`ScheduledEvent` handle whose :meth:`~ScheduledEvent.cancel`
removes it logically (the heap entry is left in place and skipped on
pop, the standard lazy-deletion technique).  Cancellation is what lets
the CPU model preempt an in-flight work segment and re-schedule its
completion.  When cancelled entries come to dominate the heap — every
clock tick that steals time from an in-flight segment leaves one behind
— the calendar compacts itself in place; since live events are totally
ordered by their unique ``(time, seq)`` key, rebuilding the heap cannot
change the pop order.

The engine also carries the state the idle fast-forward path (see
:mod:`repro.winsys.kernel` and ``docs/performance.md``) needs to stay
bit-identical to ordinary execution: the active run horizon, and a
:meth:`Simulator.fast_forward` jump that advances the clock *and* the
sequence/executed counters exactly as executing the skipped events one
by one would have.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = [
    "ScheduledEvent",
    "Simulator",
    "SimulationError",
    "fast_forward_default",
    "set_fast_forward_default",
]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


#: Process-global default for the idle fast-forward optimisation.  Booted
#: kernels read it once; ``--no-fast-forward`` (and A/B tests) flip it.
#: The output is bit-identical either way — the flag exists so that the
#: equivalence is *checkable*, not because the results differ.
_fast_forward_default = True


def fast_forward_default() -> bool:
    """Whether newly booted kernels enable the idle fast-forward."""
    return _fast_forward_default


def set_fast_forward_default(enabled: bool) -> None:
    """Set the process-global fast-forward default (see ``--no-fast-forward``)."""
    global _fast_forward_default
    _fast_forward_default = bool(enabled)


#: Compaction threshold: never compact tiny heaps (the rebuild would cost
#: more than the skipped pops it saves).
_COMPACT_MIN_QUEUE = 64


class ScheduledEvent:
    """Handle for a pending callback on the event calendar."""

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        label: str,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Logically remove the event; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent {self.label!r} @{self.time}ns {state}>"


class Simulator:
    """Deterministic event-calendar simulator.

    The simulator only understands time and callbacks; machines, kernels
    and applications are layered on top.  A single simulator instance is
    shared by every component of one simulated machine.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_queue",
        "_running",
        "_stop_requested",
        "_horizon",
        "_ff_allowed",
        "_cancelled",
        "events_executed",
        "events_fast_forwarded",
        "compactions",
        "calendar_high_water",
    )

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[ScheduledEvent] = []
        self._running = False
        self._stop_requested = False
        #: Horizon of the active :meth:`run` call (``until_ns``), or None.
        self._horizon: Optional[int] = None
        #: False while a ``max_events``-bounded run is active — fast
        #: forward would execute segments the bound should count.
        self._ff_allowed = True
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._cancelled = 0
        #: Number of callbacks executed; useful for engine diagnostics.
        #: Fast-forwarded segments count here too, so the tally matches
        #: a run with the optimisation disabled.
        self.events_executed = 0
        #: Of ``events_executed``, how many were synthesized analytically.
        self.events_fast_forwarded = 0
        #: In-place heap rebuilds triggered by cancelled-entry pile-up.
        self.compactions = 0
        #: Maximum calendar length observed (live + cancelled entries).
        self.calendar_high_water = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay_ns`` from now.

        ``delay_ns`` may be zero (runs after already-pending events at the
        same timestamp) but never negative.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        return self.schedule_at(self._now + delay_ns, callback, label)

    def schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; now is {self._now} ns"
            )
        event = ScheduledEvent(time_ns, self._seq, callback, label, self)
        self._seq += 1
        queue = self._queue
        heapq.heappush(queue, event)
        if len(queue) > self.calendar_high_water:
            self.calendar_high_water = len(queue)
        return event

    def stop(self) -> None:
        """Request that the current :meth:`run` call return promptly."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if the calendar is empty."""
        self._discard_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def _discard_cancelled(self) -> None:
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1

    def _note_cancel(self) -> None:
        """Bookkeeping on event cancellation; compacts when dominated."""
        self._cancelled += 1
        n = len(self._queue)
        if n >= _COMPACT_MIN_QUEUE and self._cancelled * 2 > n:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap, in place.

        In place matters: :meth:`run` holds a local alias of the queue
        list, so the list object must survive.  Determinism is free —
        live events carry unique ``(time, seq)`` keys, so any valid heap
        over the same set pops in the same order.
        """
        queue = self._queue
        queue[:] = [event for event in queue if not event.cancelled]
        heapq.heapify(queue)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Calendar statistics (observability gauges)
    # ------------------------------------------------------------------
    def calendar_depth(self) -> int:
        """Current calendar length, cancelled entries included."""
        return len(self._queue)

    def cancelled_fraction(self) -> float:
        """Fraction of calendar entries that are cancelled (0.0 if empty)."""
        n = len(self._queue)
        return self._cancelled / n if n else 0.0

    # ------------------------------------------------------------------
    # Fast-forward support (see repro.winsys.kernel._try_fast_forward)
    # ------------------------------------------------------------------
    def fast_forward_budget(self, step_ns: int) -> int:
        """Largest ``k`` such that jumping ``k * step_ns`` is invisible.

        The jump must land strictly before the next live calendar event
        (a segment that would span it must execute normally so the event
        — typically a clock tick stealing time — elongates it exactly as
        on the slow path) and at or before the active run horizon (the
        slow path executes events at the horizon itself).  Returns 0
        when no bound exists (empty calendar and no horizon — nothing to
        fast-forward *to*), when a ``max_events`` run is active, or when
        a stop was requested mid-callback.
        """
        if step_ns <= 0 or not self._ff_allowed or self._stop_requested:
            return 0
        self._discard_cancelled()
        queue = self._queue
        budget = None
        if queue:
            # An event at or before now + step (e.g. an isr-return at the
            # current timestamp) leaves no room for even one segment.
            budget = (queue[0].time - self._now - 1) // step_ns
            if budget <= 0:
                return 0
        horizon = self._horizon
        if horizon is not None:
            by_horizon = (horizon - self._now) // step_ns
            if budget is None or by_horizon < budget:
                budget = by_horizon
        return budget if budget is not None and budget > 0 else 0

    def fast_forward(self, delta_ns: int, events: int) -> None:
        """Jump the clock by ``delta_ns``, accounting ``events`` callbacks.

        The sequence counter advances by ``events`` too, so every event
        scheduled afterwards receives the exact ``(time, seq)`` key it
        would have had if the skipped callbacks had each performed one
        ``schedule`` + execution round — which is what keeps ordering
        (and therefore every downstream trace) bit-identical.
        """
        if delta_ns < 0 or events < 0:
            raise SimulationError(
                f"cannot fast-forward by {delta_ns} ns / {events} events"
            )
        target = self._now + delta_ns
        if self._horizon is not None and target > self._horizon:
            raise SimulationError(
                f"fast-forward to {target} ns crosses run horizon "
                f"{self._horizon} ns"
            )
        if self._queue and target >= self._queue[0].time:
            raise SimulationError(
                f"fast-forward to {target} ns crosses pending event at "
                f"{self._queue[0].time} ns"
            )
        self._now = target
        self._seq += events
        self.events_executed += events
        self.events_fast_forwarded += events

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        self._discard_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self.events_executed += 1
        event.callback()
        return True

    def run(
        self,
        until_ns: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the calendar.

        Stops when any of the following holds:

        * the calendar is exhausted,
        * the next event lies beyond ``until_ns`` (the clock is then
          advanced exactly to ``until_ns``),
        * the predicate ``until`` returns True after an event,
        * ``max_events`` callbacks have executed, or
        * :meth:`stop` was called from inside a callback.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        self._horizon = until_ns
        self._ff_allowed = max_events is None
        executed = 0
        # The hot loop: local bindings, no step()/peek indirection.  The
        # queue list is aliased locally — compaction mutates it in place.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while True:
                if self._stop_requested:
                    break
                if until is not None and until():
                    break
                if max_events is not None and executed >= max_events:
                    break
                while queue and queue[0].cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                if not queue:
                    break
                event = queue[0]
                if until_ns is not None and event.time > until_ns:
                    self._now = until_ns
                    break
                heappop(queue)
                self._now = event.time
                self.events_executed += 1
                event.callback()
                executed += 1
            if until_ns is not None and self._now < until_ns and not queue:
                # Nothing left to do before the horizon; advance the clock.
                self._now = until_ns
        finally:
            self._running = False
            self._horizon = None
            self._ff_allowed = True
        return self._now

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events on the calendar — O(1)."""
        return len(self._queue) - self._cancelled
