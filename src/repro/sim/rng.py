"""Deterministic named random-number streams.

A single master seed fans out into independent, *named* streams (one for
the typist, one for disk geometry, one per app, ...).  Deriving streams
by name rather than by creation order means adding a new consumer of
randomness does not perturb the draws seen by existing consumers — the
property that keeps every experiment in EXPERIMENTS.md stable as the
code base grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngStreams"]


class RngStreams:
    """Factory for named, independently-seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master_seed, name) pair always yields an identical
        sequence, independent of how many other streams exist.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fresh(self, name: str) -> random.Random:
        """A new stream for ``name``, rewound to its first draw.

        Unlike :meth:`stream`, the result is never cached: every call
        replays the identical sequence from the start.  Use this where
        the *call itself* must be a pure function of ``(master_seed,
        name)`` — e.g. materializing fleet session specs by index,
        which may happen any number of times across shards.
        """
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are disjoint from the parent's."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork:{name}".encode("utf-8")
        ).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngStreams(master_seed={self.master_seed})"
