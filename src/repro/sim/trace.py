"""Bounded trace buffers for instrumentation records.

The paper's idle-loop instrument writes one record per millisecond of
idle time into a pre-allocated buffer ("while space_left_in_the_buffer",
Section 2.3).  :class:`TraceBuffer` models that: a capacity-bounded,
append-only log whose overflow behaviour is explicit, because buffer
sizing versus loop calibration (the N parameter) is one of the paper's
stated trade-offs.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, TypeVar

__all__ = ["TraceBuffer", "TraceOverflow"]

T = TypeVar("T")


class TraceOverflow(RuntimeError):
    """Raised when appending to a full buffer with ``on_full='raise'``."""


class TraceBuffer(Generic[T]):
    """Append-only record buffer with a fixed capacity.

    ``on_full`` selects the overflow policy:

    * ``'stop'``   — silently drop further records (the instrument's
      space_left_in_the_buffer check); ``dropped`` counts them,
    * ``'raise'``  — raise :class:`TraceOverflow`,
    * ``'wrap'``   — overwrite oldest records (ring buffer).
    """

    def __init__(self, capacity: int, on_full: str = "stop") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if on_full not in ("stop", "raise", "wrap"):
            raise ValueError(f"unknown overflow policy {on_full!r}")
        self.capacity = capacity
        self.on_full = on_full
        self.dropped = 0
        #: Records overwritten by the 'wrap' policy.  Like ``dropped``,
        #: a non-zero count means the buffer no longer holds the full
        #: history — downstream integrity checks that need every record
        #: (see :mod:`repro.verify.invariants`) must treat their result
        #: as *skipped*, not *passed*.
        self.overwritten = 0
        self._records: List[T] = []
        self._wrap_start = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def full(self) -> bool:
        return len(self._records) >= self.capacity

    @property
    def space_left(self) -> int:
        return max(0, self.capacity - len(self._records))

    @property
    def lossy(self) -> bool:
        """True when the buffer no longer holds the complete history.

        A 'stop' buffer that dropped records or a 'wrap' ring that
        overwrote them both yield a partial trace: analyses over it are
        still valid for the retained window, but integrity invariants
        that require the full record stream are not evaluable.
        """
        return self.dropped > 0 or self.overwritten > 0

    def append(self, record: T) -> bool:
        """Add a record.  Returns False when dropped by the 'stop' policy."""
        if not self.full:
            self._records.append(record)
            return True
        if self.on_full == "raise":
            raise TraceOverflow(f"trace buffer full at {self.capacity} records")
        if self.on_full == "stop":
            self.dropped += 1
            return False
        # wrap
        self._records[self._wrap_start] = record
        self._wrap_start = (self._wrap_start + 1) % self.capacity
        self.overwritten += 1
        return True

    def records(self) -> List[T]:
        """Records in chronological order (unwrapping the ring if needed)."""
        if self.on_full == "wrap" and self.full and self._wrap_start:
            return self._records[self._wrap_start:] + self._records[: self._wrap_start]
        return list(self._records)

    def __iter__(self) -> Iterator[T]:
        return iter(self.records())

    def last(self) -> Optional[T]:
        """Most recent record, or None when empty — O(1).

        In a wrapped ring the newest record sits just *before* the wrap
        cursor (the cursor points at the oldest, next-to-be-overwritten
        slot), so no unwrapped copy is needed.
        """
        if not self._records:
            return None
        if self.on_full == "wrap" and self.full and self._wrap_start:
            return self._records[self._wrap_start - 1]
        return self._records[-1]

    def clear(self) -> None:
        self._records.clear()
        self._wrap_start = 0
        self.dropped = 0
        self.overwritten = 0
