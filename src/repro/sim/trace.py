"""Bounded trace buffers for instrumentation records.

The paper's idle-loop instrument writes one record per millisecond of
idle time into a pre-allocated buffer ("while space_left_in_the_buffer",
Section 2.3).  :class:`TraceBuffer` models that: a capacity-bounded,
append-only log whose overflow behaviour is explicit, because buffer
sizing versus loop calibration (the N parameter) is one of the paper's
stated trade-offs.

:class:`IntTraceBuffer` is the specialization the idle trace actually
uses: records are integer nanosecond timestamps, stored in a compact
``array('q')`` instead of a list of boxed ints, with an arithmetic-ramp
bulk append (:meth:`IntTraceBuffer.extend_ramp`) for the fast-forward
path that synthesizes a run of evenly spaced records in one step.
"""

from __future__ import annotations

from array import array
from typing import Generic, Iterator, List, Optional, Sequence, TypeVar

__all__ = ["TraceBuffer", "IntTraceBuffer", "TraceOverflow"]

T = TypeVar("T")


class TraceOverflow(RuntimeError):
    """Raised when appending to a full buffer with ``on_full='raise'``."""


class TraceBuffer(Generic[T]):
    """Append-only record buffer with a fixed capacity.

    ``on_full`` selects the overflow policy:

    * ``'stop'``   — silently drop further records (the instrument's
      space_left_in_the_buffer check); ``dropped`` counts them,
    * ``'raise'``  — raise :class:`TraceOverflow`,
    * ``'wrap'``   — overwrite oldest records (ring buffer).
    """

    def __init__(self, capacity: int, on_full: str = "stop") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if on_full not in ("stop", "raise", "wrap"):
            raise ValueError(f"unknown overflow policy {on_full!r}")
        self.capacity = capacity
        self.on_full = on_full
        self.dropped = 0
        #: Records overwritten by the 'wrap' policy.  Like ``dropped``,
        #: a non-zero count means the buffer no longer holds the full
        #: history — downstream integrity checks that need every record
        #: (see :mod:`repro.verify.invariants`) must treat their result
        #: as *skipped*, not *passed*.
        self.overwritten = 0
        self._records: List[T] = []
        self._wrap_start = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def full(self) -> bool:
        return len(self._records) >= self.capacity

    @property
    def space_left(self) -> int:
        return max(0, self.capacity - len(self._records))

    @property
    def lossy(self) -> bool:
        """True when the buffer no longer holds the complete history.

        A 'stop' buffer that dropped records or a 'wrap' ring that
        overwrote them both yield a partial trace: analyses over it are
        still valid for the retained window, but integrity invariants
        that require the full record stream are not evaluable.
        """
        return self.dropped > 0 or self.overwritten > 0

    def append(self, record: T) -> bool:
        """Add a record.  Returns False when dropped by the 'stop' policy."""
        if not self.full:
            self._records.append(record)
            return True
        if self.on_full == "raise":
            raise TraceOverflow(f"trace buffer full at {self.capacity} records")
        if self.on_full == "stop":
            self.dropped += 1
            return False
        # wrap
        self._records[self._wrap_start] = record
        self._wrap_start = (self._wrap_start + 1) % self.capacity
        self.overwritten += 1
        return True

    def records(self) -> List[T]:
        """Records in chronological order, as a fresh list.

        Every call copies; callers that only need to *read* the records
        — especially in a loop or per-record pass — should prefer
        :meth:`view` or plain iteration, both of which are zero-copy for
        unwrapped buffers.
        """
        return list(self.view())

    def view(self) -> Sequence[T]:
        """Zero-copy chronological read view of the records.

        Returns the live internal storage (a list, or an ``array`` for
        :class:`IntTraceBuffer`): do not mutate it, and re-call after
        appending.  Only a wrapped ring has to materialize a copy, since
        chronological order then stitches two slices together.
        """
        if self.on_full == "wrap" and self.full and self._wrap_start:
            return (
                self._records[self._wrap_start :]
                + self._records[: self._wrap_start]
            )
        return self._records

    def __iter__(self) -> Iterator[T]:
        return iter(self.view())

    def last(self) -> Optional[T]:
        """Most recent record, or None when empty — O(1).

        In a wrapped ring the newest record sits just *before* the wrap
        cursor (the cursor points at the oldest, next-to-be-overwritten
        slot), so no unwrapped copy is needed.
        """
        if not self._records:
            return None
        if self.on_full == "wrap" and self.full and self._wrap_start:
            return self._records[self._wrap_start - 1]
        return self._records[-1]

    def extend_ramp(self, start: T, step: T, count: int) -> None:
        """Append ``count`` records ``start, start+step, ...`` at once.

        Generic fallback for arithmetic record types; the
        :class:`IntTraceBuffer` override is the fast path.  The run must
        fit: the caller bounds ``count`` by :attr:`space_left` (the
        fast-forward batch protocol does exactly that).
        """
        if count <= 0:
            return
        if count > self.space_left:
            raise TraceOverflow(
                f"ramp of {count} records exceeds space_left={self.space_left}"
            )
        value = start
        append = self._records.append
        for _ in range(count):
            append(value)
            value = value + step  # type: ignore[operator]

    def clear(self) -> None:
        del self._records[:]
        self._wrap_start = 0
        self.dropped = 0
        self.overwritten = 0


class IntTraceBuffer(TraceBuffer[int]):
    """Integer-timestamp trace buffer backed by a compact ``array('q')``.

    The idle-loop instrument appends one int64 nanosecond timestamp per
    record; storing them unboxed roughly quarters the memory per record
    and makes the fast-forward bulk append a single C-level
    ``array.extend(range(...))``.  All :class:`TraceBuffer` semantics
    (capacity, overflow policies, loss accounting) are inherited.
    """

    def __init__(self, capacity: int, on_full: str = "stop") -> None:
        super().__init__(capacity, on_full)
        self._records = array("q")  # type: ignore[assignment]

    def extend_ramp(self, start: int, step: int, count: int) -> None:
        """Bulk-append the arithmetic run ``start, start+step, ...``."""
        if count <= 0:
            return
        if count > self.space_left:
            raise TraceOverflow(
                f"ramp of {count} records exceeds space_left={self.space_left}"
            )
        if step == 0:
            self._records.extend([start] * count)
        else:
            self._records.extend(range(start, start + count * step, step))
