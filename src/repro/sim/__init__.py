"""Machine substrate: deterministic discrete-event hardware simulation.

This package stands in for the paper's physical testbed (Section 2.1): a
100 MHz Pentium with hardware performance counters, a 10 ms periodic
clock interrupt, a SCSI disk, and input devices — all driven from one
deterministic event calendar so every experiment is bit-reproducible.
"""

from .cpu import CPU
from .devices import Disk, DiskGeometry, DiskRequest, Display, Keyboard, KeyEvent, Mouse, MouseEvent
from .engine import ScheduledEvent, SimulationError, Simulator
from .interrupts import InterruptController, PeriodicClock
from .machine import Machine, MachineSpec
from .perf import CounterAccessError, CounterSnapshot, PerfCounters
from .rng import RngStreams
from .timebase import (
    DEFAULT_CPU_HZ,
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    cycles_to_ns,
    format_ns,
    ms_from_ns,
    ns_from_ms,
    ns_from_sec,
    ns_from_us,
    ns_to_cycles,
    sec_from_ns,
    us_from_ns,
)
from .trace import TraceBuffer, TraceOverflow
from .work import HwEvent, Work

__all__ = [
    "CPU",
    "CounterAccessError",
    "CounterSnapshot",
    "DEFAULT_CPU_HZ",
    "Disk",
    "DiskGeometry",
    "DiskRequest",
    "Display",
    "HwEvent",
    "InterruptController",
    "KeyEvent",
    "Keyboard",
    "Machine",
    "MachineSpec",
    "Mouse",
    "MouseEvent",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "PerfCounters",
    "PeriodicClock",
    "RngStreams",
    "ScheduledEvent",
    "SimulationError",
    "Simulator",
    "TraceBuffer",
    "TraceOverflow",
    "Work",
    "cycles_to_ns",
    "format_ns",
    "ms_from_ns",
    "ns_from_ms",
    "ns_from_sec",
    "ns_from_us",
    "ns_to_cycles",
    "sec_from_ns",
    "us_from_ns",
]
