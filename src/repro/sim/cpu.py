"""CPU execution model.

The simulated CPU executes one :class:`~repro.sim.work.Work` segment at a
time on behalf of a *context* (a kernel thread).  Three things can
happen to an in-flight segment:

* it **completes** — the completion callback fires and the segment's
  hardware events are fully charged;
* it is **preempted** — the kernel takes the CPU away; the consumed
  fraction is charged and the remainder handed back for re-queueing;
* time is **stolen** by an interrupt service routine — the segment's
  completion is pushed back by the ISR's duration while the ISR's own
  events are charged.

Time-stealing is the mechanism behind the paper's idle-loop methodology
(Section 2.3): the instrument's calibrated 1 ms busy-wait takes longer
than 1 ms of wall time exactly when ISRs or higher-priority work steal
the processor, and the elongation *is* the measurement.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .engine import SimulationError, Simulator
from .perf import PerfCounters
from .timebase import DEFAULT_CPU_HZ, NS_PER_SEC, cycles_to_ns
from .work import Work

__all__ = ["CPU"]


class CPU:
    """Single simulated processor with pro-rata event accounting."""

    __slots__ = (
        "sim",
        "perf",
        "hz",
        "busy_ns",
        "_work",
        "_context",
        "_on_complete",
        "_start_ns",
        "_stolen_ns",
        "_charged_fraction",
        "_completion_seq",
        "_completion_ns",
        "_complete_hid",
        "_duration_ns",
    )

    def __init__(self, sim: Simulator, perf: PerfCounters, hz: int = DEFAULT_CPU_HZ):
        self.sim = sim
        self.perf = perf
        self.hz = hz
        #: Cumulative nanoseconds the CPU spent executing work or ISRs.
        self.busy_ns = 0
        self._work: Optional[Work] = None
        self._context: object = None
        self._on_complete: Optional[Callable[[object], None]] = None
        self._start_ns = 0
        self._stolen_ns = 0
        self._charged_fraction = 0.0
        # Completions are engine *kind* events (one heap tuple each, no
        # handle object): the pending entry is tracked by its seq for
        # cancellation plus its absolute due time for ISR push-back.
        self._completion_seq: Optional[int] = None
        self._completion_ns = 0
        self._complete_hid = sim.register_handler(self._complete)
        #: Base duration of the in-flight segment (cached at start so the
        #: hot completion path does not recompute it).
        self._duration_ns = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a work segment is executing."""
        return self._work is not None

    @property
    def current_context(self) -> object:
        """The context whose work is executing, or None when idle."""
        return self._context

    def duration_ns(self, work: Work) -> int:
        """Wall duration of ``work`` at this CPU's clock rate."""
        return cycles_to_ns(work.cycles, self.hz)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(
        self,
        work: Work,
        context: object,
        on_complete: Callable[[object], None],
    ) -> None:
        """Begin executing ``work`` for ``context``.

        ``on_complete(context)`` fires when the segment (plus any stolen
        time) has elapsed.  The CPU must be free.
        """
        if self._work is not None:
            raise SimulationError("CPU.start while busy; preempt first")
        sim = self.sim
        self._work = work
        self._context = context
        self._on_complete = on_complete
        now = sim._now
        self._start_ns = now
        self._stolen_ns = 0
        self._charged_fraction = 0.0
        duration = (work.cycles * NS_PER_SEC) // self.hz
        self._duration_ns = duration
        self._completion_ns = now + duration
        self._completion_seq = sim.schedule_kind(duration, self._complete_hid)

    def _executed_ns(self) -> int:
        """Nanoseconds of actual progress on the current segment."""
        elapsed = self.sim.now - self._start_ns
        return max(0, elapsed - self._stolen_ns)

    def _charge_progress(self, fraction: float) -> None:
        """Charge the segment's events up to ``fraction`` of completion."""
        assert self._work is not None
        delta = fraction - self._charged_fraction
        if delta > 0:
            self.perf.charge_events(self._work.events, delta)
            self._charged_fraction = fraction

    def _complete(self) -> None:
        work, context, callback = self._work, self._context, self._on_complete
        assert work is not None and callback is not None
        # Uncontested segments (nothing preempted or partially charged
        # them) are the common case: their events are exact integers, so
        # the whole-count add skips the pro-rata float path entirely
        # (inlined charge_events_whole — this runs once per segment).
        if self._charged_fraction == 0.0:
            tally = self.perf._tally
            for event, count in work.events.items():
                if count:
                    tally[event] += count
        else:
            self._charge_progress(1.0)
        self.busy_ns += self._duration_ns
        self._work = None
        self._context = None
        self._on_complete = None
        self._completion_seq = None
        callback(context)

    def credit_idle_batch(self, work: Work, duration_ns: int, count: int) -> None:
        """Account ``count`` back-to-back completions of ``work`` at once.

        The idle fast-forward path (see
        :meth:`repro.winsys.kernel.Kernel._try_fast_forward`) skips the
        execution of ``count`` identical idle-loop segments and calls
        this instead.  It must be bit-identical to ``count`` sequential
        :meth:`start`/:meth:`_complete` rounds: a completed segment
        charges its events at fraction 1.0 — whole counts that never
        touch the fractional residual — so the batch add below matches
        exactly.  The CPU must be free (the kernel guarantees it).
        """
        if self._work is not None:
            raise SimulationError("credit_idle_batch while busy")
        self.busy_ns += duration_ns * count
        self.perf.charge_events_whole(work.events, count)

    def preempt(self) -> Tuple[object, Optional[Work]]:
        """Take the CPU away from the current segment.

        Returns ``(context, remaining_work)``; ``remaining_work`` is None
        if the segment happened to be exactly finished.  Raises if the
        CPU is idle.
        """
        if self._work is None:
            raise SimulationError("CPU.preempt while idle")
        assert self._completion_seq is not None
        self.sim.cancel_kind(self._completion_seq)
        work, context = self._work, self._context
        total_ns = self._duration_ns
        executed_ns = min(self._executed_ns(), total_ns)
        fraction = executed_ns / total_ns if total_ns else 1.0
        self._charge_progress(fraction)
        self.busy_ns += executed_ns
        remaining_cycles = work.cycles - round(work.cycles * fraction)
        self._work = None
        self._context = None
        self._on_complete = None
        self._completion_seq = None
        if remaining_cycles <= 0:
            return context, None
        remaining = Work(
            cycles=remaining_cycles,
            events={
                ev: count - round(count * fraction)
                for ev, count in work.events.items()
            },
            label=work.label,
        )
        return context, remaining

    def abort(self) -> object:
        """Stop the current segment and discard its remainder.

        Used for open-ended busy-waits (e.g. the Windows 95 mouse-click
        spin) that end on an external signal rather than by running out
        of cycles.  Returns the context that was executing.
        """
        context, _remaining = self.preempt()
        return context

    def steal(self, isr_work: Work) -> int:
        """An ISR steals the processor for the duration of ``isr_work``.

        The ISR's hardware events are charged immediately and the current
        segment's completion (if any) is pushed back.  Returns the ISR
        duration in nanoseconds so the caller can schedule the ISR's
        post-action (delivering a message, waking a thread) at the moment
        the ISR retires.
        """
        duration = self.duration_ns(isr_work)
        self.perf.charge_events_whole(isr_work.events, 1)
        self.busy_ns += duration
        if self._completion_seq is not None:
            self._stolen_ns += duration
            sim = self.sim
            sim.cancel_kind(self._completion_seq)
            pushed = self._completion_ns + duration
            self._completion_ns = pushed
            self._completion_seq = sim.schedule_kind_at(pushed, self._complete_hid)
        return duration
