"""Simulated time base.

All simulator time is kept as an integer number of nanoseconds since the
machine was powered on.  Integer time makes every run bit-reproducible:
there is no floating-point drift, no platform-dependent rounding, and
ties between events can be broken deterministically.

The experimental machine of the paper (Section 2.1) is a 100 MHz Pentium,
so one CPU cycle is exactly 10 ns.  The :class:`~repro.sim.perf.PerfCounters`
cycle counter is derived directly from this time base, mirroring the
free-running 64-bit Pentium cycle counter the paper reads.
"""

from __future__ import annotations

# One nanosecond is the base unit.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000

#: Clock rate of the simulated CPU (Section 2.1: 100 MHz Pentium).
DEFAULT_CPU_HZ = 100_000_000


def ns_from_us(us: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(us * NS_PER_US)


def ns_from_ms(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(ms * NS_PER_MS)


def ns_from_sec(sec: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(sec * NS_PER_SEC)


def us_from_ns(ns: int) -> float:
    """Convert nanoseconds to (float) microseconds."""
    return ns / NS_PER_US


def ms_from_ns(ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return ns / NS_PER_MS


def sec_from_ns(ns: int) -> float:
    """Convert nanoseconds to (float) seconds."""
    return ns / NS_PER_SEC


def cycles_to_ns(cycles: int, hz: int = DEFAULT_CPU_HZ) -> int:
    """Duration, in nanoseconds, of ``cycles`` CPU cycles at ``hz``.

    The default 100 MHz clock gives exactly 10 ns per cycle, so the
    conversion is lossless for the standard machine.
    """
    return (cycles * NS_PER_SEC) // hz


def ns_to_cycles(ns: int, hz: int = DEFAULT_CPU_HZ) -> int:
    """Number of whole CPU cycles elapsed in ``ns`` nanoseconds at ``hz``."""
    return (ns * hz) // NS_PER_SEC


def format_ns(ns: int) -> str:
    """Render a nanosecond duration in the most readable unit.

    Used throughout the terminal visualizations; keeps three significant
    decimals, like the paper's figures (e.g. ``10.76 ms``).
    """
    if ns < 0:
        return "-" + format_ns(-ns)
    if ns < NS_PER_US:
        return f"{ns} ns"
    if ns < NS_PER_MS:
        return f"{ns / NS_PER_US:.2f} us"
    if ns < NS_PER_SEC:
        return f"{ns / NS_PER_MS:.2f} ms"
    return f"{ns / NS_PER_SEC:.3f} s"
