"""Work descriptors: what a thread asks the CPU to execute.

A :class:`Work` segment is the unit of computation in the simulator — a
cycle count plus annotations saying which hardware events the segment
generates (TLB misses, segment-register loads, ...).  Operating-system
personalities and application cost models construct Work values; the CPU
model consumes them, advancing simulated time and the performance
counters proportionally as the segment executes (so a preempted segment
has charged only its consumed fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Mapping

__all__ = ["HwEvent", "Work"]


class HwEvent(str, Enum):
    """Hardware events countable by the simulated Pentium counters.

    The set mirrors the events the paper reads (Section 2.2, Figures 9
    and 10): the two 40-bit event counters can be configured to count any
    of these, while CYCLES is the separate free-running 64-bit counter.
    """

    INSTRUCTIONS = "instructions"
    DATA_REFS = "data_refs"
    ITLB_MISS = "itlb_miss"
    DTLB_MISS = "dtlb_miss"
    SEGMENT_LOADS = "segment_loads"
    UNALIGNED_ACCESS = "unaligned_access"
    INTERRUPTS = "interrupts"
    #: TLB flushes (CR3 reloads / working-set trims).  Quiet on the
    #: healthy testbed; memory-pressure fault injection charges these so
    #: degradation is visible through the same counter file the paper
    #: read.
    TLB_FLUSH = "tlb_flush"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Work:
    """A computation segment: ``cycles`` of CPU plus hardware-event counts.

    Event counts are charged *pro rata* as the segment executes, so a
    segment preempted halfway has contributed half its TLB misses — the
    same smearing a sampling measurement would observe on hardware.
    """

    cycles: int
    events: Dict[HwEvent, int] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"negative work: {self.cycles} cycles")

    def scaled(self, factor: float) -> "Work":
        """A copy with cycles and event counts multiplied by ``factor``."""
        return Work(
            cycles=round(self.cycles * factor),
            events={ev: round(n * factor) for ev, n in self.events.items()},
            label=self.label,
        )

    def plus(self, other: "Work", label: str = "") -> "Work":
        """Sum of two segments (cycles and per-event counts)."""
        events = dict(self.events)
        for ev, n in other.events.items():
            events[ev] = events.get(ev, 0) + n
        return Work(
            cycles=self.cycles + other.cycles,
            events=events,
            label=label or self.label or other.label,
        )

    @staticmethod
    def total(parts: Iterable["Work"], label: str = "") -> "Work":
        """Sum an iterable of segments into one."""
        out = Work(0, {}, label)
        for part in parts:
            out = out.plus(part, label=label)
        return out

    @staticmethod
    def from_mapping(cycles: int, events: Mapping[str, int], label: str = "") -> "Work":
        """Build a Work from string-keyed event counts (config-file friendly)."""
        return Work(
            cycles=cycles,
            events={HwEvent(name): count for name, count in events.items()},
            label=label,
        )

    def count(self, event: HwEvent) -> int:
        """Annotated count for ``event`` (0 if absent)."""
        return self.events.get(event, 0)

    def __repr__(self) -> str:
        tags = ", ".join(f"{ev.value}={n}" for ev, n in sorted(self.events.items()))
        suffix = f" [{tags}]" if tags else ""
        name = f" {self.label!r}" if self.label else ""
        return f"<Work{name} {self.cycles} cycles{suffix}>"
