"""The experimental machine.

Assembles the hardware of Section 2.1 — 100 MHz Pentium with performance
counters, 10 ms clock interrupt, dedicated SCSI disk, keyboard, mouse,
display — around one deterministic event calendar and one master RNG
seed.  Operating systems boot *on* a Machine; the measurement layer
reads its counters exactly as the paper read the Pentium's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cpu import CPU
from .devices import Disk, DiskGeometry, Display, Keyboard, Mouse, Nic
from .engine import Simulator
from .interrupts import InterruptController, PeriodicClock
from .perf import PerfCounters
from .rng import RngStreams
from .timebase import DEFAULT_CPU_HZ, ns_from_ms

__all__ = ["MachineSpec", "Machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Configurable hardware parameters (defaults = the paper's testbed)."""

    cpu_hz: int = DEFAULT_CPU_HZ
    ram_bytes: int = 32 * 1024 * 1024
    l2_cache_bytes: int = 256 * 1024
    clock_period_ns: int = ns_from_ms(10)
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    master_seed: int = 0


class Machine:
    """One simulated PC: devices wired to a shared simulator and counters."""

    def __init__(self, spec: Optional[MachineSpec] = None) -> None:
        self.spec = spec or MachineSpec()
        self.sim = Simulator()
        self.rngs = RngStreams(self.spec.master_seed)
        self.perf = PerfCounters(self.sim, hz=self.spec.cpu_hz)
        self.cpu = CPU(self.sim, self.perf, hz=self.spec.cpu_hz)
        self.interrupts = InterruptController(self.sim, self.cpu)
        self.clock = PeriodicClock(
            self.sim, self.interrupts, period_ns=self.spec.clock_period_ns
        )
        self.disk = Disk(
            self.sim,
            self.rngs,
            geometry=self.spec.disk_geometry,
            raise_interrupt=self.interrupts.raise_interrupt,
        )
        self.keyboard = Keyboard(self.sim, self.interrupts.raise_interrupt)
        self.mouse = Mouse(self.sim, self.interrupts.raise_interrupt)
        self.nic = Nic(self.sim, self.interrupts.raise_interrupt)
        self.display = Display(self.sim)
        # Device vectors exist from power-on; the OS re-costs them at boot.
        from .work import Work

        self.interrupts.register(Disk.VECTOR, Work(600, label="disk-isr"))
        self.interrupts.register(Keyboard.VECTOR, Work(500, label="kbd-isr"))
        self.interrupts.register(Mouse.VECTOR, Work(500, label="mouse-isr"))
        self.interrupts.register(Nic.VECTOR, Work(700, label="nic-isr"))

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self.sim.now

    def power_on(self) -> None:
        """Start free-running hardware (the periodic clock)."""
        self.clock.start()

    def run_for(self, duration_ns: int) -> int:
        """Advance the machine by ``duration_ns``; returns the new time."""
        return self.sim.run(until_ns=self.sim.now + duration_ns)

    def run_until(self, time_ns: int) -> int:
        """Advance the machine to absolute time ``time_ns``."""
        return self.sim.run(until_ns=time_ns)
