"""Pentium-style performance counters.

Models the counter file the paper reads (Section 2.2): one free-running
64-bit cycle counter plus two 40-bit *configurable* event counters.  The
simulator internally accounts every hardware event, but reads through
the public interface honour the Pentium restriction — at most two event
kinds are observable at a time, and the event counters are only
accessible from system mode.  The measurement harness in
``repro.core.counters`` therefore re-runs an operation once per counter
configuration, exactly as the paper did ("We repeated the test 10 times
for each performance counter").

The counter file is also where injected degradation surfaces: the
fault-injection layer (:mod:`repro.faults`) charges TLB-flush and
TLB-miss events for its memory-pressure storms through the ordinary
:meth:`PerfCounters.charge` path, so a degraded run is distinguishable
from a healthy one by exactly the measurements the paper had access to.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .timebase import DEFAULT_CPU_HZ, ns_to_cycles
from .work import HwEvent

__all__ = ["CounterAccessError", "PerfCounters", "CounterSnapshot"]

_EVENT_COUNTER_BITS = 40
_EVENT_COUNTER_MASK = (1 << _EVENT_COUNTER_BITS) - 1


class CounterAccessError(RuntimeError):
    """Raised when event counters are touched from user mode."""


class CounterSnapshot(dict):
    """Mapping of HwEvent -> count, plus the cycle counter under 'cycles'."""

    @property
    def cycles(self) -> int:
        return self["cycles"]


class PerfCounters:
    """The simulated machine's hardware counter file.

    ``clock`` is any object with a ``now`` attribute in nanoseconds (the
    :class:`~repro.sim.engine.Simulator`).  The cycle counter is derived
    from it, so it free-runs across idle time like real hardware.
    """

    def __init__(self, clock, hz: int = DEFAULT_CPU_HZ) -> None:
        self._clock = clock
        self.hz = hz
        # Full internal accounting, one tally per event kind.
        self._tally: Dict[HwEvent, int] = {ev: 0 for ev in HwEvent}
        # Residual fractional event charges from pro-rata Work accounting.
        self._residual: Dict[HwEvent, float] = {ev: 0.0 for ev in HwEvent}
        # The two configurable counters: (event, base) or None.
        self._config: Tuple[Optional[HwEvent], Optional[HwEvent]] = (None, None)

    # ------------------------------------------------------------------
    # Charging (simulator-internal; not part of the measured surface)
    # ------------------------------------------------------------------
    def charge(self, event: HwEvent, count: float) -> None:
        """Record ``count`` occurrences of ``event``.

        Fractional charges (from partially-executed Work segments)
        accumulate in a residual so that totals are exact over time.
        """
        whole = int(count)
        frac = count - whole
        self._tally[event] += whole
        if frac:
            self._residual[event] += frac
            if self._residual[event] >= 1.0:
                spill = int(self._residual[event])
                self._tally[event] += spill
                self._residual[event] -= spill

    def charge_events(self, events: Dict[HwEvent, int], fraction: float = 1.0) -> None:
        """Charge a Work segment's event annotations, scaled by ``fraction``."""
        if fraction == 1.0:
            # A full charge of an integer count adds exactly that integer
            # and never touches the residual (int(c * 1.0) == c, zero
            # fractional part), so add it straight to the tally.  A
            # non-integer count still takes the residual-tracking path.
            tally = self._tally
            for event, count in events.items():
                if count:
                    if type(count) is int:
                        tally[event] += count
                    else:
                        self.charge(event, count)
            return
        for event, count in events.items():
            if count:
                self.charge(event, count * fraction)

    def charge_events_whole(self, events: Dict[HwEvent, int], times: int = 1) -> None:
        """Charge integer event annotations ``times`` times over, exactly.

        Bit-identical to ``times`` calls of ``charge_events(events, 1.0)``:
        a whole-count charge adds the integer straight to the tally and
        leaves the fractional residual untouched, so batching the adds
        cannot change any counter value.  This is what lets the idle
        fast-forward credit a run of completed segments in one step.
        """
        tally = self._tally
        for event, count in events.items():
            if count:
                tally[event] += count * times

    # ------------------------------------------------------------------
    # Measured surface
    # ------------------------------------------------------------------
    def read_cycle_counter(self) -> int:
        """RDTSC: the free-running cycle counter (readable from user mode)."""
        return ns_to_cycles(self._clock.now, self.hz)

    def configure(
        self,
        counter0: Optional[HwEvent],
        counter1: Optional[HwEvent] = None,
        system_mode: bool = True,
    ) -> None:
        """Select which two hardware events the event counters follow.

        Mirrors the Pentium MSR interface: system mode only.
        """
        if not system_mode:
            raise CounterAccessError("event counters are system-mode only")
        self._config = (counter0, counter1)

    def read_event_counter(self, index: int, system_mode: bool = True) -> int:
        """Read configurable counter 0 or 1 (40-bit wrap, system mode only)."""
        if not system_mode:
            raise CounterAccessError("event counters are system-mode only")
        if index not in (0, 1):
            raise ValueError(f"Pentium has event counters 0 and 1, not {index}")
        event = self._config[index]
        if event is None:
            return 0
        return self._tally[event] & _EVENT_COUNTER_MASK

    # ------------------------------------------------------------------
    # Omniscient access (for simulator validation and tests only)
    # ------------------------------------------------------------------
    def snapshot(self) -> CounterSnapshot:
        """Full view of every tally — a debugging aid the paper lacked."""
        snap = CounterSnapshot({ev: n for ev, n in self._tally.items()})
        snap["cycles"] = self.read_cycle_counter()
        return snap

    def total(self, event: HwEvent) -> int:
        """Internal tally for ``event`` (no width mask, no mode check)."""
        return self._tally[event]
