"""Hardware-counter measurement harness (Sections 2.2, 5.3).

The Pentium exposes one cycle counter and only *two* configurable event
counters, so profiling an operation across N event kinds requires
re-running it once per counter configuration — "We repeated the test 10
times for each performance counter" (Section 5.3).  The harness honours
that restriction: it never reads more events per run than the hardware
allows, and it reports per-event means over the repeated trials along
with the cycle-derived latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..sim.timebase import cycles_to_ns, ms_from_ns
from ..sim.work import HwEvent
from ..winsys.system import WindowsSystem

__all__ = ["CounterProfile", "CounterSampler"]


@dataclass
class CounterProfile:
    """Mean hardware-event counts and latency for one operation."""

    name: str
    #: Mean count per event kind over the trials that measured it.
    means: Dict[HwEvent, float] = field(default_factory=dict)
    #: Per-trial cycle counts (every trial measures cycles).
    cycles_per_trial: List[int] = field(default_factory=list)
    cpu_hz: int = 100_000_000

    @property
    def mean_cycles(self) -> float:
        return float(np.mean(self.cycles_per_trial)) if self.cycles_per_trial else 0.0

    @property
    def latency_ns(self) -> int:
        return cycles_to_ns(round(self.mean_cycles), self.cpu_hz)

    @property
    def latency_ms(self) -> float:
        return ms_from_ns(self.latency_ns)

    def std_cycles(self) -> float:
        if len(self.cycles_per_trial) < 2:
            return 0.0
        return float(np.std(self.cycles_per_trial))

    def count(self, event: HwEvent) -> float:
        return self.means.get(event, 0.0)

    def tlb_misses(self) -> float:
        """Instruction + data TLB misses (the Figure 9/10 aggregate)."""
        return self.count(HwEvent.ITLB_MISS) + self.count(HwEvent.DTLB_MISS)


class CounterSampler:
    """Runs an operation repeatedly, two hardware events at a time."""

    def __init__(self, system: WindowsSystem) -> None:
        self.system = system
        self.perf = system.machine.perf

    def measure(
        self,
        name: str,
        operation: Callable[[], None],
        events: Sequence[HwEvent],
        trials_per_config: int = 10,
        warmup: int = 1,
        keep_trials: str = "all",
        prepare: Optional[Callable[[], None]] = None,
    ) -> CounterProfile:
        """Profile ``operation`` across ``events``.

        ``operation`` must drive the system through one instance of the
        measured activity and return with the system quiescent (the
        caller owns workload details such as restoring app state).
        ``prepare``, when given, runs before every trial *outside* the
        measured window (e.g. closing the previous OLE session).

        ``keep_trials='first'`` reports only the first (post-warm-up)
        trial per configuration — the paper does exactly this for the
        OLE edit microbenchmark, whose counts crept upward across runs
        (Section 5.3).
        """
        if keep_trials not in ("all", "first"):
            raise ValueError(f"unknown keep_trials policy {keep_trials!r}")
        profile = CounterProfile(
            name=name, cpu_hz=self.system.machine.spec.cpu_hz
        )
        for _ in range(warmup):
            if prepare is not None:
                prepare()
            operation()
        pairs = [list(events[i : i + 2]) for i in range(0, len(events), 2)]
        samples: Dict[HwEvent, List[int]] = {event: [] for event in events}
        for pair in pairs:
            first = pair[0]
            second = pair[1] if len(pair) > 1 else None
            self.perf.configure(first, second)
            for trial in range(trials_per_config):
                if prepare is not None:
                    prepare()
                before0 = self.perf.read_event_counter(0)
                before1 = self.perf.read_event_counter(1)
                cycles_before = self.perf.read_cycle_counter()
                operation()
                cycles_after = self.perf.read_cycle_counter()
                after0 = self.perf.read_event_counter(0)
                after1 = self.perf.read_event_counter(1)
                if keep_trials == "first" and trial > 0:
                    continue
                profile.cycles_per_trial.append(cycles_after - cycles_before)
                samples[first].append(after0 - before0)
                if second is not None:
                    samples[second].append(after1 - before1)
        for event, counts in samples.items():
            if counts:
                profile.means[event] = float(np.mean(counts))
        return profile
