"""Aligned-text tables for experiment output.

Every experiment prints the rows of the paper table/figure it
reproduces; this module keeps that output consistent and dependency-
free (the harness runs in terminals without plotting stacks, like the
paper's own tooling did).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["TextTable", "format_quantity"]


def format_quantity(value, decimals: int = 2) -> str:
    """Human-friendly numbers: thousands separators, fixed decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.{decimals}f}"
    return str(value)


class TextTable:
    """Minimal fixed-width table renderer."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> "TextTable":
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([format_quantity(cell) for cell in cells])
        return self

    def add_rows(self, rows: Iterable[Sequence]) -> "TextTable":
        for row in rows:
            self.add_row(*row)
        return self

    def render(self) -> str:
        widths = [len(header) for header in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            parts = []
            for index, cell in enumerate(cells):
                if index == 0:
                    parts.append(cell.ljust(widths[index]))
                else:
                    parts.append(cell.rjust(widths[index]))
            return "  ".join(parts)

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.columns))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
