"""Terminal renderings of the paper's plot types.

"Presented with these obstacles, we modified our plans, and present
latency measurements graphically."  (Section 3.1.)  The four plot
families:

* event-latency time series (Figures 5 and 12),
* latency histograms with a logarithmic count axis (Figures 7/8/11 top),
* cumulative-latency curves (middle panels),
* CPU-utilization profiles (Figures 3 and 4).

All renderers return plain strings; experiments print them, tests
assert on their structure, and no plotting stack is required.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.timebase import NS_PER_MS, NS_PER_SEC
from .analysis import HistogramData, cumulative_latency_curve
from .latency import LatencyProfile

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "event_time_series",
    "log_histogram",
    "curve_plot",
    "cumulative_latency_plot",
    "utilization_profile",
]

_FULL = "#"
_EMPTY = " "


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bars, one per (label, value) pair (Figure 6 style)."""
    if not items:
        return "(no data)"
    top = max_value if max_value is not None else max(value for _l, value in items)
    top = max(top, 1e-12)
    label_width = max(len(label) for label, _v in items)
    lines = []
    for label, value in items:
        bar = _FULL * max(0, round(width * min(value, top) / top))
        overflow = ">" if value > top else ""
        lines.append(
            f"{label.ljust(label_width)} |{bar}{overflow} {value:,.2f} {unit}".rstrip()
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """One bar block per metric, bars per system (Figures 9/10 style)."""
    lines = []
    for metric, by_system in groups.items():
        lines.append(f"{metric}:")
        lines.append(
            "  "
            + bar_chart(list(by_system.items()), width=width, unit=unit).replace(
                "\n", "\n  "
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def event_time_series(
    profile: LatencyProfile,
    start_ns: Optional[int] = None,
    end_ns: Optional[int] = None,
    width: int = 100,
    height: int = 16,
    threshold_ms: Optional[float] = 100.0,
    log_scale: bool = True,
) -> str:
    """Vertical-bar time series of event latencies (Figure 5).

    Each column covers an equal slice of wall time; the column's bar
    height encodes the longest event starting in that slice.  An
    optional horizontal line marks the perception threshold.
    """
    if len(profile) == 0:
        return "(no events)"
    starts = profile.start_times_ns
    lat_ms = profile.latencies_ms
    t0 = start_ns if start_ns is not None else int(starts.min())
    t1 = end_ns if end_ns is not None else int(starts.max()) + 1
    if t1 <= t0:
        t1 = t0 + 1
    column_peak = np.zeros(width, dtype=float)
    for start, latency in zip(starts, lat_ms):
        if not (t0 <= start < t1):
            continue
        column = min(width - 1, int((start - t0) * width / (t1 - t0)))
        column_peak[column] = max(column_peak[column], latency)

    def scale(value: float) -> float:
        if value <= 0:
            return 0.0
        if log_scale:
            return math.log10(1.0 + value)
        return value

    peak = max(scale(column_peak.max()), 1e-9)
    rows: List[str] = []
    threshold_row = None
    if threshold_ms is not None:
        threshold_row = height - 1 - int(
            min(scale(threshold_ms) / peak, 1.0) * (height - 1)
        )
    for row in range(height):
        cells = []
        for column in range(width):
            level = scale(column_peak[column]) / peak
            filled = level >= (height - row) / height
            if filled:
                cells.append("|")
            elif threshold_row is not None and row == threshold_row:
                cells.append("-")
            else:
                cells.append(_EMPTY)
        rows.append("".join(cells))
    axis = f"{(t1 - t0) / NS_PER_SEC:.1f} s span, peak {column_peak.max():.1f} ms"
    if threshold_ms is not None:
        axis += f", '-' = {threshold_ms:.0f} ms threshold"
    rows.append("-" * width)
    rows.append(axis)
    return "\n".join(rows)


def log_histogram(hist: HistogramData, width: int = 60) -> str:
    """Histogram with logarithmic counts (Figure 7 note: 'the Y scale
    in the histogram ... is a logarithmic scale')."""
    nonzero = hist.nonzero_bins()
    if not nonzero:
        return "(no events)"
    peak = max(math.log10(count + 1) for _lo, _hi, count in nonzero)
    peak = max(peak, 1e-9)
    lines = []
    for lo, hi, count in nonzero:
        bar = _FULL * max(1, round(width * math.log10(count + 1) / peak))
        lines.append(f"{lo:8.1f}-{hi:<8.1f} ms |{bar} {count}")
    return "\n".join(lines)


def curve_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 70,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Monotone curve as an ASCII staircase (cumulative panels)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) == 0:
        return "(no data)"
    x_span = max(float(xs.max() - xs.min()), 1e-12)
    y_span = max(float(ys.max() - ys.min()), 1e-12)
    grid = [[_EMPTY] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = min(width - 1, int((x - xs.min()) / x_span * (width - 1)))
        row = height - 1 - min(height - 1, int((y - ys.min()) / y_span * (height - 1)))
        grid[row][column] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(
        f"x: {x_label} [{xs.min():,.1f}, {xs.max():,.1f}]   "
        f"y: {y_label} [{ys.min():,.1f}, {ys.max():,.1f}]"
    )
    return "\n".join(lines)


def cumulative_latency_plot(profile: LatencyProfile, width: int = 70) -> str:
    """Convenience wrapper: the middle-panel plot for one profile."""
    xs, ys = cumulative_latency_curve(profile)
    return curve_plot(
        xs, ys, width=width, x_label="event latency (ms, sorted)",
        y_label="cumulative latency (ms)",
    )


def utilization_profile(
    times_ns: Sequence[int],
    utilization: Sequence[float],
    width: int = 100,
    height: int = 10,
) -> str:
    """CPU-utilization-vs-time strip (Figures 3 and 4)."""
    times_ns = np.asarray(times_ns, dtype=np.int64)
    utilization = np.asarray(utilization, dtype=float)
    if len(times_ns) == 0:
        return "(no samples)"
    t0, t1 = int(times_ns.min()), int(times_ns.max()) + 1
    column_util = np.zeros(width, dtype=float)
    for time_ns, util in zip(times_ns, utilization):
        column = min(width - 1, int((time_ns - t0) * width / max(t1 - t0, 1)))
        column_util[column] = max(column_util[column], util)
    rows = []
    for row in range(height):
        level_needed = (height - row) / height
        rows.append(
            "".join(
                _FULL if column_util[column] >= level_needed else _EMPTY
                for column in range(width)
            )
        )
    rows.append("-" * width)
    rows.append(
        f"{(t1 - t0) / NS_PER_MS:.0f} ms span, peak utilization "
        f"{column_util.max() * 100:.0f}%"
    )
    return "\n".join(rows)
