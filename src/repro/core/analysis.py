"""The three graphical representations of Section 3.2, as data.

"First, we present histograms, showing the number of events
corresponding to each measured latency. ... Next, we integrate over the
histogram presenting a cumulative latency graph. ... Finally, we plot
the cumulative latency as a function of the number of events. ... Note
that in each of these cases, the events are sorted by their duration,
not by their actual time of occurrence."

Each function returns plain arrays so the terminal renderer, tests and
benches consume the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .latency import LatencyProfile

__all__ = [
    "by_event_class",
    "class_summary_table",
    "latency_histogram",
    "cumulative_latency_curve",
    "cumulative_vs_events",
    "distribution_distance",
    "variance_summary",
    "HistogramData",
]


@dataclass
class HistogramData:
    """Event counts per latency bin."""

    bin_edges_ms: np.ndarray  # length n+1
    counts: np.ndarray  # length n

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def nonzero_bins(self) -> List[Tuple[float, float, int]]:
        out = []
        for i in np.nonzero(self.counts)[0]:
            out.append(
                (float(self.bin_edges_ms[i]), float(self.bin_edges_ms[i + 1]), int(self.counts[i]))
            )
        return out


def latency_histogram(
    profile: LatencyProfile,
    bin_ms: float = 2.0,
    max_ms: Optional[float] = None,
) -> HistogramData:
    """Histogram of event latencies (Figure 7/8/11 top panels).

    The paper plots these with a logarithmic count axis; the renderer
    handles that — the data here are plain counts.
    """
    if bin_ms <= 0:
        raise ValueError("bin_ms must be positive")
    latencies = profile.latencies_ms
    top = max_ms if max_ms is not None else (latencies.max() if len(latencies) else bin_ms)
    top = max(top, bin_ms)
    edges = np.arange(0.0, top + bin_ms, bin_ms)
    counts, edges = np.histogram(latencies, bins=edges)
    return HistogramData(bin_edges_ms=edges, counts=counts)


def cumulative_latency_curve(profile: LatencyProfile) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted latency, cumulative latency) — the middle panels.

    "This provides the quantitative data indicating how events of a
    particular duration contribute to the overall time required to
    complete a task."
    """
    latencies = np.sort(profile.latencies_ms)
    return latencies, np.cumsum(latencies)


def cumulative_vs_events(profile: LatencyProfile) -> Tuple[np.ndarray, np.ndarray]:
    """(event index, cumulative latency with events sorted by duration).

    The bottom panels: "an intuition about the variance in response
    time perceived by the user" — a straight segment means events of
    that class contribute equally; kinks mark class boundaries.
    """
    latencies = np.sort(profile.latencies_ms)
    index = np.arange(1, len(latencies) + 1)
    return index, np.cumsum(latencies)


def default_event_class(event) -> str:
    """Classify an event by its triggering input.

    Printable keystrokes collapse into one class; named keys, commands
    and packets keep their identity — matching how the paper discusses
    event classes ("the keystrokes that generate printable ASCII
    characters" vs "page down or newline operations", Section 5.1).
    """
    key = event.first_input
    if key is None:
        if any("WM_TIMER" in kind for kind in event.message_kinds):
            return "timer"
        return "other"
    if isinstance(key, str):
        if len(key) == 1:
            return "printable"
        return key
    if isinstance(key, tuple):
        return str(key[0])
    return type(key).__name__


def by_event_class(profile: LatencyProfile, key=default_event_class):
    """Split a profile into per-class sub-profiles (ordered by count)."""
    groups = {}
    for event in profile:
        groups.setdefault(key(event), []).append(event)
    return {
        name: LatencyProfile(events, name=f"{profile.name}:{name}")
        for name, events in sorted(
            groups.items(), key=lambda item: -len(item[1])
        )
    }


def class_summary_table(profile: LatencyProfile, key=default_event_class):
    """Per-class count/mean/max/total table (lazy import avoids cycles)."""
    from .report import TextTable

    table = TextTable(
        ["class", "events", "mean ms", "max ms", "total ms", "share %"],
        title=f"event classes for {profile.name!r}",
    )
    total_ns = max(profile.total_latency_ns, 1)
    for name, group in by_event_class(profile, key).items():
        table.add_row(
            name,
            len(group),
            group.mean_ms(),
            group.max_ms(),
            group.total_latency_ns / 1e6,
            group.total_latency_ns / total_ns * 100,
        )
    return table


def distribution_distance(a: LatencyProfile, b: LatencyProfile) -> float:
    """Kolmogorov-Smirnov distance between two latency distributions.

    The paper's repeatability claim — "the event latency distributions
    were virtually identical" (Section 5) — as a number: 0.0 means
    identical empirical CDFs, 1.0 means disjoint.
    """
    xs = np.sort(a.latencies_ms)
    ys = np.sort(b.latencies_ms)
    if len(xs) == 0 or len(ys) == 0:
        return 0.0 if len(xs) == len(ys) else 1.0
    grid = np.union1d(xs, ys)
    cdf_a = np.searchsorted(xs, grid, side="right") / len(xs)
    cdf_b = np.searchsorted(ys, grid, side="right") / len(ys)
    return float(np.abs(cdf_a - cdf_b).max())


def variance_summary(profile: LatencyProfile) -> dict:
    """Mean/std/max plus the perception-threshold split (Section 3.1)."""
    latencies = profile.latencies_ms
    if len(latencies) == 0:
        return {
            "count": 0,
            "mean_ms": 0.0,
            "std_ms": 0.0,
            "max_ms": 0.0,
            "total_ms": 0.0,
            "above_100ms": 0,
            "above_2s": 0,
        }
    return {
        "count": int(len(latencies)),
        "mean_ms": float(latencies.mean()),
        "std_ms": float(latencies.std()),
        "max_ms": float(latencies.max()),
        "total_ms": float(latencies.sum()),
        "above_100ms": int((latencies > 100.0).sum()),
        "above_2s": int((latencies > 2000.0).sum()),
    }
