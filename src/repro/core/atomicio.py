"""Atomic durable writes: the single choke point for artifact persistence.

Every durable artifact this repo produces — result-cache entries,
crash-safe checkpoints, saved payload archives, run manifests, metrics
snapshots, golden records — must survive two harness-level disasters
without ever exposing a torn file:

* **Kill mid-write** (SIGKILL, watchdog termination, ``os._exit`` chaos):
  readers may observe the *previous* complete file or no file, never a
  prefix of the new one.
* **Disk-full mid-write** (ENOSPC): the write fails cleanly, the
  temporary file is removed, and the destination is untouched.

:func:`atomic_write_text` implements the classic discipline — write to
a same-directory temporary file, flush, ``fsync`` the file, then
``os.replace`` over the destination (atomic on POSIX), with a
best-effort directory fsync so the rename itself is durable.  Callers
that previously open-coded temp+rename (:mod:`repro.core.runcache`,
:mod:`repro.verify.checkpoint`) and callers that wrote in place
(:func:`repro.core.serialize.save_json`, the runner's ``--metrics-out``,
the golden-record blesser) all route through here, so the chaos
harness's torn-write tests cover every one of them at once.

**Chaos interception.**  :func:`install_write_fault` registers a
process-local hook ``hook(path, data) -> data`` that may raise
``OSError`` (simulated ENOSPC) or return corrupted bytes (simulated
torn content that *survives* the rename — the nastier failure, since
the file then looks complete).  The hook is how
:class:`repro.chaos.engine.ChaosEngine` drives deterministic
write-level faults inside workers; production code never installs one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "install_write_fault",
]

#: Process-local write-fault hook (chaos injection only).  ``None`` in
#: production.  Signature: ``hook(path: Path, data: str) -> str``; may
#: raise ``OSError`` to simulate a failed write.
_write_fault: Optional[Callable[[Path, str], str]] = None


def install_write_fault(
    hook: Optional[Callable[[Path, str], str]]
) -> Optional[Callable[[Path, str], str]]:
    """Install (or with ``None``, clear) the write-fault hook.

    Returns the previously-installed hook so callers can restore it —
    the chaos engine wraps one job's execution and must never leak its
    hook into the next job of a sequential sweep.
    """
    global _write_fault
    previous = _write_fault
    _write_fault = hook
    return previous


def atomic_write_text(
    path: Union[str, Path], text: str, *, fsync: bool = True
) -> Path:
    """Atomically replace ``path``'s content with ``text``.

    Readers can never observe a partial write: the data lands in a
    temporary file in the same directory (same filesystem, so the
    rename is atomic) and is fsynced before ``os.replace`` publishes
    it.  On any failure — including a simulated ENOSPC from the chaos
    hook, or a watchdog alarm unwinding mid-write — the temporary file
    is removed and the original ``path`` is left exactly as it was.

    ``fsync=False`` skips the durability syncs (for tests and
    throwaway scratch output); atomicity is unaffected.
    """
    path = Path(path)
    if _write_fault is not None:
        # The hook may raise (ENOSPC) or corrupt the payload (a torn
        # write that survives the rename).  Either way the *mechanism*
        # below stays atomic — that is exactly what the chaos tests
        # assert.
        text = _write_fault(path, text)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # BaseException: a SIGALRM watchdog (_JobTimeout) unwinding a
        # hung write must clean up its temp file too.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        # Durability of the rename itself; best-effort because some
        # filesystems refuse directory fsync.
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
    return path


def atomic_write_json(
    path: Union[str, Path],
    payload,
    *,
    indent: Optional[int] = None,
    sort_keys: bool = True,
    fsync: bool = True,
) -> Path:
    """JSON convenience wrapper over :func:`atomic_write_text`.

    Serialization happens *before* any file is touched, so an
    unserializable payload can never leave a temp file behind.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    return atomic_write_text(path, text, fsync=fsync)
